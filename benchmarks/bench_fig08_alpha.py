"""Figure 8 benchmark: cost/accuracy vs the pruning threshold alpha.

Expected shape: time grows with alpha; accuracy improves then flattens.
"""

import pytest

from repro.experiments.sweep import sweep_point

ALPHAS = (0.005, 0.015, 0.05, 0.15)
SIZES = {"nba": 250, "synthetic": 400}


@pytest.mark.parametrize("kind", sorted(SIZES))
@pytest.mark.parametrize("alpha", ALPHAS)
def test_alpha_sweep(benchmark, once, kind, alpha):
    point = once(benchmark, lambda: sweep_point(kind, SIZES[kind], "hhs", alpha=alpha))
    benchmark.extra_info.update(alpha=alpha, f1=point["f1"], tasks=point["tasks"])
