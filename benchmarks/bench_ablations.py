"""Ablation benchmarks: ADPLL refinements and the utility-function mode.

``components=False, memo=False`` is the paper's plain Algorithm 3; the
refined variants should never be slower on the same workload.
"""

import pytest

from repro.experiments.ablations import adpll_flag_point
from repro.experiments.sweep import sweep_point

SIZE = 250


@pytest.mark.parametrize("components", [True, False])
@pytest.mark.parametrize("memo", [True, False])
def test_adpll_refinements(benchmark, once, components, memo):
    seconds = once(benchmark, lambda: adpll_flag_point(SIZE, components, memo))
    benchmark.extra_info.update(inner_seconds=seconds)


@pytest.mark.parametrize("mode", ["syntactic", "conditional"])
def test_utility_mode(benchmark, once, mode):
    point = once(benchmark, lambda: sweep_point("nba", SIZE, "hhs", utility_mode=mode))
    benchmark.extra_info.update(f1=point["f1"])


@pytest.mark.parametrize("mode", ["direct", "intervals", "full"])
def test_answer_inference_mode(benchmark, once, mode):
    """Answer-propagation ablation in the crowd-attribute setting with a
    scarce budget: 'full' (transitive + bound propagation) should match or
    beat 'intervals' and 'direct' on F1 at identical task counts."""
    from repro.core import BayesCrowd, BayesCrowdConfig
    from repro.experiments.data import dataset_with_distributions
    from repro.metrics import f1_score
    from repro.skyline import skyline

    n = 120
    dataset, distributions = dataset_with_distributions("crowdsky", n)
    truth = skyline(dataset.complete)
    config = BayesCrowdConfig(
        alpha=0.05, budget=n // 3, latency=max(1, n // 60),
        strategy="hhs", inference_mode=mode, seed=0,
    )

    def run():
        query = BayesCrowd(
            dataset, config,
            distributions={v: p.copy() for v, p in distributions.items()},
        )
        return query.run()

    result = once(benchmark, run)
    benchmark.extra_info.update(
        mode=mode, f1=f1_score(result.answers, truth), tasks=result.tasks_posted
    )
