"""Figure 10 benchmark: cost/accuracy vs the latency constraint (rounds).

Expected shape: time and F1 roughly flat at a fixed budget; rounds <= L.
"""

import pytest

from repro.experiments.sweep import sweep_point

LATENCIES = (2, 5, 10, 20)
SIZE = 400


@pytest.mark.parametrize("latency", LATENCIES)
def test_latency_sweep(benchmark, once, latency):
    point = once(
        benchmark, lambda: sweep_point("synthetic", SIZE, "hhs", latency=latency)
    )
    assert point["rounds"] <= latency
    benchmark.extra_info.update(latency=latency, f1=point["f1"], rounds=point["rounds"])
