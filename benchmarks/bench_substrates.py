"""Micro-benchmarks of the substrate layers.

Not paper figures; they track the fixed costs every query pays: dominator
derivation, skyline ground truth, Bayesian-network learning and exact
inference, and the crowd platform's answer pipeline.
"""

import numpy as np
import pytest

from repro.bayesnet import BayesianNetwork, hill_climb
from repro.crowd import ComparisonTask, SimulatedCrowdPlatform
from repro.ctable import dominator_sets_baseline, dominator_sets_fast, var_greater_const
from repro.datasets import generate_nba, generate_synthetic
from repro.skyline import skyline, skyline_layers


@pytest.mark.parametrize("n", [200, 400, 800])
def test_dominator_sets_fast(benchmark, once, n):
    dataset = generate_nba(n_objects=n, missing_rate=0.1, seed=1)
    sets = once(benchmark, lambda: dominator_sets_fast(dataset))
    benchmark.extra_info["mean_set_size"] = float(
        np.mean([len(s) for s in sets])
    )


@pytest.mark.parametrize("n", [200, 400])
def test_dominator_sets_baseline(benchmark, once, n):
    dataset = generate_nba(n_objects=n, missing_rate=0.1, seed=1)
    once(benchmark, lambda: dominator_sets_baseline(dataset))


@pytest.mark.parametrize("n", [500, 2000])
def test_skyline_ground_truth(benchmark, once, n):
    dataset = generate_nba(n_objects=n, missing_rate=0.0, seed=1)
    members = once(benchmark, lambda: skyline(dataset.complete))
    benchmark.extra_info["skyline_size"] = len(members)


def test_skyline_layers_decomposition(benchmark, once):
    dataset = generate_nba(n_objects=400, missing_rate=0.0, seed=1)
    layers = once(benchmark, lambda: skyline_layers(dataset.complete))
    benchmark.extra_info["n_layers"] = len(layers)


def test_bn_structure_learning(benchmark, once):
    dataset = generate_synthetic(n_objects=1500, missing_rate=0.1, seed=1)
    neutral = dataset.values.copy()
    neutral[dataset.mask] = 0
    result = once(
        benchmark,
        lambda: hill_climb(
            neutral, dataset.domain_sizes, max_parents=3, mask=dataset.mask
        ),
    )
    benchmark.extra_info["edges_learned"] = result.dag.n_edges()


def test_bn_posterior_queries(benchmark, once):
    dataset = generate_synthetic(n_objects=1500, missing_rate=0.1, seed=1)
    network = BayesianNetwork.fit(
        dataset.values, dataset.domain_sizes, mask=dataset.mask
    )
    evidence_sets = [dataset.observed_evidence(o) for o in range(100)]

    def query_all():
        return [network.posterior(0, {k: v for k, v in ev.items() if k != 0})
                for ev in evidence_sets]

    once(benchmark, query_all)


def test_crowd_platform_round_trip(benchmark, once):
    dataset = generate_nba(n_objects=300, missing_rate=0.1, seed=1)
    platform = SimulatedCrowdPlatform(
        dataset, worker_accuracy=0.9, rng=np.random.default_rng(0),
        enforce_conflict_free=False,
    )
    variables = list(dataset.variables())[:200]
    tasks = [ComparisonTask(var_greater_const(o, a, 2)) for o, a in variables]

    once(benchmark, lambda: platform.post_batch(tasks))
