"""Selection-phase benchmark: batched vs scalar utility scoring.

The crowdsourcing loop's task selection (UBS/HHS) is the paper's
probability-heavy inner phase: every round scores ``G(o, e)`` for each
candidate expression of the top-k objects.  The scalar path issues
serial probability evaluations per candidate (the base condition plus
both residuals); the :class:`repro.core.utility_engine.UtilityEngine`
collects each round's candidates into one globally deduplicated batch
backed by a cross-round gain cache, so identical selections are serviced
by far fewer fresh ADPLL solves.

The headline series is the **utility-evaluation reduction**: the number
of probability evaluations the scalar path issues while scoring
utilities, divided by the fresh ADPLL solves the batched path performs
for bit-identical selections.  The run fails loudly if the two paths
ever disagree on a round's selected objects or the final answer set, or
if the reduction drops below 2x on the reference workload.

Standalone mode emits ``BENCH_fig07_selection.json`` in pytest-benchmark
shape (render with ``python -m repro.benchreport``)::

    python benchmarks/bench_fig07_selection.py
"""

import argparse
import json
import sys
from pathlib import Path

import pytest

from repro.core import BayesCrowdConfig, run_bayescrowd
from repro.datasets import generate_synthetic
from repro.obs import MetricsRegistry, Tracer

STRATEGIES = ("hhs", "ubs")

#: Reference workload (n=1200, k=10, 10 rounds) must stay above this.
MIN_REDUCTION = 2.0


def _run(dataset, strategy, batched, budget, latency, alpha, seed):
    config = BayesCrowdConfig(
        budget=budget,
        latency=latency,
        strategy=strategy,
        alpha=alpha,
        selection_batch=batched,
        seed=seed,
    )
    return run_bayescrowd(dataset, config)


def _assert_identical_selections(batched, scalar, strategy):
    """Both paths must pick the same objects every round and agree on answers."""
    assert len(batched.history) == len(scalar.history), (
        "%s: batched ran %d rounds, scalar %d"
        % (strategy, len(batched.history), len(scalar.history))
    )
    for round_b, round_s in zip(batched.history, scalar.history):
        assert round_b.objects == round_s.objects, (
            "%s round %d: batched selected %r, scalar %r"
            % (strategy, round_b.round_index, round_b.objects, round_s.objects)
        )
    assert set(batched.answers) == set(scalar.answers), (
        "%s: answer sets diverged" % strategy
    )


def _selection_extra(result, budget, latency):
    stats = result.engine_stats
    return {
        "rounds": result.rounds,
        "k": -(-budget // latency),
        "tasks_posted": result.tasks_posted,
        "utility_candidates_total": stats["utility_candidates_total"],
        "utility_evals_total": stats["utility_evals_total"],
        "residual_cache_hits": stats["residual_cache_hits"],
        "utility_skipped_total": stats["utility_skipped_total"],
        "utility_probability_requests": stats["utility_probability_requests"],
        "utility_probability_submitted": stats["utility_probability_submitted"],
        "utility_probability_computed": stats["utility_probability_computed"],
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points (small n; CI's benchmark-only sweep)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_selection_parity_and_reduction(benchmark, once, strategy):
    dataset = generate_synthetic(n_objects=300, missing_rate=0.1, seed=13)
    scalar = _run(dataset, strategy, False, 40, 8, 0.05, 0)

    batched = once(
        benchmark, lambda: _run(dataset, strategy, True, 40, 8, 0.05, 0)
    )
    _assert_identical_selections(batched, scalar, strategy)
    extra = _selection_extra(batched, 40, 8)
    extra["scalar_probability_requests"] = (
        scalar.engine_stats["utility_probability_requests"]
    )
    computed = extra["utility_probability_computed"]
    extra["evaluation_reduction"] = (
        round(extra["scalar_probability_requests"] / computed, 2) if computed else 0.0
    )
    benchmark.extra_info.update(extra)


# ----------------------------------------------------------------------
# standalone run (the committed reference numbers)
# ----------------------------------------------------------------------
def run_standalone(n, missing_rate, alpha, budget, latency, seed, out_path, check=True):
    """Batched vs scalar selection for each strategy, parity-checked."""
    dataset = generate_synthetic(
        n_objects=n, missing_rate=missing_rate, seed=seed + 13
    )
    k = -(-budget // latency)
    print(
        "synthetic n=%d missing=%.2f alpha=%.3f budget=%d latency=%d (k=%d)"
        % (n, missing_rate, alpha, budget, latency, k)
    )
    registry = MetricsRegistry()
    tracer = Tracer(registry=registry)
    rows = []
    reference_scale = n == 1200 and k == 10
    for strategy in STRATEGIES:
        results = {}
        for batched in (False, True):
            variant = "batched" if batched else "scalar"
            with tracer.span(
                "selection[%s,%s]" % (strategy, variant), phase="round"
            ):
                results[batched] = _run(
                    dataset, strategy, batched, budget, latency, alpha, seed
                )
        scalar, batched = results[False], results[True]
        _assert_identical_selections(batched, scalar, strategy)

        scalar_requests = scalar.engine_stats["utility_probability_requests"]
        computed = batched.engine_stats["utility_probability_computed"]
        reduction = scalar_requests / computed if computed else float("inf")
        candidates = batched.engine_stats["utility_candidates_total"]
        evals = batched.engine_stats["utility_evals_total"]
        gain_reduction = candidates / evals if evals else float("inf")

        for variant, result in (("scalar", scalar), ("batched", batched)):
            extra = _selection_extra(result, budget, latency)
            extra.update(
                variant=variant,
                strategy=strategy,
                identical_selections=True,
                evaluation_reduction=round(reduction, 2),
                gain_request_reduction=round(gain_reduction, 2),
            )
            rows.append(
                {
                    "name": "selection[synthetic,n=%d,%s,%s]" % (n, strategy, variant),
                    "fullname": "bench_fig07_selection.py::standalone",
                    "stats": {"mean": result.engine_stats["selection_seconds"]},
                    "extra_info": extra,
                }
            )
            registry.absorb(
                {
                    key: value
                    for key, value in result.engine_stats.items()
                    if key.startswith(("utility_", "residual_", "selection_"))
                },
                prefix="%s_%s_" % (strategy, variant),
            )
        print(
            "%-3s rounds=%d  scalar: %d prob evals in %.3fs | batched: %d fresh "
            "solves in %.3fs -> %.2fx evaluation reduction (%.2fx at gain level)"
            % (
                strategy,
                batched.rounds,
                scalar_requests,
                scalar.engine_stats["selection_seconds"],
                computed,
                batched.engine_stats["selection_seconds"],
                reduction,
                gain_reduction,
            )
        )
        if check and reference_scale:
            assert batched.rounds >= 10, (
                "%s: reference workload ran only %d rounds" % (strategy, batched.rounds)
            )
            assert reduction >= MIN_REDUCTION, (
                "%s: evaluation reduction %.2fx below the %.1fx floor"
                % (strategy, reduction, MIN_REDUCTION)
            )
    Path(out_path).write_text(
        json.dumps({"benchmarks": rows, "metrics": registry.snapshot()}, indent=2)
    )
    print("wrote %s" % out_path)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Standalone batched vs scalar selection benchmark."
    )
    parser.add_argument("--n", type=int, default=1200, help="dataset cardinality")
    parser.add_argument("--missing-rate", type=float, default=0.1)
    parser.add_argument("--alpha", type=float, default=0.03)
    parser.add_argument("--budget", type=int, default=100, help="crowd task budget B")
    parser.add_argument("--latency", type=int, default=10, help="max rounds L")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the >=2x reduction assertion (off-reference workloads)",
    )
    parser.add_argument(
        "--out", default="BENCH_fig07_selection.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    run_standalone(
        args.n,
        args.missing_rate,
        args.alpha,
        args.budget,
        args.latency,
        args.seed,
        args.out,
        check=not args.no_check,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
