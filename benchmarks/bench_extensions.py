"""Benchmarks for the query-type extensions: k-skyband and top-k dominating.

Not paper figures; they track the cost of the counting-based probability
machinery (skyband) and the boundary-focused task selection (top-k) on
the standard NBA workload.
"""

import pytest

from repro.datasets import generate_nba
from repro.metrics import f1_score
from repro.skyband import CrowdSkyband, SkybandConfig, skyband
from repro.topk import CrowdTopKDominating, TopKConfig, top_k_dominating

N = 200


@pytest.mark.parametrize("k", [1, 2, 3])
def test_skyband_query(benchmark, once, k):
    dataset = generate_nba(n_objects=N, missing_rate=0.1, seed=2)
    truth = skyband(dataset.complete, k)
    config = SkybandConfig(k=k, alpha=0.08, budget=40, latency=4, seed=0)

    result = once(benchmark, lambda: CrowdSkyband(dataset, config).run())
    benchmark.extra_info.update(
        k=k, f1=f1_score(result.answers, truth), tasks=result.tasks_posted
    )


@pytest.mark.parametrize("k", [5, 10, 20])
def test_topk_dominating_query(benchmark, once, k):
    dataset = generate_nba(n_objects=N, missing_rate=0.1, seed=2)
    truth = top_k_dominating(dataset.complete, k)
    config = TopKConfig(k=k, budget=40, latency=4, seed=0)

    result = once(benchmark, lambda: CrowdTopKDominating(dataset, config).run())
    benchmark.extra_info.update(
        k=k, f1=f1_score(result.answers, truth), tasks=result.tasks_posted
    )


def test_imputation_baseline(benchmark, once):
    from repro.baselines import imputed_skyline
    from repro.skyline import skyline

    dataset = generate_nba(n_objects=N, missing_rate=0.1, seed=2)
    truth = skyline(dataset.complete)
    result = once(benchmark, lambda: imputed_skyline(dataset))
    benchmark.extra_info.update(f1=f1_score(result.answers, truth))
