"""Figure 9 benchmark: cost/accuracy vs worker accuracy.

Expected shape: time insensitive to worker accuracy; F1 climbs with it.
"""

import pytest

from repro.experiments.sweep import sweep_point

ACCURACIES = (0.7, 0.8, 0.9, 1.0)
SIZES = {"nba": 250, "synthetic": 400}


@pytest.mark.parametrize("kind", sorted(SIZES))
@pytest.mark.parametrize("accuracy", ACCURACIES)
def test_worker_accuracy_sweep(benchmark, once, kind, accuracy):
    point = once(
        benchmark,
        lambda: sweep_point(kind, SIZES[kind], "hhs", worker_accuracy=accuracy),
    )
    benchmark.extra_info.update(worker_accuracy=accuracy, f1=point["f1"])
