"""Figure 11 benchmark: cost/accuracy vs Synthetic cardinality.

Expected shape: time grows with cardinality; F1 decreases gradually at a
fixed budget.
"""

import pytest

from repro.experiments.sweep import sweep_point

CARDINALITIES = (150, 300, 600, 1200)


@pytest.mark.parametrize("n", CARDINALITIES)
def test_cardinality_sweep(benchmark, once, n):
    point = once(benchmark, lambda: sweep_point("synthetic", n, "hhs"))
    benchmark.extra_info.update(n=n, f1=point["f1"], tasks=point["tasks"])
