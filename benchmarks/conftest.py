"""Shared benchmark configuration.

Every benchmark regenerates one paper table/figure point: the benchmarked
callable is the paper's timed operation and ``benchmark.extra_info``
carries the non-timing series (F1, tasks, rounds) so a single
``pytest benchmarks/ --benchmark-only`` run reports every number the
corresponding figure plots.

Sizes follow the experiment runners' quick mode (REPRO_SCALE applies on
top); each point runs once (``pedantic`` with one round) because the
workloads are seconds-scale and deterministic given their seeds.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Benchmark ``fn`` exactly once and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
