"""Bench-regression guard: fresh BENCH_*.json vs committed baselines.

Compares every benchmark row (by its ``name``) of each freshly generated
``BENCH_*.json`` against the committed baseline of the same file name and
fails when a row's mean time regressed by more than ``--threshold`` (2x
by default -- generous enough for shared-runner noise, tight enough to
catch an accidentally de-vectorized hot path).  Rows present on only one
side are skipped, as are rows whose baseline mean is below
``--min-seconds`` (micro-rows are all noise), and baseline files with no
fresh counterpart::

    python benchmarks/bench_guard.py --baseline-dir bench_baselines --fresh-dir .

Beyond timings, every fresh row carrying the c-table pair-accounting
fields is checked for the pruning invariant ``pairs_tested +
pairs_pruned == pair_universe`` (and a pruned variant must actually
prune: ``pairs_tested < pair_universe``), so a broken pruning pre-pass
fails the guard even when its timing looks fine.  Probability rows are
held to the compiled-backend contracts the same way: parity drift within
1e-9, zero recompiles on weight-only answer rounds, and a non-zero
fallback count whenever a row claims a forced compile-budget trip.

Exit status: 0 when nothing regressed (or nothing was comparable),
1 on regression, 2 on unreadable input.
"""

import argparse
import json
import sys
from pathlib import Path


def load_rows(path):
    """``name -> mean seconds`` for one pytest-benchmark-shaped JSON."""
    data = json.loads(Path(path).read_text())
    rows = {}
    for row in data.get("benchmarks", []):
        mean = row.get("stats", {}).get("mean")
        if row.get("name") and isinstance(mean, (int, float)):
            rows[row["name"]] = float(mean)
    return rows


def pair_accounting_problems(path):
    """Violations of the pair-accounting invariant in one fresh JSON."""
    data = json.loads(Path(path).read_text())
    problems = []
    for row in data.get("benchmarks", []):
        extra = row.get("extra_info", {})
        if "pair_universe" not in extra:
            continue  # row predates the pruning counters
        name = row.get("name", "?")
        tested = extra.get("pairs_tested", 0)
        pruned = extra.get("pairs_pruned", 0)
        universe = extra["pair_universe"]
        if tested + pruned != universe:
            problems.append(
                "%s: pairs_tested %r + pairs_pruned %r != pair_universe %r"
                % (name, tested, pruned, universe)
            )
        if "pruned" in extra.get("method", "") and not tested < universe:
            problems.append(
                "%s: pruned variant tested the full pair universe (%r)"
                % (name, universe)
            )
    return problems


def probability_problems(path):
    """Violations of the compiled-backend invariants in one fresh JSON.

    The contracts, each carried by ``extra_info`` fields the probability
    benchmark emits: exact-parity rows must agree with the sequential
    baseline to 1e-9, weight-only answer rounds must never recompile a
    circuit, a forced-budget row must actually exercise the fallback
    ladder, forest rows must share subcircuits across objects
    (``shared_fraction > 0`` whenever two or more conditions were
    registered), the kernel's per-round sweep must beat the per-circuit
    interpreter on workloads big enough to measure (``speedup_vs_compiled
    > 1`` at 300+ conditions), and every row must record a real pool
    decision (never the stale pre-batch sentinel).
    """
    data = json.loads(Path(path).read_text())
    problems = []
    for row in data.get("benchmarks", []):
        extra = row.get("extra_info", {})
        name = row.get("name", "?")
        drift = extra.get("parity_max_drift")
        if drift is not None and not drift <= 1e-9:
            problems.append(
                "%s: parity_max_drift %g exceeds 1e-9" % (name, drift)
            )
        if extra.get("weight_only") and extra.get("recompiles", 0) != 0:
            problems.append(
                "%s: weight-only rounds recompiled %r circuits"
                % (name, extra["recompiles"])
            )
        if extra.get("forced_budget_trip") and not extra.get("compile_fallbacks"):
            problems.append(
                "%s: forced budget trip produced no compile fallbacks" % name
            )
        shared = extra.get("shared_fraction")
        if shared is not None:
            if not 0.0 <= shared <= 1.0:
                problems.append(
                    "%s: shared_fraction %r outside [0, 1]" % (name, shared)
                )
            elif extra.get("conditions", 0) >= 2 and not shared > 0.0:
                problems.append(
                    "%s: forest registered %r conditions yet shared nothing"
                    % (name, extra.get("conditions"))
                )
        if (
            extra.get("variant") == "kernel_rounds"
            and extra.get("conditions", 0) >= 300
            and not extra.get("speedup_vs_compiled", 0.0) > 1.0
        ):
            problems.append(
                "%s: kernel rounds did not beat the per-circuit "
                "interpreter (speedup_vs_compiled %r <= 1)"
                % (name, extra.get("speedup_vs_compiled"))
            )
        decision = extra.get("pool_decision")
        if decision is not None and "no batch computed yet" in decision:
            problems.append(
                "%s: stale pool_decision %r recorded" % (name, decision)
            )
    return problems


def compare(baseline_path, fresh_path, threshold, min_seconds):
    """(regressions, compared, skipped) for one baseline/fresh file pair."""
    baseline = load_rows(baseline_path)
    fresh = load_rows(fresh_path)
    regressions = []
    compared = 0
    skipped = 0
    for name, base_mean in sorted(baseline.items()):
        fresh_mean = fresh.get(name)
        if fresh_mean is None or base_mean < min_seconds:
            skipped += 1
            continue
        compared += 1
        ratio = fresh_mean / base_mean if base_mean else float("inf")
        if ratio > threshold:
            regressions.append((name, base_mean, fresh_mean, ratio))
    return regressions, compared, skipped


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail CI when a benchmark regressed vs its committed baseline."
    )
    parser.add_argument(
        "--baseline-dir", default="bench_baselines",
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh-dir", default=".", help="directory holding freshly generated JSON"
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="maximum tolerated fresh/baseline mean-time ratio",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="ignore rows whose baseline mean is below this (noise floor)",
    )
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline_dir)
    if not baseline_dir.is_dir():
        print("no baseline directory %s; nothing to guard" % baseline_dir)
        return 0
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print("no BENCH_*.json baselines under %s; nothing to guard" % baseline_dir)
        return 0

    failed = False
    for baseline_path in baselines:
        fresh_path = Path(args.fresh_dir) / baseline_path.name
        if not fresh_path.is_file():
            print("skip %s: no fresh run" % baseline_path.name)
            continue
        try:
            regressions, compared, skipped = compare(
                baseline_path, fresh_path, args.threshold, args.min_seconds
            )
        except (OSError, json.JSONDecodeError, ValueError) as err:
            print("cannot compare %s: %s" % (baseline_path.name, err), file=sys.stderr)
            return 2
        print(
            "%s: %d row(s) compared, %d skipped"
            % (baseline_path.name, compared, skipped)
        )
        for name, base_mean, fresh_mean, ratio in regressions:
            failed = True
            print(
                "  REGRESSION %s: %.3fs -> %.3fs (%.2fx > %.2fx)"
                % (name, base_mean, fresh_mean, ratio, args.threshold),
                file=sys.stderr,
            )
        for problem in pair_accounting_problems(fresh_path):
            failed = True
            print("  ACCOUNTING %s" % problem, file=sys.stderr)
        for problem in probability_problems(fresh_path):
            failed = True
            print("  PROBABILITY %s" % problem, file=sys.stderr)
    if failed:
        return 1
    print("bench guard ok: no row regressed beyond %.2fx" % args.threshold)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
