"""Figure 7 benchmark: HHS vs its early-stop parameter m.

Expected shape: accuracy approaches UBS as m grows, at rising time cost;
FBS and UBS run as reference points.
"""

import pytest

from repro.experiments.sweep import sweep_point

M_VALUES = (1, 3, 8, 15)
SIZE = 250


@pytest.mark.parametrize("strategy", ["fbs", "ubs"])
def test_reference_strategies(benchmark, once, strategy):
    point = once(benchmark, lambda: sweep_point("nba", SIZE, strategy))
    benchmark.extra_info.update(f1=point["f1"])


@pytest.mark.parametrize("m", M_VALUES)
def test_hhs_m_sweep(benchmark, once, m):
    point = once(benchmark, lambda: sweep_point("nba", SIZE, "hhs", m=m))
    benchmark.extra_info.update(m=m, f1=point["f1"])
