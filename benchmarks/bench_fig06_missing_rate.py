"""Figure 6 benchmark: cost/accuracy vs missing rate.

Expected shape: time grows and F1 falls as the missing rate rises.
"""

import pytest

from repro.experiments.sweep import sweep_point

MISSING_RATES = (0.05, 0.10, 0.15, 0.20)
SIZES = {"nba": 250, "synthetic": 400}
STRATEGIES = ("fbs", "hhs")


@pytest.mark.parametrize("kind", sorted(SIZES))
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("missing_rate", MISSING_RATES)
def test_missing_rate_sweep(benchmark, once, kind, strategy, missing_rate):
    point = once(
        benchmark,
        lambda: sweep_point(kind, SIZES[kind], strategy, missing_rate=missing_rate),
    )
    benchmark.extra_info.update(f1=point["f1"], tasks=point["tasks"])
