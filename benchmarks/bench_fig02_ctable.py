"""Figure 2 benchmark: c-table construction across backends.

Series: construction time per (dataset, missing rate, method).  The
``method`` axis covers the vectorized ``numpy`` backend, both scalar
paths (``fast`` = selectivity-sorted filters, ``baseline`` = pure-Python
pairwise Get-CTable), and the sub-quadratic pruning pre-pass
(``pruned`` = sequential scan, ``pruned+parallel`` = scan sharded over
the shared-memory pool).  Expected shape: ``numpy`` beats ``fast`` beats
``baseline`` at every point and all rise with the missing rate; the
pruned variants test a small fraction of the pair universe while
building the identical c-table (asserted in standalone mode).

Standalone mode benchmarks scaling directly (no pytest needed) and emits
``BENCH_fig02_ctable.json`` in pytest-benchmark shape, so
``python -m repro.benchreport BENCH_fig02_ctable.json`` renders it::

    python benchmarks/bench_fig02_ctable.py --n 10000
"""

import argparse
import json
import sys
from pathlib import Path

import pytest

from repro.ctable import build_ctable
from repro.experiments.data import nba_dataset, synthetic_dataset
from repro.obs import MetricsRegistry, Tracer

MISSING_RATES = (0.05, 0.10, 0.15, 0.20)
SIZES = {"nba": 300, "synthetic": 600}

#: method axis -> (backend, dominator_method, prune) of :func:`build_ctable`
METHOD_CONFIGS = {
    "numpy": ("numpy", "fast", "off"),
    "fast": ("python", "fast", "off"),
    "baseline": ("python", "baseline", "off"),
    "pruned": ("numpy", "fast", "on"),
    "pruned+parallel": ("numpy", "fast", "on"),
}


def _build(dataset, method, alpha=0.05, n_jobs=0):
    backend, dominator_method, prune = METHOD_CONFIGS[method]
    return build_ctable(
        dataset,
        alpha=alpha,
        dominator_method=dominator_method,
        backend=backend,
        prune=prune,
        # Only the explicit parallel variant shards the pruning scan;
        # n_jobs=0 asks for one worker per usable core (auto-fallback to
        # sequential on single-core hosts).
        n_jobs=n_jobs if method == "pruned+parallel" else 1,
    )


@pytest.mark.parametrize("kind", sorted(SIZES))
@pytest.mark.parametrize("missing_rate", MISSING_RATES)
@pytest.mark.parametrize("method", sorted(METHOD_CONFIGS))
def test_ctable_construction(benchmark, once, kind, missing_rate, method):
    if kind == "nba":
        dataset = nba_dataset(SIZES[kind], missing_rate)
    else:
        dataset = synthetic_dataset(SIZES[kind], missing_rate)
    ctable = once(benchmark, lambda: _build(dataset, method))
    benchmark.extra_info["certain_answers"] = len(ctable.certain_answers())
    benchmark.extra_info["open_conditions"] = len(ctable.undecided())
    benchmark.extra_info["backend"] = ctable.build_stats["backend"]
    benchmark.extra_info["pairs_per_sec"] = round(
        ctable.build_stats["pairs_per_sec"]
    )


# ----------------------------------------------------------------------
# standalone scaling run
# ----------------------------------------------------------------------
def run_standalone(
    n, missing_rate, methods, alpha, out_path, repeats=1, n_jobs=0,
    append=False, verify=True,
):
    """Time each method at cardinality ``n``; write benchreport JSON.

    With ``repeats > 1`` the best (minimum) wall time is reported -- the
    standard low-noise estimator on shared machines.  All methods build
    the *same* c-table by construction; with ``verify`` the run asserts
    it (conditions and pruned sets identical to the first method's), so
    a pruning or sharding bug fails the bench rather than skewing it.
    ``append`` folds the rows into an existing report (e.g. adding an
    n=100k row to the n=10k file).  The output carries a ``metrics`` key
    in the unified observability schema: every timed build lands in the
    ``phase_seconds_ctable`` histogram and the winning build's counters
    are absorbed per method.
    """
    dataset = synthetic_dataset(n, missing_rate)
    registry = MetricsRegistry()
    tracer = Tracer(registry=registry)
    rows = []
    reference = None
    reference_ctable = None
    for method in methods:
        seconds = None
        for __ in range(max(1, repeats)):
            with tracer.span("ctable[%s]" % method, phase="ctable") as span:
                ctable = _build(dataset, method, alpha=alpha, n_jobs=n_jobs)
            elapsed = span.seconds
            if seconds is None or elapsed < seconds:
                seconds = elapsed
        if reference is None:
            reference = seconds
        parity_ok = None
        if verify:
            if reference_ctable is None:
                reference_ctable = ctable
                parity_ok = True
            else:
                parity_ok = (
                    ctable.conditions == reference_ctable.conditions
                    and ctable.pruned == reference_ctable.pruned
                )
                if not parity_ok:
                    raise AssertionError(
                        "method %r built a different c-table than %r"
                        % (method, methods[0])
                    )
        stats = ctable.build_stats
        registry.absorb(stats, prefix="ctable_%s_" % method)
        extra = {
            "method": method,
            "backend": stats["backend"],
            "n_objects": n,
            "missing_rate": missing_rate,
            "alpha": alpha,
            "pairs_tested": stats["pairs_tested"],
            "pairs_pruned": stats["pairs_pruned"],
            "pair_universe": stats["pair_universe"],
            "pairs_reduction": (
                round(stats["pair_universe"] / stats["pairs_tested"], 2)
                if stats["pairs_tested"]
                else 0.0
            ),
            "pairs_per_sec": round(stats["pairs_tested"] / seconds) if seconds else 0,
            "open_conditions": stats["open_conditions"],
            "repeats": max(1, repeats),
            "speedup_vs_first": round(reference / seconds, 2) if seconds else 0.0,
        }
        if parity_ok is not None:
            extra["parity_vs_first"] = parity_ok
        if stats.get("prune_enabled"):
            extra["scan_seconds"] = round(stats["scan_seconds"], 3)
            extra["scan_workers"] = stats["scan_workers"]
            extra["scan_decision"] = stats["scan_decision"]
            extra["blocks_sharded"] = stats["blocks_sharded"]
        rows.append(
            {
                "name": "ctable[n=%d,%s]" % (n, method),
                "fullname": "bench_fig02_ctable.py::standalone",
                "stats": {"mean": seconds},
                "extra_info": extra,
            }
        )
        print(
            "%-16s %8.3fs  %12s pairs/s  %6.2fx pairs pruned  (%.2fx vs %s)"
            % (
                method,
                seconds,
                extra["pairs_per_sec"],
                extra["pairs_reduction"],
                extra["speedup_vs_first"],
                methods[0],
            )
        )
    payload = {"benchmarks": rows, "metrics": registry.snapshot()}
    path = Path(out_path)
    if append and path.exists():
        previous = json.loads(path.read_text())
        fresh_names = {row["name"] for row in rows}
        payload["benchmarks"] = [
            row
            for row in previous.get("benchmarks", [])
            if row["name"] not in fresh_names
        ] + rows
        # keep the newest run's metrics: counters are additive and mixing
        # registries across runs would break the pair-accounting invariant
        payload["metrics"] = registry.snapshot()
    path.write_text(json.dumps(payload, indent=2))
    print("wrote %s" % out_path)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Standalone c-table construction scaling benchmark."
    )
    parser.add_argument("--n", type=int, default=10_000, help="dataset cardinality")
    parser.add_argument("--missing-rate", type=float, default=0.10)
    parser.add_argument("--alpha", type=float, default=0.01)
    parser.add_argument(
        "--methods", nargs="+", default=["fast", "numpy"],
        choices=sorted(METHOD_CONFIGS),
        help="methods to compare, first is the speedup reference",
    )
    parser.add_argument(
        "--out", default="BENCH_fig02_ctable.json", help="output JSON path"
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="timing repeats per method; the best run is reported",
    )
    parser.add_argument(
        "--n-jobs", type=int, default=0,
        help="worker processes for the pruned+parallel variant "
        "(0 = one per usable core; auto-falls back on single-core hosts)",
    )
    parser.add_argument(
        "--append", action="store_true",
        help="merge rows into an existing --out file (replacing rows of "
        "the same name) instead of overwriting it",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the cross-method c-table parity assertion",
    )
    args = parser.parse_args(argv)
    run_standalone(
        args.n, args.missing_rate, args.methods, args.alpha, args.out,
        repeats=args.repeats, n_jobs=args.n_jobs, append=args.append,
        verify=not args.no_verify,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
