"""Figure 2 benchmark: c-table construction across backends.

Series: construction time per (dataset, missing rate, method).  The
``method`` axis covers the vectorized ``numpy`` backend plus both scalar
paths (``fast`` = selectivity-sorted filters, ``baseline`` = pure-Python
pairwise Get-CTable).  Expected shape: ``numpy`` beats ``fast`` beats
``baseline`` at every point; all rise with the missing rate.

Standalone mode benchmarks scaling directly (no pytest needed) and emits
``BENCH_fig02_ctable.json`` in pytest-benchmark shape, so
``python -m repro.benchreport BENCH_fig02_ctable.json`` renders it::

    python benchmarks/bench_fig02_ctable.py --n 10000
"""

import argparse
import json
import sys
from pathlib import Path

import pytest

from repro.ctable import build_ctable
from repro.experiments.data import nba_dataset, synthetic_dataset
from repro.obs import MetricsRegistry, Tracer

MISSING_RATES = (0.05, 0.10, 0.15, 0.20)
SIZES = {"nba": 300, "synthetic": 600}

#: method axis -> (backend, dominator_method) of :func:`build_ctable`
METHOD_CONFIGS = {
    "numpy": ("numpy", "fast"),
    "fast": ("python", "fast"),
    "baseline": ("python", "baseline"),
}


def _build(dataset, method, alpha=0.05):
    backend, dominator_method = METHOD_CONFIGS[method]
    return build_ctable(
        dataset, alpha=alpha, dominator_method=dominator_method, backend=backend
    )


@pytest.mark.parametrize("kind", sorted(SIZES))
@pytest.mark.parametrize("missing_rate", MISSING_RATES)
@pytest.mark.parametrize("method", sorted(METHOD_CONFIGS))
def test_ctable_construction(benchmark, once, kind, missing_rate, method):
    if kind == "nba":
        dataset = nba_dataset(SIZES[kind], missing_rate)
    else:
        dataset = synthetic_dataset(SIZES[kind], missing_rate)
    ctable = once(benchmark, lambda: _build(dataset, method))
    benchmark.extra_info["certain_answers"] = len(ctable.certain_answers())
    benchmark.extra_info["open_conditions"] = len(ctable.undecided())
    benchmark.extra_info["backend"] = ctable.build_stats["backend"]
    benchmark.extra_info["pairs_per_sec"] = round(
        ctable.build_stats["pairs_per_sec"]
    )


# ----------------------------------------------------------------------
# standalone scaling run
# ----------------------------------------------------------------------
def run_standalone(n, missing_rate, methods, alpha, out_path, repeats=1):
    """Time each method at cardinality ``n``; write benchreport JSON.

    With ``repeats > 1`` the best (minimum) wall time is reported -- the
    standard low-noise estimator on shared machines.  The output carries
    a ``metrics`` key in the unified observability schema
    (``repro.obs.MetricsRegistry.snapshot()``): every timed build lands
    in the ``phase_seconds_ctable`` histogram and the winning build's
    counters are absorbed per method.
    """
    dataset = synthetic_dataset(n, missing_rate)
    registry = MetricsRegistry()
    tracer = Tracer(registry=registry)
    rows = []
    reference = None
    for method in methods:
        seconds = None
        for __ in range(max(1, repeats)):
            with tracer.span("ctable[%s]" % method, phase="ctable") as span:
                ctable = _build(dataset, method, alpha=alpha)
            elapsed = span.seconds
            if seconds is None or elapsed < seconds:
                seconds = elapsed
        if reference is None:
            reference = seconds
        stats = ctable.build_stats
        registry.absorb(stats, prefix="ctable_%s_" % method)
        extra = {
            "method": method,
            "backend": stats["backend"],
            "n_objects": n,
            "missing_rate": missing_rate,
            "alpha": alpha,
            "pairs_tested": stats["pairs_tested"],
            "pairs_per_sec": round(stats["pairs_tested"] / seconds) if seconds else 0,
            "open_conditions": stats["open_conditions"],
            "repeats": max(1, repeats),
            "speedup_vs_first": round(reference / seconds, 2) if seconds else 0.0,
        }
        rows.append(
            {
                "name": "ctable[n=%d,%s]" % (n, method),
                "fullname": "bench_fig02_ctable.py::standalone",
                "stats": {"mean": seconds},
                "extra_info": extra,
            }
        )
        print(
            "%-10s %8.3fs  %12s pairs/s  (%.2fx vs %s)"
            % (
                method,
                seconds,
                extra["pairs_per_sec"],
                extra["speedup_vs_first"],
                methods[0],
            )
        )
    Path(out_path).write_text(
        json.dumps(
            {"benchmarks": rows, "metrics": registry.snapshot()}, indent=2
        )
    )
    print("wrote %s" % out_path)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Standalone c-table construction scaling benchmark."
    )
    parser.add_argument("--n", type=int, default=10_000, help="dataset cardinality")
    parser.add_argument("--missing-rate", type=float, default=0.10)
    parser.add_argument("--alpha", type=float, default=0.01)
    parser.add_argument(
        "--methods", nargs="+", default=["fast", "numpy"],
        choices=sorted(METHOD_CONFIGS),
        help="methods to compare, first is the speedup reference",
    )
    parser.add_argument(
        "--out", default="BENCH_fig02_ctable.json", help="output JSON path"
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="timing repeats per method; the best run is reported",
    )
    args = parser.parse_args(argv)
    run_standalone(
        args.n, args.missing_rate, args.methods, args.alpha, args.out,
        repeats=args.repeats,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
