"""Figure 2 benchmark: c-table construction, Get-CTable vs Baseline.

Series: construction time per (dataset, missing rate, method).
Expected shape: ``fast`` beats ``baseline`` at every point; both rise
with the missing rate.
"""

import pytest

from repro.ctable import build_ctable
from repro.experiments.data import nba_dataset, synthetic_dataset

MISSING_RATES = (0.05, 0.10, 0.15, 0.20)
SIZES = {"nba": 300, "synthetic": 600}


@pytest.mark.parametrize("kind", sorted(SIZES))
@pytest.mark.parametrize("missing_rate", MISSING_RATES)
@pytest.mark.parametrize("method", ["fast", "baseline"])
def test_ctable_construction(benchmark, once, kind, missing_rate, method):
    if kind == "nba":
        dataset = nba_dataset(SIZES[kind], missing_rate)
    else:
        dataset = synthetic_dataset(SIZES[kind], missing_rate)
    ctable = once(
        benchmark,
        lambda: build_ctable(dataset, alpha=0.05, dominator_method=method),
    )
    benchmark.extra_info["certain_answers"] = len(ctable.certain_answers())
    benchmark.extra_info["open_conditions"] = len(ctable.undecided())
