"""Benchmarks for answer integrity and resource-guarded probability.

Two sweeps backing the EXPERIMENTS.md robustness entries:

* **accuracy vs spam rate** -- F1 of a trusting run against a
  ``strict_integrity`` run at increasing spam fractions, plus the
  ledger's contradiction/quarantine counts (the integrity analogue of
  the worker-accuracy sweep in Fig. 9);
* **guarded probability cost** -- end-to-end runtime and the number of
  approximate answer probabilities at decreasing ADPLL node budgets,
  tracking what the degrade-to-sampling path costs and flags.
"""

import pytest

from repro.core import BayesCrowd, BayesCrowdConfig
from repro.crowd import FaultModel
from repro.datasets import generate_nba
from repro.metrics import f1_score
from repro.skyline.algorithms import skyline

N = 30
MISSING = 0.4
SEED = 3


def _config(**overrides):
    return BayesCrowdConfig(
        budget=30,
        latency=5,
        worker_accuracy=0.95,
        alpha=0.1,
        seed=SEED,
        **overrides,
    )


@pytest.mark.parametrize("spam", [0.0, 0.2, 0.4, 0.6])
@pytest.mark.parametrize("strict", [False, True])
def test_accuracy_vs_spam_rate(benchmark, once, spam, strict):
    dataset = generate_nba(n_objects=N, missing_rate=MISSING, seed=SEED)
    truth = skyline(dataset.complete)
    faults = FaultModel(spam_fraction=spam) if spam else None
    config = _config(faults=faults, strict_integrity=strict)

    result = once(benchmark, lambda: BayesCrowd(dataset, config).run())
    benchmark.extra_info.update(
        spam=spam,
        strict=strict,
        f1=f1_score(result.answers, truth),
        tasks=result.tasks_posted,
        contradictions=result.integrity.get("contradictions_detected", 0),
        quarantined=result.integrity.get("answers_quarantined", 0),
        reasked=result.integrity.get("answers_reasked", 0),
    )


@pytest.mark.parametrize("node_budget", [0, 10_000, 100])
def test_guarded_probability_cost(benchmark, once, node_budget):
    dataset = generate_nba(n_objects=N, missing_rate=MISSING, seed=SEED)
    truth = skyline(dataset.complete)
    config = _config(adpll_node_budget=node_budget)

    result = once(benchmark, lambda: BayesCrowd(dataset, config).run())
    benchmark.extra_info.update(
        node_budget=node_budget,
        f1=f1_score(result.answers, truth),
        approx_objects=len(result.approximate_objects()),
        guard_fallbacks=result.engine_stats.get("guard_fallbacks", 0),
    )
