"""Figure 3 benchmark: probability computation, ADPLL vs Naive vs batch.

Series: total time over the initial c-table's conditions per
(dataset, missing rate, method).  Conditions whose assignment space
exceeds the enumeration cap are excluded for both methods (their count is
in ``extra_info``).  Expected shape: ADPLL faster than Naive everywhere,
the gap widening with the missing rate; ``batch`` (the engine's
``probability_many`` with bulk leaf warming) at or below plain ADPLL.

Standalone mode times the batch engine sequentially, with a worker
pool, and under the circuit backends (``compiled`` per-condition
circuits, ``compiled_forest`` store-scoped sharing with the scalar
sweep, ``compiled_kernel`` sharing plus the numpy array kernel), plus
per-round re-weighting for all four engines, and emits
``BENCH_fig03_probability.json`` in pytest-benchmark shape (render with
``python -m repro.benchreport``)::

    python benchmarks/bench_fig03_probability.py --n-jobs 4
"""

import argparse
import json
import os
import sys
from pathlib import Path

import pytest

from repro.bayesnet.posteriors import empirical_distributions
from repro.ctable import Relation, build_ctable, var_greater_const
from repro.experiments.data import nba_dataset, synthetic_dataset
from repro.obs import MetricsRegistry, Tracer
from repro.probability import (
    ADPLL,
    DistributionStore,
    ProbabilityEngine,
    naive_probability,
)

MISSING_RATES = (0.05, 0.10, 0.15, 0.20)
SIZES = {"nba": 200, "synthetic": 400}
ENUMERATION_CAP = 300_000


def _feasible_conditions(kind, missing_rate, n=None, alpha=0.02, cap=ENUMERATION_CAP):
    if kind == "nba":
        dataset = nba_dataset(n or SIZES[kind], missing_rate)
    else:
        dataset = synthetic_dataset(n or SIZES[kind], missing_rate)
    ctable = build_ctable(dataset, alpha=alpha)
    store = DistributionStore(empirical_distributions(dataset), ctable.constraints)
    feasible = []
    skipped = 0
    for obj in ctable.undecided():
        condition = ctable.condition(obj)
        if cap is None:
            feasible.append(condition)
            continue
        space = 1
        for variable in condition.variables():
            space *= dataset.domain_sizes[variable[1]]
            if space > cap:
                break
        if space > cap:
            skipped += 1
        else:
            feasible.append(condition)
    return feasible, store, skipped


@pytest.mark.parametrize("kind", sorted(SIZES))
@pytest.mark.parametrize("missing_rate", MISSING_RATES)
@pytest.mark.parametrize("method", ["adpll", "naive", "batch"])
def test_probability_computation(benchmark, once, kind, missing_rate, method):
    conditions, store, skipped = _feasible_conditions(kind, missing_rate)

    if method == "adpll":
        def compute():
            solver = ADPLL(store)
            return [solver.probability(c) for c in conditions]
    elif method == "naive":
        def compute():
            return [
                naive_probability(c, store, max_assignments=None) for c in conditions
            ]
    else:
        def compute():
            return ProbabilityEngine(store).probability_many(conditions)

    values = once(benchmark, compute)
    benchmark.extra_info["conditions"] = len(conditions)
    benchmark.extra_info["skipped_too_large"] = skipped
    benchmark.extra_info["mean_probability"] = (
        sum(values) / len(values) if values else 0.0
    )


# ----------------------------------------------------------------------
# standalone batch/pool run
# ----------------------------------------------------------------------
def run_standalone(kind, n, missing_rate, alpha, n_jobs, out_path):
    """Time sequential vs batch vs pooled probability computation."""
    # No enumeration cap here: every variant runs ADPLL, which does not
    # need naive-enumeration feasibility.
    conditions, store, skipped = _feasible_conditions(
        kind, missing_rate, n=n, alpha=alpha, cap=None
    )
    print("%d conditions" % len(conditions))
    registry = MetricsRegistry()
    tracer = Tracer(registry=registry)
    rows = []
    reference = None
    variants = [
        ("sequential", dict(n_jobs=1), False),
        ("batch", dict(n_jobs=1), True),
        ("batch_pool", dict(n_jobs=n_jobs), True),
        ("compiled", dict(n_jobs=1, backend="compiled"), True),
        # forest sharing alone (interpreter-exact scalar sweep) ...
        ("compiled_forest", dict(n_jobs=1, backend="forest", kernel="python"), True),
        # ... and sharing + the numpy structure-of-arrays kernel
        ("compiled_kernel", dict(n_jobs=1, backend="forest", kernel="numpy"), True),
    ]
    baseline_values = None
    for name, engine_kwargs, batched in variants:
        # Fresh store per variant: expression caches live on the store, so
        # sharing one would hand later variants a warm start.
        engine = ProbabilityEngine(store.snapshot(), **engine_kwargs)
        with tracer.span(
            "probability[%s]" % name, phase="probability"
        ) as span:
            if batched:
                values = engine.probability_many(conditions)
            else:
                values = [engine.probability(c) for c in conditions]
        seconds = span.seconds
        drift = 0.0
        if baseline_values is None:
            baseline_values = values
        else:
            drift = max(
                (abs(a - b) for a, b in zip(baseline_values, values)), default=0.0
            )
            assert drift < 1e-9, "variant %s drifted by %g" % (name, drift)
        if reference is None:
            reference = seconds
        stats = engine.stats()
        registry.absorb(stats, prefix="engine_%s_" % name)
        extra = {
            "variant": name,
            "n_jobs": engine_kwargs.get("n_jobs", 1),
            "cpu_count": os.cpu_count(),
            "conditions": len(conditions),
            "probabilities_per_sec": round(
                len(conditions) / seconds if seconds else 0.0
            ),
            "parallel_chunks": stats["parallel_chunks"],
            "parallel_seconds": round(stats["parallel_seconds"], 4),
            "pool_workers": stats["pool_workers"],
            "pool_decision": stats["pool_decision"],
            "speedup_vs_sequential": round(reference / seconds, 2) if seconds else 0.0,
        }
        if name != "sequential":
            extra["parity_max_drift"] = drift
        if engine_kwargs.get("backend") in ("compiled", "forest"):
            extra["circuits_compiled"] = stats["circuits_compiled"]
            extra["circuit_nodes"] = stats["circuit_nodes"]
            extra["compile_fallbacks"] = stats["compile_fallbacks"]
        if engine_kwargs.get("backend") == "forest":
            extra["forest_nodes"] = stats["forest_nodes"]
            extra["nodes_shared"] = stats["nodes_shared"]
            extra["shared_fraction"] = round(stats["shared_fraction"], 4)
            extra["forest_kernel"] = stats["forest_kernel"]
        rows.append(
            {
                "name": "probability[%s,n=%d,%s]" % (kind, n, name),
                "fullname": "bench_fig03_probability.py::standalone",
                "stats": {"mean": seconds},
                "extra_info": extra,
            }
        )
        print(
            "%-11s %8.3fs  %8s probs/s  (%.2fx vs sequential, %d pool chunks)"
            % (
                name,
                seconds,
                extra["probabilities_per_sec"],
                extra["speedup_vs_sequential"],
                extra["parallel_chunks"],
            )
        )
    rows.append(_fallback_row(kind, n, conditions, store, baseline_values, tracer))
    rows.extend(run_rounds(kind, n, missing_rate, alpha, tracer, registry))
    Path(out_path).write_text(
        json.dumps(
            {"benchmarks": rows, "metrics": registry.snapshot()}, indent=2
        )
    )
    print("wrote %s" % out_path)


def _fallback_row(kind, n, conditions, store, baseline_values, tracer):
    """Compiled backend under a starved node budget: the fallback ladder.

    Every non-trivial condition trips the compile budget, the compile
    breaker opens, and ADPLL answers instead -- values must stay exact.
    """
    engine = ProbabilityEngine(
        store.snapshot(), backend="compiled", compile_node_budget=8
    )
    with tracer.span("probability[compiled_fallback]", phase="probability") as span:
        values = engine.probability_many(conditions)
    drift = max(
        (abs(a - b) for a, b in zip(baseline_values, values)), default=0.0
    )
    assert drift < 1e-9, "fallback path drifted by %g" % drift
    stats = engine.stats()
    assert stats["compile_fallbacks"] > 0, "budget of 8 nodes never tripped"
    extra = {
        "variant": "compiled_fallback",
        "conditions": len(conditions),
        "forced_budget_trip": True,
        "compile_node_budget": 8,
        "compile_fallbacks": stats["compile_fallbacks"],
        "circuits_compiled": stats["circuits_compiled"],
        "compile_breaker_state": stats["compile_breaker_state"],
        "parity_max_drift": drift,
    }
    print(
        "%-11s %8.3fs  (%d fallbacks, breaker %s)"
        % (
            "fallback",
            span.seconds,
            stats["compile_fallbacks"],
            stats["compile_breaker_state"],
        )
    )
    return {
        "name": "probability[%s,n=%d,compiled_fallback]" % (kind, n),
        "fullname": "bench_fig03_probability.py::standalone",
        "stats": {"mean": span.seconds},
        "extra_info": extra,
    }


#: Per-round engines: independent stores, identical answer sequences.
ROUND_ENGINES = (
    ("adpll", {}),
    ("compiled", dict(backend="compiled")),
    # forest sharing with the interpreter-exact scalar sweep ...
    ("forest", dict(backend="forest", kernel="python")),
    # ... and with the numpy array kernel (the PR-9 headline variant)
    ("kernel", dict(backend="forest", kernel="numpy")),
)


def run_rounds(kind, n, missing_rate, alpha, tracer, registry, rounds=5):
    """Per-round re-weighting: ADPLL recompute vs circuit re-propagation.

    Independent constraint sets receive the same deterministic answer
    sequence (``Var > 0`` facts applied straight to the constraints, so
    conditions never simplify -- a pure weight-change workload).  Each
    round every engine recomputes every condition; the circuit backends
    must re-propagate leaf weights without a single recompilation.
    """
    setups = {}
    reference_conditions = None
    for name, kwargs in ROUND_ENGINES:
        conditions, store, __ = _feasible_conditions(
            kind, missing_rate, n=n, alpha=alpha, cap=None
        )
        if reference_conditions is None:
            reference_conditions = conditions
        else:
            assert conditions == reference_conditions, (
                "dataset generation is not deterministic"
            )
        engine = ProbabilityEngine(store, **kwargs)
        # warm-up: compile every circuit / fill every cache before timing
        engine.probability_many(conditions)
        setups[name] = (engine, store, conditions)
    answered = sorted({v for c in reference_conditions for v in c.variables()})
    per_round = max(1, min(32, len(answered) // rounds))
    seconds = {name: 0.0 for name, __ in ROUND_ENGINES}
    played = 0
    for r in range(rounds):
        batch = answered[r * per_round : (r + 1) * per_round]
        if not batch:
            break
        for variable in batch:
            answer = var_greater_const(variable[0], variable[1], 0)
            for __, store, ___ in setups.values():
                store.constraints.apply_answer(answer, Relation.GREATER)
        played += len(batch)
        round_values = {}
        for name, (engine, __, conditions) in setups.items():
            with tracer.span("round[%s,%d]" % (name, r), phase="probability") as span:
                round_values[name] = engine.probability_many(conditions)
            seconds[name] += span.seconds
        for name in seconds:
            if name == "adpll":
                continue
            drift = max(
                (
                    abs(a - b)
                    for a, b in zip(round_values["adpll"], round_values[name])
                ),
                default=0.0,
            )
            assert drift < 1e-9, "round %d %s drifted by %g" % (r, name, drift)
    rows = []
    common = {
        "conditions": len(reference_conditions),
        "rounds": rounds,
        "answers_played": played,
        "weight_only": True,
    }
    for name, (engine, __, ___) in setups.items():
        stats = engine.stats()
        elapsed = seconds[name]
        extra = dict(common, variant="%s_rounds" % name)
        if name != "adpll":
            assert stats["recompiles"] == 0, (
                "weight-only answers recompiled %d circuits in %s"
                % (stats["recompiles"], name)
            )
            registry.absorb(stats, prefix="engine_rounds_%s_" % name)
            extra.update(
                recompiles=stats["recompiles"],
                propagations=stats["propagations"],
                propagations_per_sec=round(
                    stats["propagations"] / elapsed if elapsed else 0.0
                ),
                circuits_compiled=stats["circuits_compiled"],
                speedup_vs_adpll=round(
                    seconds["adpll"] / elapsed if elapsed else 0.0, 2
                ),
            )
        else:
            extra["recompiles"] = 0
        if name in ("forest", "kernel"):
            extra.update(
                shared_fraction=round(stats["shared_fraction"], 4),
                forest_nodes=stats["forest_nodes"],
                nodes_shared=stats["nodes_shared"],
                forest_kernel=stats["forest_kernel"],
                speedup_vs_compiled=round(
                    seconds["compiled"] / elapsed if elapsed else 0.0, 2
                ),
            )
        rows.append(
            {
                "name": "probability[%s,n=%d,%s_rounds]" % (kind, n, name),
                "fullname": "bench_fig03_probability.py::standalone",
                "stats": {"mean": elapsed},
                "extra_info": extra,
            }
        )
        print(
            "rounds[%-8s] %8.3fs  (%.2fx vs adpll, %d propagations, "
            "%d recompiles)"
            % (
                name,
                elapsed,
                seconds["adpll"] / elapsed if elapsed else 0.0,
                stats.get("propagations", 0),
                stats.get("recompiles", 0),
            )
        )
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Standalone batched probability computation benchmark."
    )
    parser.add_argument("--kind", choices=sorted(SIZES), default="synthetic")
    parser.add_argument("--n", type=int, default=1200, help="dataset cardinality")
    parser.add_argument("--missing-rate", type=float, default=0.15)
    parser.add_argument("--alpha", type=float, default=0.03)
    parser.add_argument("--n-jobs", type=int, default=4, help="pool workers")
    parser.add_argument(
        "--out", default="BENCH_fig03_probability.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    run_standalone(
        args.kind, args.n, args.missing_rate, args.alpha, args.n_jobs, args.out
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
