"""Figure 3 benchmark: probability computation, ADPLL vs Naive.

Series: total time over the initial c-table's conditions per
(dataset, missing rate, method).  Conditions whose assignment space
exceeds the enumeration cap are excluded for both methods (their count is
in ``extra_info``).  Expected shape: ADPLL faster everywhere, the gap
widening with the missing rate.
"""

import pytest

from repro.bayesnet.posteriors import empirical_distributions
from repro.ctable import build_ctable
from repro.experiments.data import nba_dataset, synthetic_dataset
from repro.probability import ADPLL, DistributionStore, naive_probability

MISSING_RATES = (0.05, 0.10, 0.15, 0.20)
SIZES = {"nba": 200, "synthetic": 400}
ENUMERATION_CAP = 300_000


def _feasible_conditions(kind, missing_rate):
    if kind == "nba":
        dataset = nba_dataset(SIZES[kind], missing_rate)
    else:
        dataset = synthetic_dataset(SIZES[kind], missing_rate)
    ctable = build_ctable(dataset, alpha=0.02)
    store = DistributionStore(empirical_distributions(dataset), ctable.constraints)
    feasible = []
    skipped = 0
    for obj in ctable.undecided():
        condition = ctable.condition(obj)
        space = 1
        for variable in condition.variables():
            space *= dataset.domain_sizes[variable[1]]
            if space > ENUMERATION_CAP:
                break
        if space > ENUMERATION_CAP:
            skipped += 1
        else:
            feasible.append(condition)
    return feasible, store, skipped


@pytest.mark.parametrize("kind", sorted(SIZES))
@pytest.mark.parametrize("missing_rate", MISSING_RATES)
@pytest.mark.parametrize("method", ["adpll", "naive"])
def test_probability_computation(benchmark, once, kind, missing_rate, method):
    conditions, store, skipped = _feasible_conditions(kind, missing_rate)

    if method == "adpll":
        def compute():
            solver = ADPLL(store)
            return [solver.probability(c) for c in conditions]
    else:
        def compute():
            return [
                naive_probability(c, store, max_assignments=None) for c in conditions
            ]

    values = once(benchmark, compute)
    benchmark.extra_info["conditions"] = len(conditions)
    benchmark.extra_info["skipped_too_large"] = skipped
    benchmark.extra_info["mean_probability"] = (
        sum(values) / len(values) if values else 0.0
    )
