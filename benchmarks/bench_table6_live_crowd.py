"""Table 6 benchmark: simulated "live AMT" F1 per strategy.

Paper values: FBS 0.956, UBS 0.979, HHS 0.978 on NBA with real workers.
Expected shape: all high; UBS/HHS above FBS.
"""

import pytest

from repro.experiments.table6_live import PAPER_F1, live_point

SIZE = 300


@pytest.mark.parametrize("strategy", ["fbs", "ubs", "hhs"])
def test_live_crowd(benchmark, once, strategy):
    f1 = once(benchmark, lambda: live_point(strategy, SIZE))
    benchmark.extra_info.update(f1=f1, paper_f1=PAPER_F1[strategy])
    assert f1 > 0.7
