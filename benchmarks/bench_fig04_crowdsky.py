"""Figure 4 benchmark: BayesCrowd vs CrowdSky over cardinality.

Series per (system, n): execution time (the benchmark timing) plus posted
tasks (monetary cost), rounds (latency) and F1 in ``extra_info``.
Expected shape: CrowdSky posts several times more tasks and rounds, the
gap widening with cardinality.
"""

import pytest

from repro.experiments.fig04_crowdsky import bayescrowd_point, crowdsky_point

CARDINALITIES = (60, 100, 140)
SYSTEMS = ("bayescrowd-fbs", "bayescrowd-hhs", "crowdsky")


@pytest.mark.parametrize("n", CARDINALITIES)
@pytest.mark.parametrize("system", SYSTEMS)
def test_crowdsky_comparison(benchmark, once, system, n):
    if system == "crowdsky":
        point = once(benchmark, lambda: crowdsky_point(n))
    else:
        strategy = system.split("-")[1]
        point = once(benchmark, lambda: bayescrowd_point(n, strategy))
    benchmark.extra_info["tasks"] = point["tasks"]
    benchmark.extra_info["rounds"] = point["rounds"]
    benchmark.extra_info["f1"] = point["f1"]
