"""Figure 5 benchmark: cost/accuracy vs budget for FBS / UBS / HHS.

Expected shape: F1 climbs and time grows with budget; FBS fastest /
least accurate, UBS slowest / most accurate, HHS between.
"""

import pytest

from repro.experiments.sweep import sweep_point

BUDGETS = {"nba": (10, 25, 50, 100), "synthetic": (30, 60, 120)}
SIZES = {"nba": 250, "synthetic": 400}
STRATEGIES = ("fbs", "ubs", "hhs")


@pytest.mark.parametrize("kind", sorted(SIZES))
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("budget_index", range(3))
def test_budget_sweep(benchmark, once, kind, strategy, budget_index):
    budget = BUDGETS[kind][budget_index]
    point = once(
        benchmark, lambda: sweep_point(kind, SIZES[kind], strategy, budget=budget)
    )
    benchmark.extra_info.update(
        budget=budget, f1=point["f1"], tasks=point["tasks"], rounds=point["rounds"]
    )
