"""Size-bounded LRU mapping for hot-path memo tables.

Long crowdsourcing runs accumulate stale-version entries in the
probability caches (``ProbabilityEngine._cache``, ``ADPLL._memo``):
entries keyed by conditions whose variables were constrained later are
never looked up again, yet a plain dict keeps them forever.  Bounding
the tables with LRU eviction caps memory while keeping the hot entries
(recently touched conditions are exactly the ones task selection
re-asks about every round).

Built on ``dict``'s insertion-order guarantee: a hit re-inserts the key
to mark it most-recent, an insert past capacity evicts the oldest.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")

#: ``maxsize`` that disables eviction (the table behaves like a dict).
UNBOUNDED = 0


class LRUCache(Generic[K, V]):
    """A dict with least-recently-used eviction past ``maxsize`` entries.

    ``maxsize <= 0`` disables the bound.  Only the operations the
    probability hot paths need are provided (``get``/``__setitem__``/
    ``__contains__``/``__len__``/``clear``), all O(1).
    """

    __slots__ = ("maxsize", "_data", "hits", "misses", "evictions")

    def __init__(self, maxsize: int = UNBOUNDED) -> None:
        self.maxsize = int(maxsize)
        self._data: Dict[K, V] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        data = self._data
        try:
            value = data.pop(key)
        except KeyError:
            self.misses += 1
            return default
        data[key] = value  # re-insert: now the most recently used
        self.hits += 1
        return value

    def __setitem__(self, key: K, value: V) -> None:
        data = self._data
        if key in data:
            del data[key]
        elif self.maxsize > 0 and len(data) >= self.maxsize:
            del data[next(iter(data))]  # oldest insertion = least recent
            self.evictions += 1
        data[key] = value

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for perf reporting."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
