"""Impute-then-query baseline.

A machine-only alternative the crowdsourcing literature compares against
(cf. the paper's reference [62], which imputes missing values with a
Bayesian network): fill every missing cell with a point estimate from its
learned distribution, then run the ordinary complete-data skyline.  No
crowd cost, but errors are silent -- the experiments show how much
accuracy the crowd actually buys over imputation.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from ..core.config import BayesCrowdConfig
from ..core.framework import learn_distributions
from ..core.result import QueryResult
from ..datasets.dataset import IncompleteDataset, Variable
from ..skyline.algorithms import skyline

#: Supported point estimators for the imputed value.
IMPUTE_MODES = ("map", "mean", "sample")


def impute_dataset(
    dataset: IncompleteDataset,
    distributions: Optional[Dict[Variable, np.ndarray]] = None,
    mode: str = "map",
    config: Optional[BayesCrowdConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """A completed value matrix with every missing cell point-estimated.

    ``map`` takes the posterior mode, ``mean`` the rounded posterior mean,
    ``sample`` one posterior draw (useful for multiple-imputation style
    sensitivity checks).
    """
    if mode not in IMPUTE_MODES:
        raise ValueError("unknown impute mode %r; expected one of %r" % (mode, IMPUTE_MODES))
    if distributions is None:
        distributions = learn_distributions(dataset, config or BayesCrowdConfig())
    rng = rng or np.random.default_rng(0)
    filled = dataset.values.copy()
    for variable in dataset.variables():
        pmf = np.asarray(distributions[variable], dtype=np.float64)
        if mode == "map":
            value = int(np.argmax(pmf))
        elif mode == "mean":
            value = int(round(float((np.arange(len(pmf)) * pmf).sum())))
        else:
            value = int(rng.choice(len(pmf), p=pmf))
        filled[variable] = value
    return filled


def imputed_skyline(
    dataset: IncompleteDataset,
    distributions: Optional[Dict[Variable, np.ndarray]] = None,
    mode: str = "map",
    config: Optional[BayesCrowdConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> QueryResult:
    """Impute, run the complete-data skyline, report as a query result."""
    start = time.perf_counter()
    filled = impute_dataset(
        dataset, distributions=distributions, mode=mode, config=config, rng=rng
    )
    answers = skyline(filled)
    seconds = time.perf_counter() - start
    return QueryResult(
        answers=answers,
        certain_answers=[],
        tasks_posted=0,
        rounds=0,
        seconds=seconds,
        modeling_seconds=seconds,
        initial_answers=answers,
    )
