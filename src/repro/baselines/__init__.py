"""Comparison baselines: CrowdSky, machine-only, impute-then-query."""

from .crowdsky import CrowdSky
from .imputation import IMPUTE_MODES, impute_dataset, imputed_skyline
from .machine_only import machine_only_skyline

__all__ = [
    "CrowdSky",
    "IMPUTE_MODES",
    "impute_dataset",
    "imputed_skyline",
    "machine_only_skyline",
]
