"""CrowdSky baseline (Lee, Lee and Kim, EDBT 2016) -- reimplementation.

CrowdSky is the state-of-the-art crowd skyline method the paper compares
against (Figure 4).  Its setting differs from BayesCrowd's: attributes are
partitioned into *observed* attributes (fully complete) and *crowd*
attributes (fully missing), and dominance is resolved by asking the crowd
pairwise comparisons of two objects on a crowd attribute.  Its structure,
per the original paper and the description in Section 7.3:

* candidates are organized into **skyline layers** over the observed
  attributes (an object can only be dominated by objects weakly better on
  every observed attribute, which live in earlier or equal layers);
* for each object, the **dominating-set** pruning keeps only potential
  dominators -- objects ``p`` with ``p >= o`` on every observed attribute;
* each potential-dominance test asks pairwise crowd comparisons attribute
  by attribute, short-circuiting as soon as one answer rules dominance
  out, and reusing any comparison already answered (deduplication);
* it performs **no probabilistic inference**: every unresolved comparison
  a dominance test needs is eventually crowdsourced, which is exactly why
  it posts an order of magnitude more tasks and rounds than BayesCrowd.

Tasks are posted in fixed-size batches (20 per round in the paper's
comparison) through the same simulated platform as BayesCrowd, so task
and round accounting is directly comparable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..crowd.platform import SimulatedCrowdPlatform
from ..crowd.task import ComparisonTask
from ..ctable.expression import Expression, Relation, Var
from ..datasets.dataset import IncompleteDataset
from ..skyline.algorithms import skyline_layers
from ..core.result import QueryResult, RoundRecord

#: Canonical key of one pairwise crowd comparison: (low_obj, high_obj, attr).
_PairKey = Tuple[int, int, int]


@dataclass
class _PairCheck:
    """State of one "does p dominate o?" test."""

    o: int
    p: int
    verdict: Optional[bool] = None  # None = still unresolved


class CrowdSky:
    """Skyline computation with crowdsourced pairwise comparisons."""

    def __init__(
        self,
        dataset: IncompleteDataset,
        platform: Optional[SimulatedCrowdPlatform] = None,
        tasks_per_round: int = 20,
        worker_accuracy: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.observed_attrs = [
            j for j in range(dataset.n_attributes) if not dataset.mask[:, j].any()
        ]
        self.crowd_attrs = [
            j for j in range(dataset.n_attributes) if dataset.mask[:, j].all()
        ]
        if len(self.observed_attrs) + len(self.crowd_attrs) != dataset.n_attributes:
            raise ValueError(
                "CrowdSky needs attributes either fully observed or fully "
                "missing (its observed/crowd attribute split)"
            )
        if not self.crowd_attrs:
            raise ValueError("CrowdSky needs at least one crowd attribute")
        if tasks_per_round < 1:
            raise ValueError("tasks_per_round must be positive")
        self.tasks_per_round = tasks_per_round
        if platform is None:
            platform = SimulatedCrowdPlatform(
                dataset,
                worker_accuracy=worker_accuracy,
                rng=np.random.default_rng(seed),
                # CrowdSky batches routinely reuse an object across pairs,
                # so BayesCrowd's conflict-freedom rule does not apply.
                enforce_conflict_free=False,
            )
        self.platform = platform
        #: answered pairwise relations, canonically keyed
        self._known: Dict[_PairKey, Relation] = {}

    # ------------------------------------------------------------------
    # knowledge base over pairwise comparisons
    # ------------------------------------------------------------------
    def _lookup(self, a: int, b: int, attr: int) -> Optional[Relation]:
        """Known relation of ``a`` vs ``b`` on ``attr`` (any orientation)."""
        if a <= b:
            relation = self._known.get((a, b, attr))
            return relation
        relation = self._known.get((b, a, attr))
        return relation.flipped() if relation is not None else None

    def _record(self, a: int, b: int, attr: int, relation: Relation) -> None:
        if a <= b:
            self._known[(a, b, attr)] = relation
        else:
            self._known[(b, a, attr)] = relation.flipped()

    # ------------------------------------------------------------------
    def _potential_dominators(self) -> List[List[int]]:
        """Dominating-set pruning over the observed attributes."""
        values = self.dataset.values
        n = self.dataset.n_objects
        observed = values[:, self.observed_attrs]
        result: List[List[int]] = []
        for o in range(n):
            geq = (observed >= observed[o]).all(axis=1)
            geq[o] = False
            result.append(np.nonzero(geq)[0].tolist())
        return result

    def _evaluate_pair(self, check: _PairCheck) -> Optional[int]:
        """Advance one dominance test against current knowledge.

        Returns the crowd attribute whose comparison is needed next, or
        ``None`` once ``check.verdict`` is decided.
        """
        o, p = check.o, check.p
        observed = self.dataset.values
        strictly_better = any(
            observed[p, j] > observed[o, j] for j in self.observed_attrs
        )
        for attr in self.crowd_attrs:
            relation = self._lookup(p, o, attr)
            if relation is None:
                return attr
            if relation is Relation.LESS:
                check.verdict = False  # p is worse somewhere: cannot dominate
                return None
            if relation is Relation.GREATER:
                strictly_better = True
        check.verdict = strictly_better  # p >= o everywhere
        return None

    # ------------------------------------------------------------------
    def run(self) -> QueryResult:
        """Resolve the skyline, batching tasks 20 at a time."""
        start = time.perf_counter()
        crowd_wait = 0.0
        n = self.dataset.n_objects
        layers = skyline_layers(self.dataset.values[:, self.observed_attrs])
        layer_of = {}
        for depth, layer in enumerate(layers):
            for obj in layer:
                layer_of[obj] = depth

        dominator_lists = self._potential_dominators()
        checks: List[_PairCheck] = []
        for o in range(n):
            for p in dominator_lists[o]:
                checks.append(_PairCheck(o=o, p=p))
        # Earlier observed-layer objects first: they are the likeliest
        # skyline members and the cheapest tests (fewest dominators).
        checks.sort(key=lambda c: (layer_of[c.o], c.o, layer_of[c.p], c.p))

        dominated: Set[int] = set()
        history: List[RoundRecord] = []
        while True:
            round_start = time.perf_counter()
            batch: List[ComparisonTask] = []
            batch_keys: Set[_PairKey] = set()
            for check in checks:
                if check.verdict is not None or check.o in dominated:
                    continue
                attr = self._evaluate_pair(check)
                if check.verdict is True:
                    dominated.add(check.o)
                    continue
                if attr is None:
                    continue
                key = (min(check.o, check.p), max(check.o, check.p), attr)
                if key in batch_keys:
                    continue
                batch_keys.add(key)
                batch.append(
                    ComparisonTask(
                        Expression(Var(check.p, attr), Var(check.o, attr)),
                        for_object=check.o,
                    )
                )
                if len(batch) >= self.tasks_per_round:
                    break
            if not batch:
                break

            post_start = time.perf_counter()
            answers = self.platform.post_batch(batch)
            crowd_wait += time.perf_counter() - post_start
            for task, relation in answers.items():
                left = task.expression.left
                right = task.expression.right
                self._record(left.obj, right.obj, left.attr, relation)
            history.append(
                RoundRecord(
                    round_index=len(history) + 1,
                    tasks_posted=len(batch),
                    objects=sorted({t.for_object for t in batch}),
                    newly_decided=0,
                    open_conditions=0,
                    seconds=time.perf_counter() - round_start,
                )
            )

        # Final sweep: decide any remaining checks from complete knowledge.
        for check in checks:
            if check.verdict is None and check.o not in dominated:
                self._evaluate_pair(check)
                if check.verdict:
                    dominated.add(check.o)

        answers_set = sorted(set(range(n)) - dominated)
        seconds = time.perf_counter() - start - crowd_wait
        return QueryResult(
            answers=answers_set,
            certain_answers=answers_set,
            tasks_posted=sum(r.tasks_posted for r in history),
            rounds=len(history),
            seconds=seconds,
            history=history,
        )
