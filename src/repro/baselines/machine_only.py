"""Machine-only baseline: answer without asking the crowd anything.

Builds the c-table and reports objects that are certainly answers or have
``Pr(phi) > threshold`` under the learned distributions -- i.e. a
BayesCrowd run with budget zero.  Used in experiments to show how much
accuracy the crowdsourcing phase actually buys.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..core.config import BayesCrowdConfig
from ..core.framework import BayesCrowd
from ..core.result import QueryResult
from ..datasets.dataset import IncompleteDataset


def machine_only_skyline(
    dataset: IncompleteDataset,
    config: Optional[BayesCrowdConfig] = None,
    **kwargs,
) -> QueryResult:
    """Run the modeling phase + probabilistic inference with no crowd budget."""
    base = config or BayesCrowdConfig()
    zero_budget = dataclasses.replace(base, budget=0)
    return BayesCrowd(dataset, config=zero_budget, **kwargs).run()
