"""Error taxonomy of the crowd/platform boundary.

A real crowdsourcing market fails in qualitatively different ways, and
the framework reacts differently to each:

* :class:`PlatformTransientError` -- the platform hiccuped (rate limit,
  network partition, service restart).  Retrying the same batch after a
  backoff is expected to succeed; :meth:`BayesCrowd.run` does exactly
  that, bounded by ``max_retries``.
* :class:`PlatformFatalError` -- the platform is gone for good (account
  suspended, campaign cancelled).  Crowdsourcing stops and the run
  completes *degraded* on whatever answers were already folded in.
* :class:`TaskExpiredError` -- specific tasks can no longer be answered
  (posted too many times, HIT lifetime exceeded).  The framework refunds
  and abandons exactly those tasks and reposts the rest.

Batches can also be rejected outright before posting, which is a caller
bug rather than a platform fault:

* :class:`ConflictingBatchError` -- two tasks in one batch share a
  variable (forbidden by Section 6.1's conflict rule);
* :class:`DuplicateTaskError` -- the same task appears twice in one
  batch (the answers dict would silently collapse the duplicates while
  the money accounting charged for both).

Independently of batches, :class:`CheckpointError` marks an unusable
round-level checkpoint (wrong version, or written by a different
query/config than the one trying to resume).

Beyond the crowd boundary the library raises three more typed errors:

* :class:`ConfigError` -- an invalid knob value in
  :class:`repro.core.BayesCrowdConfig` (subclasses ``ValueError`` so
  pre-existing ``except ValueError`` callers keep working);
* :class:`DataValidationError` -- rejected input data, e.g. a NaN/inf in
  an *observed* cell of a user-supplied CSV, which would silently poison
  Bayesian-network training downstream;
* :class:`ResourceBudgetError` -- an exact probability computation
  exceeded its node budget or wall-clock deadline.  Raised internally by
  :class:`repro.probability.ADPLL` and caught by the resource guard
  (:mod:`repro.probability.guard`), which degrades to the Monte Carlo
  estimator instead of stalling the round.
"""

from __future__ import annotations

from typing import Sequence


class CrowdPlatformError(RuntimeError):
    """Base class of runtime failures raised by a crowd platform."""


class PlatformTransientError(CrowdPlatformError):
    """A retryable platform failure (timeout, rate limit, outage blip)."""


class PlatformFatalError(CrowdPlatformError):
    """An unrecoverable platform failure; retrying cannot help."""


class TaskExpiredError(CrowdPlatformError):
    """Some tasks of a batch can no longer be answered.

    Carries the expired tasks so the caller can refund and drop exactly
    those while reposting the remainder of the batch.
    """

    def __init__(self, tasks: Sequence, message: str = "") -> None:
        self.tasks = tuple(tasks)
        super().__init__(
            message or "%d task(s) expired: %s"
            % (len(self.tasks), ", ".join(str(t) for t in self.tasks))
        )


class BatchRejectedError(ValueError):
    """A batch was malformed and rejected before any task was posted."""


class ConflictingBatchError(BatchRejectedError):
    """A batch contained two tasks sharing a variable (Section 6.1)."""


class DuplicateTaskError(BatchRejectedError):
    """A batch contained the same task more than once."""


class CheckpointError(RuntimeError):
    """A checkpoint could not be used to resume a query run."""


class ConfigError(ValueError):
    """An invalid configuration knob value."""


class DataValidationError(ValueError):
    """Input data was rejected before it could poison the pipeline."""


class ResourceBudgetError(RuntimeError):
    """An exact computation exceeded its node budget or deadline.

    Carries which budget tripped (``"node_budget"`` or ``"deadline"``)
    and how much work was done, so the guard can report why it degraded.
    """

    def __init__(self, reason: str, spent: float = 0.0, limit: float = 0.0) -> None:
        self.reason = reason
        self.spent = spent
        self.limit = limit
        super().__init__(
            "%s exhausted (spent %s of %s)" % (reason, spent, limit)
        )


class JournalError(RuntimeError):
    """An answer journal could not be written or used for recovery."""


class JournalCorruptError(JournalError):
    """A journal record failed its checksum or sequence check.

    A torn *final* line (the record a crash interrupted mid-write) is
    tolerated and dropped by the reader; corruption anywhere before the
    tail means the file cannot be trusted and raises this error.
    """


class SessionCancelledError(RuntimeError):
    """A session's cooperative cancellation token was triggered.

    Raised from a :meth:`repro.session.CancellationToken.check` call at a
    phase boundary (or inside a long-running phase loop).  State already
    journaled/checkpointed stays durable: a cancelled run can resume.
    """

    def __init__(self, phase: str = "", reason: str = "") -> None:
        self.phase = phase
        self.reason = reason
        super().__init__(
            "session cancelled%s%s"
            % (
                " during %s" % phase if phase else "",
                " (%s)" % reason if reason else "",
            )
        )


class BackpressureError(RuntimeError):
    """A bounded pending-answer queue rejected a submission (full)."""
