"""Missing-value injection.

The paper (Section 7) simulates incompleteness by deleting attribute
values uniformly at random (MCAR), so that "the missing rate of each
object is roughly equal to the missing rate of the dataset".  For the
CrowdSky comparison (Figure 4) it instead blanks out *entire attributes*:
"we temporally adjust NBA dataset by missing all values in two attributes
and keeping complete on the other attributes".
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def mcar_mask(
    n_objects: int,
    n_attributes: int,
    missing_rate: float,
    rng: np.random.Generator,
    max_missing_per_object: Optional[int] = None,
) -> np.ndarray:
    """Missing-completely-at-random boolean mask.

    Exactly ``round(rate * n * d)`` cells are hidden, chosen uniformly
    without replacement.  ``max_missing_per_object`` optionally caps how
    many attributes a single object may lose (it keeps at least one
    observed cell per object by default), mirroring the common setup in
    incomplete-skyline studies where no object is fully unknown.
    """
    if not 0.0 <= missing_rate < 1.0:
        raise ValueError("missing_rate must be in [0, 1), got %r" % missing_rate)
    if max_missing_per_object is None:
        max_missing_per_object = max(1, n_attributes - 1)
    max_missing_per_object = min(max_missing_per_object, n_attributes)

    total_cells = n_objects * n_attributes
    target = int(round(missing_rate * total_cells))
    mask = np.zeros((n_objects, n_attributes), dtype=bool)
    if target == 0:
        return mask

    # Sample cells uniformly, skipping cells that would overfill an object.
    per_object = np.zeros(n_objects, dtype=np.int64)
    order = rng.permutation(total_cells)
    hidden = 0
    for flat in order:
        if hidden >= target:
            break
        i, j = divmod(int(flat), n_attributes)
        if per_object[i] >= max_missing_per_object:
            continue
        mask[i, j] = True
        per_object[i] += 1
        hidden += 1
    return mask


def balanced_mcar_mask(
    n_objects: int,
    n_attributes: int,
    missing_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """MCAR with per-object balance.

    The paper notes "the missing rate of each object is roughly equal to
    the missing rate of the dataset": every object loses either
    ``floor(rate * d)`` or ``ceil(rate * d)`` attributes (mixed so the
    global rate is hit exactly), with the attributes chosen uniformly per
    object.  This also bounds the number of variables any one condition
    can branch over, which keeps exact probability computation tractable
    at high missing rates.
    """
    if not 0.0 <= missing_rate < 1.0:
        raise ValueError("missing_rate must be in [0, 1), got %r" % missing_rate)
    per_object_target = missing_rate * n_attributes
    low = int(np.floor(per_object_target))
    high = min(int(np.ceil(per_object_target)), n_attributes - 1)
    low = min(low, high)
    total_target = int(round(missing_rate * n_objects * n_attributes))
    counts = np.full(n_objects, low, dtype=np.int64)
    deficit = total_target - counts.sum()
    if deficit > 0 and high > low:
        bump = rng.choice(n_objects, size=min(deficit, n_objects), replace=False)
        counts[bump] = high
    mask = np.zeros((n_objects, n_attributes), dtype=bool)
    for i in range(n_objects):
        if counts[i] > 0:
            cols = rng.choice(n_attributes, size=int(counts[i]), replace=False)
            mask[i, cols] = True
    return mask


def attribute_mask(
    n_objects: int,
    n_attributes: int,
    missing_attributes: Sequence[int],
) -> np.ndarray:
    """Mask hiding *every* value of the given attributes (CrowdSky setting)."""
    missing_attributes = list(missing_attributes)
    for j in missing_attributes:
        if not 0 <= j < n_attributes:
            raise ValueError("attribute index %d out of range" % j)
    mask = np.zeros((n_objects, n_attributes), dtype=bool)
    mask[:, missing_attributes] = True
    return mask
