"""The paper's running example (Table 1): five movies, five audiences.

This module reproduces the sample dataset exactly, including the
attribute-value probability distributions assumed in Example 3, so the
worked numbers of the paper (the c-table of Table 3, the dominator sets
of Table 4, ``Pr(phi(o5)) = 0.823`` and the entropies of Example 4) can
be asserted in tests.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .dataset import MISSING, IncompleteDataset, Variable

#: Movie titles from Table 1 of the paper.
MOVIE_NAMES = [
    "Schindler's List (1993)",
    "Se7en (1995)",
    "The Godfather (1972)",
    "The Lion King (1994)",
    "Star Wars (1977)",
]

#: Attribute domains: a1 in 0..9, a2 in 0..9, a3 in 0..7, a4 in 0..5, a5 in 0..9.
#: a3/a4 sizes follow the probability distributions assumed in Example 3.
DOMAIN_SIZES = [10, 10, 8, 6, 10]

#: Ground-truth values for the missing cells, chosen to be consistent with
#: the crowd answers assumed in Example 4 of the paper:
#:   Var(o5, a4) < 4,  Var(o5, a3) = 3,  Var(o5, a2) > 2,  Var(o2, a2) > 3.
TRUE_MISSING_VALUES: Dict[Variable, int] = {
    (1, 1): 5,  # Var(o2, a2) > 3
    (2, 2): 4,  # Var(o3, a3): unconstrained by the example
    (4, 1): 7,  # Var(o5, a2) > 2
    (4, 2): 3,  # Var(o5, a3) = 3
    (4, 3): 1,  # Var(o5, a4) < 4
}


def sample_dataset() -> IncompleteDataset:
    """Table 1 of the paper as an :class:`IncompleteDataset` with ground truth."""
    values = np.array(
        [
            [5, 2, 3, 4, 1],
            [6, MISSING, 2, 2, 2],
            [1, 1, MISSING, 5, 3],
            [4, 3, 1, 2, 1],
            [5, MISSING, MISSING, MISSING, 1],
        ],
        dtype=np.int64,
    )
    complete = values.copy()
    for (obj, attr), value in TRUE_MISSING_VALUES.items():
        complete[obj, attr] = value
    return IncompleteDataset(
        values=values,
        domain_sizes=DOMAIN_SIZES,
        complete=complete,
        attribute_names=["a1", "a2", "a3", "a4", "a5"],
        object_names=MOVIE_NAMES,
        name="movies",
    )


def example_distributions() -> Dict[Variable, np.ndarray]:
    """The per-variable value distributions assumed in Example 3.

    * ``p(a2 = i) = 0.1`` for ``i = 0..9``
    * ``p(a3 = i) = 0.125`` for ``i = 0..7``
    * ``p(a4 = i)``: ``0.1`` for ``i in {0, 1, 5}``, ``0.2`` for ``{2, 3}``,
      ``0.3`` for ``{4}``

    The distribution of a variable is that of its attribute.
    """
    attribute_pmfs = {
        1: np.full(10, 0.1),
        2: np.full(8, 0.125),
        3: np.array([0.1, 0.1, 0.2, 0.2, 0.3, 0.1]),
    }
    dataset = sample_dataset()
    distributions: Dict[Variable, np.ndarray] = {}
    for variable in dataset.variables():
        __, attr = variable
        if attr not in attribute_pmfs:
            raise ValueError(
                "Example 3 defines no distribution for attribute %d" % attr
            )
        distributions[variable] = attribute_pmfs[attr].copy()
    return distributions
