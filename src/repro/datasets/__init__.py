"""Dataset substrate: incomplete relations, generators, missing injection."""

from .dataset import MISSING, DatasetError, IncompleteDataset, Variable, from_complete
from .loaders import load_csv
from .missing import attribute_mask, balanced_mcar_mask, mcar_mask
from .movies import example_distributions, sample_dataset
from .nba import generate_nba
from .synthetic import adult_like_network, generate_synthetic

__all__ = [
    "MISSING",
    "DatasetError",
    "IncompleteDataset",
    "Variable",
    "from_complete",
    "load_csv",
    "attribute_mask",
    "mcar_mask",
    "balanced_mcar_mask",
    "sample_dataset",
    "example_distributions",
    "generate_nba",
    "generate_synthetic",
    "adult_like_network",
]
