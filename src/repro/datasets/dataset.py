"""Incomplete dataset model.

The paper operates on relations whose cells are discrete ordinal values
("the larger the better") and where an arbitrary subset of cells is
missing.  A missing cell of object ``o`` on attribute ``a`` is the
*variable* ``Var(o, a)`` of the c-table model.

:class:`IncompleteDataset` keeps three aligned pieces of state:

* ``values`` -- the visible matrix; missing cells hold :data:`MISSING`,
* ``mask``   -- boolean matrix, ``True`` where the cell is missing,
* ``complete`` -- the held-out ground truth matrix (used only by the
  simulated crowd and by evaluation, never by the query algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Sentinel stored in ``values`` where a cell is missing.
MISSING = -1

#: A variable identifies one missing cell: ``(object_index, attribute_index)``.
Variable = Tuple[int, int]


class DatasetError(ValueError):
    """Raised when a dataset is constructed from inconsistent pieces."""


@dataclass
class IncompleteDataset:
    """A discrete ordinal dataset with missing cells.

    Parameters
    ----------
    values:
        ``(n, d)`` integer matrix.  Cell ``values[i, j]`` is either an
        observed value in ``range(domain_sizes[j])`` or :data:`MISSING`.
    domain_sizes:
        Number of discrete levels per attribute.  Values are the integers
        ``0 .. domain_sizes[j] - 1`` and larger means better.
    complete:
        Optional ground-truth matrix with no missing cells.  Observed cells
        must agree with ``values``.
    attribute_names / object_names:
        Optional labels used for reporting; generated when omitted.
    name:
        Human-readable dataset name.
    """

    values: np.ndarray
    domain_sizes: Sequence[int]
    complete: Optional[np.ndarray] = None
    attribute_names: Optional[List[str]] = None
    object_names: Optional[List[str]] = None
    name: str = "dataset"
    mask: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.int64)
        if self.values.ndim != 2:
            raise DatasetError("values must be a 2-D matrix")
        self.domain_sizes = list(int(s) for s in self.domain_sizes)
        if len(self.domain_sizes) != self.values.shape[1]:
            raise DatasetError(
                "domain_sizes length %d does not match %d attributes"
                % (len(self.domain_sizes), self.values.shape[1])
            )
        if any(s <= 0 for s in self.domain_sizes):
            raise DatasetError("every attribute needs a positive domain size")
        self.mask = self.values == MISSING
        self._check_value_ranges()
        if self.complete is not None:
            self.complete = np.asarray(self.complete, dtype=np.int64)
            self._check_complete()
        if self.attribute_names is None:
            self.attribute_names = ["a%d" % (j + 1) for j in range(self.n_attributes)]
        if len(self.attribute_names) != self.n_attributes:
            raise DatasetError("attribute_names length mismatch")
        if self.object_names is None:
            self.object_names = ["o%d" % (i + 1) for i in range(self.n_objects)]
        if len(self.object_names) != self.n_objects:
            raise DatasetError("object_names length mismatch")

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def _check_value_ranges(self) -> None:
        for j, size in enumerate(self.domain_sizes):
            column = self.values[:, j]
            observed = column[column != MISSING]
            if observed.size and (observed.min() < 0 or observed.max() >= size):
                raise DatasetError(
                    "attribute %d has observed values outside [0, %d)" % (j, size)
                )

    def _check_complete(self) -> None:
        if self.complete.shape != self.values.shape:
            raise DatasetError("complete matrix shape mismatch")
        if (self.complete == MISSING).any():
            raise DatasetError("complete matrix must not contain missing cells")
        observed = ~self.mask
        if not np.array_equal(self.values[observed], self.complete[observed]):
            raise DatasetError("observed cells disagree with the complete matrix")
        for j, size in enumerate(self.domain_sizes):
            column = self.complete[:, j]
            if column.min() < 0 or column.max() >= size:
                raise DatasetError(
                    "complete attribute %d outside [0, %d)" % (j, size)
                )

    # ------------------------------------------------------------------
    # basic shape accessors
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return int(self.values.shape[0])

    @property
    def n_attributes(self) -> int:
        return int(self.values.shape[1])

    @property
    def missing_rate(self) -> float:
        """Fraction of missing cells over all cells (the paper's metric)."""
        total = self.values.size
        return float(self.mask.sum()) / total if total else 0.0

    def has_ground_truth(self) -> bool:
        return self.complete is not None

    # ------------------------------------------------------------------
    # cell / object accessors
    # ------------------------------------------------------------------
    def is_missing(self, obj: int, attr: int) -> bool:
        return bool(self.mask[obj, attr])

    def observed_value(self, obj: int, attr: int) -> int:
        """Return the observed value of a cell; raise if it is missing."""
        if self.mask[obj, attr]:
            raise DatasetError("cell (%d, %d) is missing" % (obj, attr))
        return int(self.values[obj, attr])

    def true_value(self, obj: int, attr: int) -> int:
        """Ground-truth value of a cell (simulated-crowd only)."""
        if self.complete is None:
            raise DatasetError("dataset %r has no ground truth" % self.name)
        return int(self.complete[obj, attr])

    def observed_evidence(self, obj: int) -> Dict[int, int]:
        """Observed ``{attribute: value}`` mapping for one object."""
        row = self.values[obj]
        return {
            j: int(row[j]) for j in range(self.n_attributes) if not self.mask[obj, j]
        }

    def is_complete_object(self, obj: int) -> bool:
        return not self.mask[obj].any()

    def variables(self) -> Iterator[Variable]:
        """Iterate over every missing cell as a ``(object, attribute)`` pair."""
        rows, cols = np.nonzero(self.mask)
        for i, j in zip(rows.tolist(), cols.tolist()):
            yield (int(i), int(j))

    def n_variables(self) -> int:
        return int(self.mask.sum())

    # ------------------------------------------------------------------
    # derived datasets
    # ------------------------------------------------------------------
    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "IncompleteDataset":
        """Dataset restricted to the given object indices (order preserved)."""
        indices = list(indices)
        return IncompleteDataset(
            values=self.values[indices].copy(),
            domain_sizes=list(self.domain_sizes),
            complete=None if self.complete is None else self.complete[indices].copy(),
            attribute_names=list(self.attribute_names),
            object_names=[self.object_names[i] for i in indices],
            name=name or ("%s[%d]" % (self.name, len(indices))),
        )

    def as_complete(self, name: Optional[str] = None) -> "IncompleteDataset":
        """Ground-truth view with nothing missing (for evaluation)."""
        if self.complete is None:
            raise DatasetError("dataset %r has no ground truth" % self.name)
        return IncompleteDataset(
            values=self.complete.copy(),
            domain_sizes=list(self.domain_sizes),
            complete=self.complete.copy(),
            attribute_names=list(self.attribute_names),
            object_names=list(self.object_names),
            name=name or ("%s-complete" % self.name),
        )

    def complete_rows(self) -> np.ndarray:
        """Rows with no missing cell (used to train the Bayesian network)."""
        keep = ~self.mask.any(axis=1)
        return self.values[keep]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "IncompleteDataset(name=%r, n=%d, d=%d, missing=%.3f)" % (
            self.name,
            self.n_objects,
            self.n_attributes,
            self.missing_rate,
        )


def from_complete(
    complete: np.ndarray,
    mask: np.ndarray,
    domain_sizes: Sequence[int],
    name: str = "dataset",
    attribute_names: Optional[List[str]] = None,
    object_names: Optional[List[str]] = None,
) -> IncompleteDataset:
    """Build an :class:`IncompleteDataset` by hiding ``mask`` cells of ``complete``."""
    complete = np.asarray(complete, dtype=np.int64)
    mask = np.asarray(mask, dtype=bool)
    if complete.shape != mask.shape:
        raise DatasetError("complete and mask shapes differ")
    values = complete.copy()
    values[mask] = MISSING
    return IncompleteDataset(
        values=values,
        domain_sizes=domain_sizes,
        complete=complete,
        attribute_names=attribute_names,
        object_names=object_names,
        name=name,
    )
