"""Loading user-supplied tabular data.

Downstream adoption path: bring your own CSV, mark missing cells with
empty fields (or ``?`` / ``NA``), and get an :class:`IncompleteDataset`
ready for a crowd query.  Continuous columns are discretized into ordinal
levels (Section 3 of the paper); columns whose direction is "smaller is
better" can be flipped.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from ..bayesnet.discretize import Discretizer
from ..errors import DataValidationError
from .dataset import MISSING, IncompleteDataset

PathLike = Union[str, Path]

#: Cell spellings treated as missing (case-insensitive).
MISSING_TOKENS = {"", "?", "na", "n/a", "nan", "null", "none", "missing"}


def _is_missing(token: str) -> bool:
    return token.strip().lower() in MISSING_TOKENS


def load_csv(
    path: PathLike,
    levels: int = 8,
    smaller_is_better: Sequence[str] = (),
    name: Optional[str] = None,
    id_column: Optional[str] = None,
    delimiter: str = ",",
) -> IncompleteDataset:
    """Read a CSV with a header row into an :class:`IncompleteDataset`.

    Parameters
    ----------
    levels:
        Number of ordinal levels per attribute (equal-frequency binning on
        the observed values of each column).
    smaller_is_better:
        Column names whose natural direction is "smaller wins" (price,
        distance, turnovers, ...); their values are negated before
        discretization so the library's larger-is-better convention holds.
    id_column:
        Optional column holding object names instead of data.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = list(reader)
    if len(rows) < 2:
        raise ValueError("CSV needs a header row and at least one data row")
    header = [h.strip() for h in rows[0]]
    data_rows = rows[1:]

    id_index = None
    if id_column is not None:
        if id_column not in header:
            raise ValueError("id column %r not in header %r" % (id_column, header))
        id_index = header.index(id_column)
    attribute_names = [h for i, h in enumerate(header) if i != id_index]
    flip = set(smaller_is_better)
    unknown_flips = flip - set(attribute_names)
    if unknown_flips:
        raise ValueError("smaller_is_better names not in header: %r" % sorted(unknown_flips))

    n = len(data_rows)
    d = len(attribute_names)
    raw = np.zeros((n, d), dtype=np.float64)
    mask = np.zeros((n, d), dtype=bool)
    object_names: List[str] = []
    for i, row in enumerate(data_rows):
        if len(row) != len(header):
            raise ValueError(
                "row %d has %d fields, header has %d" % (i + 2, len(row), len(header))
            )
        object_names.append(
            row[id_index].strip() if id_index is not None else "o%d" % (i + 1)
        )
        j = 0
        for col, token in enumerate(row):
            if col == id_index:
                continue
            if _is_missing(token):
                mask[i, j] = True
            else:
                try:
                    parsed = float(token)
                except ValueError:
                    raise ValueError(
                        "row %d, column %r: %r is not numeric"
                        % (i + 2, attribute_names[j], token)
                    ) from None
                # A NaN/inf observed cell would silently poison the
                # discretizer's quantiles (and every downstream
                # probability); spell the missing marker instead.
                if not math.isfinite(parsed):
                    raise DataValidationError(
                        "row %d, column %r: non-finite value %r in an "
                        "observed cell (use one of %s to mark missing)"
                        % (
                            i + 2,
                            attribute_names[j],
                            token,
                            sorted(t for t in MISSING_TOKENS if t),
                        )
                    )
                raw[i, j] = parsed
            j += 1

    for j, column_name in enumerate(attribute_names):
        if column_name in flip:
            raw[:, j] = -raw[:, j]

    # Fit the discretizer on observed cells only; missing cells get
    # placeholder level 0 and are re-masked afterwards.
    values = np.zeros((n, d), dtype=np.int64)
    domain_sizes: List[int] = []
    for j in range(d):
        observed = raw[~mask[:, j], j]
        if observed.size == 0:
            raise ValueError(
                "column %r has no observed values" % attribute_names[j]
            )
        discretizer = Discretizer.fit(observed.reshape(-1, 1), levels)
        domain_sizes.append(discretizer.domain_sizes()[0])
        values[:, j] = discretizer.transform(raw[:, j].reshape(-1, 1))[:, 0]
    values[mask] = MISSING

    return IncompleteDataset(
        values=values,
        domain_sizes=domain_sizes,
        attribute_names=attribute_names,
        object_names=object_names,
        name=name or path.stem,
    )
