"""NBA-like dataset generator.

The paper's *NBA* dataset is 10,000 player-season records with eleven
statistics ("total points, total rebounds, etc.") scraped from nba.com.
That source is unavailable offline, so this module generates a synthetic
stand-in from a latent-skill model that reproduces the properties the
experiments rely on:

* eleven correlated "larger is better" attributes,
* skewed, heavy-tailed marginals (a few stars, many role players),
* strong cross-attribute correlation driven by shared latents
  (overall skill and minutes played), which is exactly what the Bayesian
  network preprocessing step is supposed to capture.

Continuous stats are discretized into ordinal levels via equal-frequency
binning, per Section 3 of the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..bayesnet.discretize import discretize
from .dataset import IncompleteDataset, from_complete
from .missing import balanced_mcar_mask

#: The eleven per-season statistics (all oriented so larger is better;
#: turnovers are negated into "ball security" during generation).
ATTRIBUTE_NAMES = [
    "games",
    "minutes",
    "points",
    "rebounds",
    "assists",
    "steals",
    "blocks",
    "ball_security",
    "fg_pct",
    "ft_pct",
    "three_pm",
]


def _continuous_stats(n: int, rng: np.random.Generator) -> np.ndarray:
    """Sample raw (continuous) season stat lines from the latent model."""
    # Latent player quality: Beta-shaped, most players average, few stars.
    skill = rng.beta(2.0, 5.0, size=n)
    # Role latents tilt a player toward scoring, playmaking or defense.
    scorer = rng.beta(2.0, 2.0, size=n)
    playmaker = rng.beta(2.0, 2.0, size=n)
    defender = rng.beta(2.0, 2.0, size=n)
    big_man = rng.beta(2.0, 3.0, size=n)

    games = np.clip(rng.normal(55 + 25 * skill, 12), 1, 82)
    minutes_per_game = np.clip(8 + 30 * skill + rng.normal(0, 3, n), 2, 42)
    minutes = games * minutes_per_game

    def noisy(base: np.ndarray, scale: float) -> np.ndarray:
        return np.clip(base * np.exp(rng.normal(0, scale, n)), 0, None)

    points = noisy(minutes * (0.25 + 0.45 * skill + 0.25 * scorer), 0.25)
    rebounds = noisy(minutes * (0.08 + 0.12 * skill + 0.20 * big_man), 0.30)
    assists = noisy(minutes * (0.04 + 0.08 * skill + 0.18 * playmaker), 0.35)
    steals = noisy(minutes * (0.015 + 0.02 * skill + 0.03 * defender), 0.40)
    blocks = noisy(minutes * (0.005 + 0.015 * skill + 0.05 * big_man * defender), 0.50)
    turnovers = noisy(minutes * (0.02 + 0.05 * (scorer + playmaker) / 2), 0.30)
    ball_security = -turnovers  # reorient so larger is better
    fg_pct = np.clip(0.38 + 0.12 * skill + 0.05 * big_man + rng.normal(0, 0.04, n), 0.2, 0.7)
    ft_pct = np.clip(0.60 + 0.25 * skill * (1 - 0.5 * big_man) + rng.normal(0, 0.06, n), 0.3, 0.95)
    three_pm = noisy(minutes * 0.03 * scorer * (1 - 0.8 * big_man), 0.60)

    return np.column_stack(
        [
            games,
            minutes,
            points,
            rebounds,
            assists,
            steals,
            blocks,
            ball_security,
            fg_pct,
            ft_pct,
            three_pm,
        ]
    )


def generate_nba(
    n_objects: int = 1000,
    missing_rate: float = 0.1,
    levels: int = 8,
    seed: int = 7,
    name: Optional[str] = None,
) -> IncompleteDataset:
    """Generate the NBA-like incomplete dataset.

    Parameters mirror the paper's setup: ``missing_rate`` is the fraction
    of hidden cells (default 0.1), attribute values are ordinal levels from
    equal-frequency discretization into ``levels`` bins.
    """
    if n_objects <= 0:
        raise ValueError("n_objects must be positive")
    rng = np.random.default_rng(seed)
    continuous = _continuous_stats(n_objects, rng)
    complete, domain_sizes = discretize(continuous, levels, strategy="frequency")
    mask = balanced_mcar_mask(n_objects, complete.shape[1], missing_rate, rng)
    return from_complete(
        complete,
        mask,
        domain_sizes,
        name=name or ("nba-%d" % n_objects),
        attribute_names=list(ATTRIBUTE_NAMES),
    )
