"""Adult-shaped synthetic dataset.

The paper's *Synthetic* dataset is 100,000 records over nine attributes
that "share the same Bayesian network with the typical Adult dataset from
UCI".  The UCI download is unavailable offline, so we hand-author a
nine-node network with the dependency structure commonly learned from
Adult (demographics drive work and income attributes) and forward-sample
records from it.  The resulting data has exactly the property the paper
needs: known, non-trivial attribute correlation for the Bayesian-network
preprocessing step to recover.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..bayesnet.cpt import random_cpt
from ..bayesnet.dag import DAG
from ..bayesnet.network import BayesianNetwork
from .dataset import IncompleteDataset, from_complete
from .missing import balanced_mcar_mask

#: Nine Adult-flavoured attributes; every one is treated as ordinal with
#: "larger is better" semantics for the skyline query (e.g. more education,
#: higher income).  Attribute index order matters: it matches EDGES below.
ATTRIBUTE_NAMES = [
    "age",          # 0
    "education",    # 1
    "workclass",    # 2
    "occupation",   # 3
    "hours",        # 4
    "capital_gain", # 5
    "relationship", # 6
    "income",       # 7
    "health",       # 8
]

#: Discrete levels per attribute (kept small so exact inference is cheap).
DOMAIN_SIZES = [6, 6, 4, 6, 5, 4, 4, 5, 4]

#: Adult-like dependency structure (parent -> child).
EDGES = [
    (0, 1),  # age -> education
    (0, 2),  # age -> workclass
    (1, 3),  # education -> occupation
    (2, 3),  # workclass -> occupation
    (3, 4),  # occupation -> hours
    (1, 7),  # education -> income
    (3, 7),  # occupation -> income
    (4, 7),  # hours -> income
    (7, 5),  # income -> capital_gain
    (0, 6),  # age -> relationship
    (0, 8),  # age -> health
    (4, 8),  # hours -> health
]


def adult_like_network(seed: int = 11, concentration: float = 0.6) -> BayesianNetwork:
    """The hand-authored generating network.

    ``concentration`` controls correlation strength: smaller values give
    more deterministic CPT rows, hence stronger attribute correlation.
    """
    dag = DAG(len(ATTRIBUTE_NAMES))
    for parent, child in EDGES:
        dag.add_edge(parent, child)
    rng = np.random.default_rng(seed)
    cpts = []
    for node in range(dag.n_nodes):
        parents = sorted(dag.parents(node))
        cpts.append(
            random_cpt(
                node,
                DOMAIN_SIZES[node],
                parents,
                [DOMAIN_SIZES[p] for p in parents],
                rng,
                concentration=concentration,
            )
        )
    return BayesianNetwork(dag, DOMAIN_SIZES, cpts, node_names=list(ATTRIBUTE_NAMES))


def generate_synthetic(
    n_objects: int = 2000,
    missing_rate: float = 0.1,
    seed: int = 13,
    network_seed: int = 11,
    name: Optional[str] = None,
) -> IncompleteDataset:
    """Forward-sample the Adult-like network and hide cells MCAR."""
    if n_objects <= 0:
        raise ValueError("n_objects must be positive")
    network = adult_like_network(seed=network_seed)
    rng = np.random.default_rng(seed)
    complete = network.sample(n_objects, rng)
    mask = balanced_mcar_mask(n_objects, complete.shape[1], missing_rate, rng)
    return from_complete(
        complete,
        mask,
        DOMAIN_SIZES,
        name=name or ("synthetic-%d" % n_objects),
        attribute_names=list(ATTRIBUTE_NAMES),
    )
