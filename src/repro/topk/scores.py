"""Per-object dominance-score models under incompleteness.

``score(o)`` decomposes over potential victims: for every ``p`` that ``o``
possibly dominates, the single-clause condition built by the c-table
machinery -- "p strictly beats o somewhere" -- is the *escape event*; ``o``
dominates ``p`` exactly when the clause fails.  A score model keeps

* ``base_score``   -- victims already certain,
* ``open_clauses`` -- escape clauses still undecided.

Expected score and variance follow from the clause probabilities (clauses
treated as independent across victims, exact per clause via the engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..ctable.condition import Condition, ExpressionResolver
from ..ctable.construction import _clause_for_pair
from ..ctable.dominators import dominator_sets
from ..datasets.dataset import IncompleteDataset
from ..probability.engine import ProbabilityEngine


@dataclass
class ScoredObject:
    """Dominance-score state of one object."""

    obj: int
    base_score: int = 0
    open_clauses: List[Condition] = field(default_factory=list)

    def expected_score(self, engine: ProbabilityEngine) -> float:
        """``E[score]`` = certain victims + sum of domination probabilities."""
        total = float(self.base_score)
        for clause in self.open_clauses:
            total += 1.0 - engine.probability(clause)
        return total

    def score_bounds(self) -> "tuple[int, int]":
        """Certain lower / upper bounds of the final score."""
        return self.base_score, self.base_score + len(self.open_clauses)

    def score_variance(self, engine: ProbabilityEngine) -> float:
        """Variance of the score under per-victim independence."""
        variance = 0.0
        for clause in self.open_clauses:
            q = 1.0 - engine.probability(clause)
            variance += q * (1.0 - q)
        return variance

    def decided(self) -> bool:
        return not self.open_clauses

    def simplify_with(self, resolver: ExpressionResolver) -> bool:
        """Fold new knowledge into the escape clauses; True if changed."""
        if not self.open_clauses:
            return False
        changed = False
        remaining: List[Condition] = []
        for clause in self.open_clauses:
            simplified = clause.simplify_with(resolver)
            if simplified is not clause:
                changed = True
            if simplified.is_true:
                continue  # victim escapes: no score contribution
            if simplified.is_false:
                self.base_score += 1  # confirmed victim
                continue
            remaining.append(simplified)
        self.open_clauses = remaining
        return changed

    def variables(self):
        out = set()
        for clause in self.open_clauses:
            out |= clause.variables()
        return out


def build_score_models(dataset: IncompleteDataset) -> Dict[int, ScoredObject]:
    """One score model per object.

    Victim lists invert the dominator sets of Eq. 1: ``p`` is a potential
    victim of ``o`` exactly when ``o`` is in ``D(p)``.
    """
    sets = dominator_sets(dataset)
    models: Dict[int, ScoredObject] = {
        o: ScoredObject(obj=o) for o in range(dataset.n_objects)
    }
    for p, dominators in enumerate(sets):
        for o in dominators.tolist():
            # Does o dominate p?  The escape clause is "p beats o somewhere".
            clause = _clause_for_pair(dataset, p, o)
            model = models[o]
            if clause is None:
                continue  # p certainly escapes
            if not clause:
                model.base_score += 1  # o certainly dominates p
                continue
            model.open_clauses.append(Condition.of([clause]))
    return models


def expected_scores(
    models: Dict[int, ScoredObject], engine: ProbabilityEngine
) -> Dict[int, float]:
    """Expected dominance score of every object."""
    return {obj: model.expected_score(engine) for obj, model in models.items()}
