"""Top-k dominating queries over incomplete data with crowdsourcing.

A *top-k dominating* query returns the ``k`` objects with the highest
dominance scores, where ``score(o) = |{p : o dominates p}|``.  It is the
companion query type the paper's authors studied on incomplete data
(reference [6], Miao et al., TKDE 2016) and combines skyline-style
dominance with top-k ranking -- no user-defined scoring function needed.

With missing values the scores are uncertain.  This extension reuses the
c-table clause machinery: for each candidate pair, a single-clause
condition encodes "p escapes domination by o"; the *expected score* sums
the complement probabilities, and crowd tasks shrink the uncertainty of
the ranking around the top-k boundary.
"""

from .algorithms import dominance_scores, top_k_dominating
from .query import CrowdTopKDominating, TopKConfig
from .scores import ScoredObject, build_score_models, expected_scores

__all__ = [
    "dominance_scores",
    "top_k_dominating",
    "CrowdTopKDominating",
    "TopKConfig",
    "ScoredObject",
    "build_score_models",
    "expected_scores",
]
