"""Ground-truth dominance scores and top-k dominating on complete data."""

from __future__ import annotations

from typing import List

import numpy as np


def dominance_scores(values: np.ndarray) -> np.ndarray:
    """``score[o] = #objects dominated by o`` (Definition 1, larger better)."""
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError("values must be a 2-D matrix")
    n = values.shape[0]
    scores = np.zeros(n, dtype=np.int64)
    for o in range(n):
        geq = (values[o] >= values).all(axis=1)
        gt = (values[o] > values).any(axis=1)
        dominated = geq & gt
        dominated[o] = False
        scores[o] = int(dominated.sum())
    return scores


def top_k_dominating(values: np.ndarray, k: int) -> List[int]:
    """The ``k`` objects with the highest dominance scores.

    Ties at the boundary break toward the smaller object index, which
    keeps the ground truth deterministic for evaluation.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    scores = dominance_scores(values)
    order = sorted(range(len(scores)), key=lambda o: (-scores[o], o))
    return sorted(order[: min(k, len(order))])
