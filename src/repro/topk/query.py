"""Crowd-assisted top-k dominating query.

Iterative loop in the BayesCrowd style: maintain expected dominance
scores, focus crowd tasks on objects whose score interval straddles the
current top-k boundary (they are the ones that can still change the
answer), pick the most frequent unresolved expression per chosen object,
post conflict-free batches, propagate answers, repeat under budget and
latency constraints.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.config import BayesCrowdConfig
from ..core.framework import learn_distributions
from ..core.result import QueryResult, RoundRecord
from ..crowd.platform import SimulatedCrowdPlatform
from ..crowd.task import ComparisonTask
from ..ctable.constraints import VariableConstraints
from ..ctable.expression import Expression
from ..datasets.dataset import IncompleteDataset, Variable
from ..probability.distributions import DistributionStore
from ..probability.engine import ProbabilityEngine
from .scores import ScoredObject, build_score_models


@dataclass
class TopKConfig:
    """Knobs of one crowd-assisted top-k dominating query."""

    k: int = 10
    budget: int = 50
    latency: int = 5
    distribution_source: str = "bayesnet"
    worker_accuracy: float = 1.0
    inference_mode: str = "full"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.budget < 0:
            raise ValueError("budget must be non-negative")
        if self.latency < 1:
            raise ValueError("latency must be at least one round")

    def tasks_per_round(self) -> int:
        if self.budget == 0:
            return 0
        return -(-self.budget // self.latency)


class CrowdTopKDominating:
    """One configured top-k dominating query over one incomplete dataset."""

    def __init__(
        self,
        dataset: IncompleteDataset,
        config: Optional[TopKConfig] = None,
        platform: Optional[SimulatedCrowdPlatform] = None,
        distributions: Optional[Dict[Variable, np.ndarray]] = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or TopKConfig()
        if self.config.k > dataset.n_objects:
            raise ValueError("k exceeds the dataset cardinality")
        if platform is None and dataset.has_ground_truth():
            platform = SimulatedCrowdPlatform(
                dataset,
                worker_accuracy=self.config.worker_accuracy,
                rng=np.random.default_rng(self.config.seed + 1),
            )
        self.platform = platform
        if distributions is None:
            proxy = BayesCrowdConfig(
                distribution_source=self.config.distribution_source,
                seed=self.config.seed,
            )
            distributions = learn_distributions(dataset, proxy)
        self.distributions = distributions
        self.models: Optional[Dict[int, ScoredObject]] = None

    # ------------------------------------------------------------------
    def _ranking(self, models, engine) -> List[int]:
        """Objects ordered by expected score (desc), index tie-break."""
        return sorted(
            models,
            key=lambda o: (-models[o].expected_score(engine), o),
        )

    def _answer_set(self, models, engine) -> List[int]:
        return sorted(self._ranking(models, engine)[: self.config.k])

    def _boundary_candidates(self, models, engine) -> List[ScoredObject]:
        """Undecided objects whose score interval straddles the boundary.

        The k-th expected score is the boundary; an object whose certain
        interval lies fully above or below it cannot change the answer...
        unless the boundary itself moves, so straddlers are ordered by
        score variance (most uncertain first).
        """
        ranking = self._ranking(models, engine)
        boundary = models[ranking[self.config.k - 1]].expected_score(engine)
        straddlers = []
        for model in models.values():
            if model.decided():
                continue
            lo, hi = model.score_bounds()
            if lo <= boundary <= hi:
                straddlers.append(model)
        if not straddlers:
            straddlers = [m for m in models.values() if not m.decided()]
        straddlers.sort(key=lambda m: (-m.score_variance(engine), m.obj))
        return straddlers

    # ------------------------------------------------------------------
    def run(self) -> QueryResult:
        config = self.config
        start = time.perf_counter()
        models = build_score_models(self.dataset)
        modeling_seconds = time.perf_counter() - start
        constraints = VariableConstraints(
            self.dataset.domain_sizes, mode=config.inference_mode
        )
        store = DistributionStore(self.distributions, constraints)
        engine = ProbabilityEngine(store)
        self.models = models

        initial_answers = self._answer_set(models, engine)
        crowd_wait = 0.0
        budget = config.budget
        mu = config.tasks_per_round()
        history: List[RoundRecord] = []

        while budget > 0 and len(history) < config.latency:
            round_start = time.perf_counter()
            candidates = self._boundary_candidates(models, engine)
            if not candidates:
                break
            k_tasks = min(budget, mu)
            frequencies = self._expression_frequencies(candidates[: 2 * k_tasks])
            banned: set = set()
            tasks: List[ComparisonTask] = []
            objects: List[int] = []
            for model in candidates:
                if len(tasks) >= k_tasks:
                    break
                expression = self._pick_expression(model, frequencies, banned)
                if expression is None:
                    continue
                banned.update(expression.variables())
                tasks.append(ComparisonTask(expression, for_object=model.obj))
                objects.append(model.obj)
            if not tasks:
                break
            if self.platform is None:
                raise RuntimeError("crowdsourcing needs a platform or ground truth")

            post_start = time.perf_counter()
            answers = self.platform.post_batch(tasks)
            crowd_wait += time.perf_counter() - post_start

            open_before = sum(1 for m in models.values() if not m.decided())
            touched: set = set()
            for task, relation in answers.items():
                touched |= constraints.apply_answer(task.expression, relation)
            for model in models.values():
                if not model.decided() and (model.variables() & touched):
                    model.simplify_with(constraints.resolve)
            open_after = sum(1 for m in models.values() if not m.decided())
            budget -= len(tasks)
            history.append(
                RoundRecord(
                    round_index=len(history) + 1,
                    tasks_posted=len(tasks),
                    objects=objects,
                    newly_decided=open_before - open_after,
                    open_conditions=open_after,
                    seconds=time.perf_counter() - round_start,
                )
            )

        answers = self._answer_set(models, engine)
        certain = sorted(
            m.obj
            for m in models.values()
            if m.decided() and m.obj in set(answers)
        )
        return QueryResult(
            answers=answers,
            certain_answers=certain,
            tasks_posted=sum(r.tasks_posted for r in history),
            rounds=len(history),
            seconds=time.perf_counter() - start - crowd_wait,
            modeling_seconds=modeling_seconds,
            history=history,
            initial_answers=initial_answers,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _expression_frequencies(models: List[ScoredObject]) -> Counter:
        counts: Counter = Counter()
        for model in models:
            for clause in model.open_clauses:
                for expression in clause.expressions():
                    counts[expression] += 1
        return counts

    @staticmethod
    def _pick_expression(
        model: ScoredObject, frequencies: Counter, banned: set
    ) -> Optional[Expression]:
        best: Optional[Expression] = None
        best_rank = None
        for clause in model.open_clauses:
            for expression in clause.distinct_expressions():
                if banned.intersection(expression.variables()):
                    continue
                rank = (-frequencies[expression], expression.sort_key())
                if best_rank is None or rank < best_rank:
                    best_rank = rank
                    best = expression
        return best
