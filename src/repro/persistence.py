"""Saving and loading datasets, query results and run checkpoints.

A library users adopt needs durable artifacts: datasets round-trip
through ``.npz`` (values + mask + ground truth + metadata), query
results through JSON, and in-flight query runs through round-level
*checkpoints* (the c-table answer state, remaining budget and round
history), so experiment pipelines can snapshot inputs and outcomes --
and resume interrupted crowd campaigns -- without pickling live objects.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .core.result import QueryResult, RoundRecord
from .ctable.expression import Const, Expression, Relation, Var
from .datasets.dataset import IncompleteDataset
from .errors import CheckpointError

PathLike = Union[str, Path]

#: file-format version written into every artifact
FORMAT_VERSION = 1

#: file-format version of run checkpoints.  v2 added the answer-integrity
#: ledger and per-worker reliability snapshots; v3 layers the write-ahead
#: answer journal underneath (``journal_seq`` records how much of the
#: journal the checkpoint covers), snapshots the per-session task-id
#: allocator and keeps task identity on pending entries.  v1/v2
#: checkpoints still load (missing state starts empty / at its prior,
#: and a journal cannot be layered on top of them).
CHECKPOINT_VERSION = 3

#: checkpoint versions :func:`load_checkpoint` accepts
_SUPPORTED_CHECKPOINT_VERSIONS = (1, 2, 3)


def _fsync_directory(path: Path) -> None:
    """Persist a directory entry (rename durability on POSIX)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. directories on some FS
        pass
    finally:
        os.close(fd)


#: test/fault-injection hook observed by :func:`atomic_write`; installed
#: via :func:`set_write_fault_hook`.  Called as ``hook(stage, path,
#: handle)`` at stage ``"payload"`` (temp file open, nothing written yet)
#: and ``"commit"`` (payload written + fsynced, rename not yet issued).
#: A hook that raises simulates disk-full / torn-write / crash-before-
#: rename faults; the helper guarantees the destination file is never
#: observable in a partial state regardless of where the hook fires.
_WRITE_FAULT_HOOK = None


def set_write_fault_hook(hook):
    """Install (or clear, with ``None``) the atomic-write fault hook.

    Returns the previously installed hook so tests can restore it.
    """
    global _WRITE_FAULT_HOOK
    previous = _WRITE_FAULT_HOOK
    _WRITE_FAULT_HOOK = hook
    return previous


def atomic_write(path: PathLike, write_payload, mode: str = "w") -> None:
    """Write a file atomically: temp file + fsync + ``os.replace``.

    ``write_payload`` receives the open temp-file handle.  A crash at any
    instant leaves either the old file or the new one, never a torn mix;
    the fsync-before-rename (plus a directory fsync after) makes the
    rename itself durable.  Every durable artifact in the library --
    datasets, results, checkpoints, the service store's metadata and
    index -- goes through this one helper, so the torn-write/disk-full
    fault suite covers them all at once.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode) as handle:
            if _WRITE_FAULT_HOOK is not None:
                _WRITE_FAULT_HOOK("payload", path, handle)
            write_payload(handle)
            handle.flush()
            os.fsync(handle.fileno())
            if _WRITE_FAULT_HOOK is not None:
                _WRITE_FAULT_HOOK("commit", path, handle)
        os.replace(tmp, path)
        _fsync_directory(path.parent)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


#: Backward-compatible alias (pre-service internal name).
_atomic_write = atomic_write


# ----------------------------------------------------------------------
# datasets
# ----------------------------------------------------------------------
def save_dataset(dataset: IncompleteDataset, path: PathLike) -> None:
    """Write a dataset (with its hidden ground truth, if any) to ``.npz``."""
    path = Path(path)
    payload = {
        "format_version": np.array([FORMAT_VERSION]),
        "values": dataset.values,
        "domain_sizes": np.asarray(dataset.domain_sizes, dtype=np.int64),
        "attribute_names": np.array(dataset.attribute_names, dtype=object),
        "object_names": np.array(dataset.object_names, dtype=object),
        "name": np.array([dataset.name], dtype=object),
    }
    if dataset.complete is not None:
        payload["complete"] = dataset.complete
    # numpy appends ".npz" to bare string paths; mirror that before the
    # atomic rename so the final name matches the historical behaviour.
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    _atomic_write(
        path,
        lambda handle: np.savez_compressed(handle, **payload, allow_pickle=True),
        mode="wb",
    )


def load_dataset(path: PathLike) -> IncompleteDataset:
    """Read a dataset written by :func:`save_dataset`."""
    path = Path(path)
    with np.load(path, allow_pickle=True) as archive:
        version = int(archive["format_version"][0])
        if version != FORMAT_VERSION:
            raise ValueError(
                "unsupported dataset format version %d (expected %d)"
                % (version, FORMAT_VERSION)
            )
        return IncompleteDataset(
            values=archive["values"],
            domain_sizes=archive["domain_sizes"].tolist(),
            complete=archive["complete"] if "complete" in archive else None,
            attribute_names=[str(s) for s in archive["attribute_names"]],
            object_names=[str(s) for s in archive["object_names"]],
            name=str(archive["name"][0]),
        )


# ----------------------------------------------------------------------
# query results
# ----------------------------------------------------------------------
def _round_to_dict(record: RoundRecord) -> dict:
    return {
        "round_index": record.round_index,
        "tasks_posted": record.tasks_posted,
        "objects": list(record.objects),
        "newly_decided": record.newly_decided,
        "open_conditions": record.open_conditions,
        "seconds": record.seconds,
        "tasks_answered": record.tasks_answered,
        "retries": record.retries,
        "faults": dict(record.faults),
    }


def _round_from_dict(entry: dict) -> RoundRecord:
    return RoundRecord(
        round_index=entry["round_index"],
        tasks_posted=entry["tasks_posted"],
        objects=list(entry["objects"]),
        newly_decided=entry["newly_decided"],
        open_conditions=entry["open_conditions"],
        seconds=entry["seconds"],
        tasks_answered=entry.get("tasks_answered", entry["tasks_posted"]),
        retries=entry.get("retries", 0),
        faults=dict(entry.get("faults", {})),
    )


def result_to_dict(result: QueryResult) -> dict:
    """JSON-serializable view of a query result."""
    return {
        "format_version": FORMAT_VERSION,
        "answers": list(result.answers),
        "certain_answers": list(result.certain_answers),
        "tasks_posted": result.tasks_posted,
        "rounds": result.rounds,
        "seconds": result.seconds,
        "tasks_answered": result.tasks_answered,
        "modeling_seconds": result.modeling_seconds,
        "degraded": result.degraded,
        "fault_counts": dict(result.fault_counts),
        "resumed": result.resumed,
        "initial_answers": (
            list(result.initial_answers) if result.initial_answers is not None else None
        ),
        "history": [_round_to_dict(record) for record in result.history],
    }


def save_result(result: QueryResult, path: PathLike) -> None:
    """Write a query result to JSON (atomically: temp file + rename)."""
    text = json.dumps(result_to_dict(result), indent=2)
    _atomic_write(Path(path), lambda handle: handle.write(text))


def load_result(path: PathLike) -> QueryResult:
    """Read a query result written by :func:`save_result`."""
    data = json.loads(Path(path).read_text())
    version = int(data.get("format_version", -1))
    if version != FORMAT_VERSION:
        raise ValueError(
            "unsupported result format version %d (expected %d)"
            % (version, FORMAT_VERSION)
        )
    history = [_round_from_dict(entry) for entry in data.get("history", [])]
    return QueryResult(
        answers=list(data["answers"]),
        certain_answers=list(data["certain_answers"]),
        tasks_posted=int(data["tasks_posted"]),
        rounds=int(data["rounds"]),
        seconds=float(data["seconds"]),
        tasks_answered=(
            int(data["tasks_answered"])
            if data.get("tasks_answered") is not None
            else None
        ),
        modeling_seconds=float(data.get("modeling_seconds", 0.0)),
        degraded=bool(data.get("degraded", False)),
        fault_counts={k: int(v) for k, v in data.get("fault_counts", {}).items()},
        resumed=bool(data.get("resumed", False)),
        history=history,
        initial_answers=(
            list(data["initial_answers"])
            if data.get("initial_answers") is not None
            else None
        ),
    )


# ----------------------------------------------------------------------
# run checkpoints
# ----------------------------------------------------------------------
def _operand_to_json(operand) -> dict:
    if isinstance(operand, Const):
        return {"const": operand.value}
    return {"var": [operand.obj, operand.attr]}


def _operand_from_json(data: dict):
    if "const" in data:
        return Const(int(data["const"]))
    obj, attr = data["var"]
    return Var(int(obj), int(attr))


def expression_to_json(expression: Expression) -> dict:
    """JSON view of one c-table expression (``left > right``)."""
    return {
        "left": _operand_to_json(expression.left),
        "right": _operand_to_json(expression.right),
    }


def expression_from_json(data: dict) -> Expression:
    """Inverse of :func:`expression_to_json`."""
    return Expression(_operand_from_json(data["left"]), _operand_from_json(data["right"]))


@dataclass
class QueryCheckpoint:
    """Everything needed to resume a crowdsourcing run after a round.

    The c-table itself is *not* serialized: it is rebuilt
    deterministically from the dataset and config, and ``answer_log`` is
    replayed through :meth:`CTable.apply_answer`, which reproduces the
    exact constraint state.  RNG and platform snapshots make the resumed
    run bit-identical to an uninterrupted one with the same seed.
    """

    #: identity of the owning query (dataset + key config values)
    fingerprint: Dict[str, object]
    #: budget remaining after the checkpointed round
    budget_left: int
    #: every crowd answer folded in so far, in application order
    answer_log: List[Tuple[Expression, Relation]]
    #: requeued-but-unanswered tasks: v3 stores
    #: ``(expression, for_object, task_id, reask_of)`` so a resumed run
    #: reposts bit-identical tasks; v1/v2 files load as 2-tuples
    pending: List[Tuple] = field(default_factory=list)
    history: List[RoundRecord] = field(default_factory=list)
    fault_totals: Dict[str, int] = field(default_factory=dict)
    degraded: bool = False
    #: ``numpy.random.Generator.bit_generator.state`` of the framework RNG
    rng_state: Optional[dict] = None
    #: opaque ``platform.state_dict()`` snapshot, when supported
    platform_state: Optional[dict] = None
    #: ``AnswerLedger.state_dict()`` snapshot (v2+; None on v1 files)
    ledger_state: Optional[dict] = None
    #: ``WorkerReliability.state_dict()`` snapshot (v2+; None on v1 files)
    reliability_state: Optional[dict] = None
    #: last journal sequence number this checkpoint covers (v3+); None
    #: means "no journal coverage information" -- recovery then ignores
    #: any journal rather than risk double-applying its records
    journal_seq: Optional[int] = None
    #: ``TaskIdAllocator.state_dict()`` snapshot (v3+; None on older files)
    task_ids_state: Optional[dict] = None


def save_checkpoint(checkpoint_or_path, path_or_checkpoint) -> None:
    """Write a :class:`QueryCheckpoint` to JSON (atomically).

    Accepts ``(checkpoint, path)`` or ``(path, checkpoint)``; the write
    goes through a temp file + rename so a crash mid-write never leaves
    a truncated checkpoint behind.
    """
    if isinstance(checkpoint_or_path, QueryCheckpoint):
        checkpoint, path = checkpoint_or_path, path_or_checkpoint
    else:
        path, checkpoint = checkpoint_or_path, path_or_checkpoint
    path = Path(path)
    payload = {
        "format_version": CHECKPOINT_VERSION,
        "kind": "bayescrowd-checkpoint",
        "fingerprint": checkpoint.fingerprint,
        "budget_left": checkpoint.budget_left,
        "answer_log": [
            [expression_to_json(expression), relation.value]
            for expression, relation in checkpoint.answer_log
        ],
        "pending": [
            # arity-preserving: v1/v2-style (expression, obj) pairs stay
            # pairs; v3 4-tuples keep task_id and reask_of
            [expression_to_json(entry[0])] + list(entry[1:])
            for entry in checkpoint.pending
        ],
        "history": [_round_to_dict(record) for record in checkpoint.history],
        "fault_totals": dict(checkpoint.fault_totals),
        "degraded": checkpoint.degraded,
        "rng_state": checkpoint.rng_state,
        "platform_state": checkpoint.platform_state,
        "ledger_state": checkpoint.ledger_state,
        "reliability_state": checkpoint.reliability_state,
        "journal_seq": checkpoint.journal_seq,
        "task_ids_state": checkpoint.task_ids_state,
    }
    _atomic_write(path, lambda handle: json.dump(payload, handle, indent=2))


def load_checkpoint(path: PathLike) -> QueryCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise CheckpointError("unreadable checkpoint at %s: %s" % (path, err)) from err
    if data.get("kind") != "bayescrowd-checkpoint":
        raise CheckpointError("%s is not a BayesCrowd checkpoint" % path)
    version = int(data.get("format_version", -1))
    if version not in _SUPPORTED_CHECKPOINT_VERSIONS:
        raise CheckpointError(
            "unsupported checkpoint version %d (expected one of %r)"
            % (version, _SUPPORTED_CHECKPOINT_VERSIONS)
        )
    return QueryCheckpoint(
        fingerprint=dict(data["fingerprint"]),
        budget_left=int(data["budget_left"]),
        answer_log=[
            (expression_from_json(entry), Relation(value))
            for entry, value in data.get("answer_log", [])
        ],
        pending=[
            # v1/v2: [expression, obj]; v3: [expression, obj, task_id,
            # reask_of].  Both load; recovery normalizes the arity.
            (expression_from_json(entry[0]),) + tuple(entry[1:])
            for entry in data.get("pending", [])
        ],
        history=[_round_from_dict(entry) for entry in data.get("history", [])],
        fault_totals={k: int(v) for k, v in data.get("fault_totals", {}).items()},
        degraded=bool(data.get("degraded", False)),
        rng_state=data.get("rng_state"),
        platform_state=data.get("platform_state"),
        # v1 files carry neither key: both default to None and the run
        # starts with an empty ledger / prior reliability.
        ledger_state=data.get("ledger_state"),
        reliability_state=data.get("reliability_state"),
        # v3 keys; None on older files (recovery treats a None
        # journal_seq as "journal coverage unknown").
        journal_seq=data.get("journal_seq"),
        task_ids_state=data.get("task_ids_state"),
    )
