"""Saving and loading datasets and query results.

A library users adopt needs durable artifacts: datasets round-trip
through ``.npz`` (values + mask + ground truth + metadata) and query
results through JSON, so experiment pipelines can snapshot inputs and
outcomes without pickling live objects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .core.result import QueryResult, RoundRecord
from .datasets.dataset import IncompleteDataset

PathLike = Union[str, Path]

#: file-format version written into every artifact
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# datasets
# ----------------------------------------------------------------------
def save_dataset(dataset: IncompleteDataset, path: PathLike) -> None:
    """Write a dataset (with its hidden ground truth, if any) to ``.npz``."""
    path = Path(path)
    payload = {
        "format_version": np.array([FORMAT_VERSION]),
        "values": dataset.values,
        "domain_sizes": np.asarray(dataset.domain_sizes, dtype=np.int64),
        "attribute_names": np.array(dataset.attribute_names, dtype=object),
        "object_names": np.array(dataset.object_names, dtype=object),
        "name": np.array([dataset.name], dtype=object),
    }
    if dataset.complete is not None:
        payload["complete"] = dataset.complete
    np.savez_compressed(path, **payload, allow_pickle=True)


def load_dataset(path: PathLike) -> IncompleteDataset:
    """Read a dataset written by :func:`save_dataset`."""
    path = Path(path)
    with np.load(path, allow_pickle=True) as archive:
        version = int(archive["format_version"][0])
        if version != FORMAT_VERSION:
            raise ValueError(
                "unsupported dataset format version %d (expected %d)"
                % (version, FORMAT_VERSION)
            )
        return IncompleteDataset(
            values=archive["values"],
            domain_sizes=archive["domain_sizes"].tolist(),
            complete=archive["complete"] if "complete" in archive else None,
            attribute_names=[str(s) for s in archive["attribute_names"]],
            object_names=[str(s) for s in archive["object_names"]],
            name=str(archive["name"][0]),
        )


# ----------------------------------------------------------------------
# query results
# ----------------------------------------------------------------------
def result_to_dict(result: QueryResult) -> dict:
    """JSON-serializable view of a query result."""
    return {
        "format_version": FORMAT_VERSION,
        "answers": list(result.answers),
        "certain_answers": list(result.certain_answers),
        "tasks_posted": result.tasks_posted,
        "rounds": result.rounds,
        "seconds": result.seconds,
        "modeling_seconds": result.modeling_seconds,
        "initial_answers": (
            list(result.initial_answers) if result.initial_answers is not None else None
        ),
        "history": [
            {
                "round_index": record.round_index,
                "tasks_posted": record.tasks_posted,
                "objects": list(record.objects),
                "newly_decided": record.newly_decided,
                "open_conditions": record.open_conditions,
                "seconds": record.seconds,
            }
            for record in result.history
        ],
    }


def save_result(result: QueryResult, path: PathLike) -> None:
    """Write a query result to JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result(path: PathLike) -> QueryResult:
    """Read a query result written by :func:`save_result`."""
    data = json.loads(Path(path).read_text())
    version = int(data.get("format_version", -1))
    if version != FORMAT_VERSION:
        raise ValueError(
            "unsupported result format version %d (expected %d)"
            % (version, FORMAT_VERSION)
        )
    history = [
        RoundRecord(
            round_index=entry["round_index"],
            tasks_posted=entry["tasks_posted"],
            objects=list(entry["objects"]),
            newly_decided=entry["newly_decided"],
            open_conditions=entry["open_conditions"],
            seconds=entry["seconds"],
        )
        for entry in data.get("history", [])
    ]
    return QueryResult(
        answers=list(data["answers"]),
        certain_answers=list(data["certain_answers"]),
        tasks_posted=int(data["tasks_posted"]),
        rounds=int(data["rounds"]),
        seconds=float(data["seconds"]),
        modeling_seconds=float(data.get("modeling_seconds", 0.0)),
        history=history,
        initial_answers=(
            list(data["initial_answers"])
            if data.get("initial_answers") is not None
            else None
        ),
    )
