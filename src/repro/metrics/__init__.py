"""Evaluation metrics: F1 accuracy against ground truth, timing helpers."""

from .accuracy import AccuracyReport, accuracy_report, f1_score
from .timing import Stopwatch, time_call

__all__ = ["AccuracyReport", "accuracy_report", "f1_score", "Stopwatch", "time_call"]
