"""Lightweight timing utilities for the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class Stopwatch:
    """Accumulates wall-clock time across named sections.

    Usage::

        watch = Stopwatch()
        with watch.section("ctable"):
            build_ctable(...)
        watch.total("ctable")
    """

    _totals: Dict[str, float] = field(default_factory=dict)
    _counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, label: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[label] = self._totals.get(label, 0.0) + elapsed
            self._counts[label] = self._counts.get(label, 0) + 1

    def total(self, label: str) -> float:
        return self._totals.get(label, 0.0)

    def count(self, label: str) -> int:
        return self._counts.get(label, 0)

    def labels(self) -> List[str]:
        return sorted(self._totals)

    def summary(self) -> Dict[str, float]:
        return dict(self._totals)


def time_call(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
