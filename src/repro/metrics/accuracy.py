"""Query accuracy metrics.

The paper evaluates with the F1 score of the returned answer set against
the skyline of the corresponding *complete* data (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set


@dataclass(frozen=True)
class AccuracyReport:
    """Precision / recall / F1 of a predicted answer set."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "P=%.3f R=%.3f F1=%.3f" % (self.precision, self.recall, self.f1)


def accuracy_report(predicted: Iterable[int], truth: Iterable[int]) -> AccuracyReport:
    """Compare a predicted object-id set against the ground-truth set.

    Edge cases follow the usual conventions: an empty prediction with an
    empty truth scores 1.0 everywhere; otherwise missing sides score 0.
    """
    predicted_set: Set[int] = set(predicted)
    truth_set: Set[int] = set(truth)
    tp = len(predicted_set & truth_set)
    fp = len(predicted_set - truth_set)
    fn = len(truth_set - predicted_set)
    if not predicted_set and not truth_set:
        return AccuracyReport(1.0, 1.0, 1.0, 0, 0, 0)
    precision = tp / len(predicted_set) if predicted_set else 0.0
    recall = tp / len(truth_set) if truth_set else 0.0
    if precision + recall == 0.0:
        f1 = 0.0
    else:
        f1 = 2.0 * precision * recall / (precision + recall)
    return AccuracyReport(precision, recall, f1, tp, fp, fn)


def f1_score(predicted: Iterable[int], truth: Iterable[int]) -> float:
    """Convenience wrapper returning only the F1 component."""
    return accuracy_report(predicted, truth).f1
