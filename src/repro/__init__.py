"""BayesCrowd: answering skyline queries over incomplete data with crowdsourcing.

Reproduction of Miao et al., ICDE 2020.  The public API re-exports the
pieces a downstream user needs: dataset construction/generation, the
BayesCrowd framework with its task-selection strategies, the c-table
model, probability computation, the simulated crowd, and the CrowdSky
comparison baseline.
"""

from .baselines import CrowdSky, machine_only_skyline
from .bayesnet import BayesianNetwork, MissingValuePosteriors
from .core import (
    BayesCrowd,
    BayesCrowdConfig,
    QueryResult,
    entropy,
    marginal_utility,
    run_bayescrowd,
)
from .crowd import (
    ComparisonTask,
    FaultModel,
    SimulatedCrowdPlatform,
    UnreliableCrowdPlatform,
    WorkerPool,
)
from .ctable import CTable, Condition, Expression, Relation, build_ctable
from .errors import (
    CheckpointError,
    ConflictingBatchError,
    DuplicateTaskError,
    PlatformFatalError,
    PlatformTransientError,
    TaskExpiredError,
)
from .datasets import (
    MISSING,
    IncompleteDataset,
    from_complete,
    generate_nba,
    generate_synthetic,
    sample_dataset,
)
from .metrics import accuracy_report, f1_score
from .obs import EventLog, MetricsRegistry, Tracer
from .persistence import (
    QueryCheckpoint,
    load_checkpoint,
    load_dataset,
    load_result,
    save_checkpoint,
    save_dataset,
    save_result,
)
from .probability import ADPLL, DistributionStore, ProbabilityEngine
from .skyband import CrowdSkyband, SkybandConfig, skyband
from .skyline import skyline, skyline_layers
from .topk import CrowdTopKDominating, TopKConfig, top_k_dominating

__version__ = "1.0.0"

__all__ = [
    "CrowdSky",
    "machine_only_skyline",
    "BayesianNetwork",
    "MissingValuePosteriors",
    "BayesCrowd",
    "BayesCrowdConfig",
    "QueryResult",
    "entropy",
    "marginal_utility",
    "run_bayescrowd",
    "ComparisonTask",
    "SimulatedCrowdPlatform",
    "WorkerPool",
    "CTable",
    "Condition",
    "Expression",
    "Relation",
    "build_ctable",
    "MISSING",
    "IncompleteDataset",
    "from_complete",
    "generate_nba",
    "generate_synthetic",
    "sample_dataset",
    "accuracy_report",
    "f1_score",
    "EventLog",
    "MetricsRegistry",
    "Tracer",
    "save_dataset",
    "load_dataset",
    "save_result",
    "load_result",
    "QueryCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "FaultModel",
    "UnreliableCrowdPlatform",
    "CheckpointError",
    "ConflictingBatchError",
    "DuplicateTaskError",
    "PlatformFatalError",
    "PlatformTransientError",
    "TaskExpiredError",
    "ADPLL",
    "DistributionStore",
    "ProbabilityEngine",
    "CrowdSkyband",
    "SkybandConfig",
    "skyband",
    "skyline",
    "skyline_layers",
    "CrowdTopKDominating",
    "TopKConfig",
    "top_k_dominating",
    "__version__",
]
