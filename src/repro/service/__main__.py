"""``python -m repro.service`` starts the query server."""

import sys

from .server import main

if __name__ == "__main__":
    sys.exit(main())
