"""Service application: sessions, admission control, drain, recovery.

This is the layer between the HTTP routers and the in-process session
substrate (:class:`~repro.session.SessionSupervisor` + the write-ahead
:class:`~repro.session.AnswerJournal`).  Responsibilities:

* **datasets** -- create (generated or inline), persist to the store;
* **sessions** -- admission-controlled open (bounded slots -> 429 with
  Retry-After), one supervising thread per running session, durable
  state records in the store after every lifecycle transition;
* **answers** -- asynchronous crowd answers land in each session's
  bounded queue (overflow -> 429/shed per policy) and are durably
  appended to a per-session answers log *before* the client is acked;
* **drain** -- SIGTERM stops admission, cooperatively cancels running
  sessions (journal + checkpoint make them resumable) and waits
  bounded time for them to park;
* **recovery** -- startup rescans the store, re-opens every
  non-terminal session through the supervisor's journal+checkpoint
  recovery (bit-identical by the crash-matrix contract) and re-enqueues
  durable answer submissions the engine had not consumed.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from dataclasses import fields as dataclass_fields
from typing import Dict, List, Optional

from ..core.config import BayesCrowdConfig
from ..core.framework import build_default_platform
from ..crowd.unreliable import FaultModel
from ..ctable.expression import Relation
from ..errors import BackpressureError, ConfigError
from ..obs.metrics import MetricsRegistry
from ..persistence import (
    expression_from_json,
    expression_to_json,
    result_to_dict,
    save_result,
)
from ..session.journal import read_journal
from ..session.supervisor import QueuedAnswerPlatform, SessionSupervisor
from .http import HTTPError
from .settings import ServiceSettings
from .store import TERMINAL_STATES, ServiceStore, valid_identifier

__all__ = ["ServiceApp", "PLATFORM_MODES"]

#: how a hosted session gets its crowd answers:
#: ``simulated`` -- the engine's deterministic simulated crowd (datasets
#: with ground truth; the benchmark/chaos-test mode);
#: ``queued`` -- answers arrive only via POST .../answers (a real crowd
#: fronted by HTTP); unanswered tasks follow the requeue policy;
#: ``hybrid`` -- queued answers win, the simulated crowd answers the rest.
PLATFORM_MODES = ("simulated", "queued", "hybrid")

#: config keys a client may set on a session (JSON-safe scalars only;
#: path/observability knobs are service-owned)
_CONFIG_BLOCKED = {
    "trace_path",
    "metrics_path",
    "journal_path",
    "journal_fsync",
}


def _config_from_payload(
    payload: Optional[dict], settings: ServiceSettings, session_id: str, store: ServiceStore
) -> BayesCrowdConfig:
    payload = dict(payload or {})
    allowed = {f.name for f in dataclass_fields(BayesCrowdConfig)} - _CONFIG_BLOCKED
    unknown = set(payload) - allowed
    if unknown:
        raise HTTPError(400, "unknown config keys: %s" % ", ".join(sorted(unknown)))
    if isinstance(payload.get("faults"), dict):
        try:
            payload["faults"] = FaultModel(**payload["faults"])
        except (TypeError, ValueError) as err:
            raise HTTPError(400, "invalid faults: %s" % err) from err
    if isinstance(payload.get("reliability_prior"), list):
        payload["reliability_prior"] = tuple(payload["reliability_prior"])
    payload["trace_path"] = str(store.session_file(session_id, "trace.jsonl"))
    payload["metrics_path"] = str(store.session_file(session_id, "metrics.json"))
    payload["journal_fsync"] = settings.journal_fsync
    try:
        return BayesCrowdConfig(**payload)
    except (ConfigError, ValueError, TypeError) as err:
        raise HTTPError(400, "invalid config: %s" % err) from err


def _config_payload_for_meta(payload: Optional[dict]) -> dict:
    """The JSON-safe config dict persisted for restart reconstruction."""
    out = {}
    for key, value in (payload or {}).items():
        out[key] = value
    return out


class ServiceApp:
    """One server process's state: store + supervisor + metrics."""

    def __init__(self, settings: ServiceSettings) -> None:
        self.settings = settings
        self.store = ServiceStore(settings.root)
        self.supervisor = SessionSupervisor(
            self.store.sessions_dir,
            max_pending_answers=settings.max_pending_answers,
            overflow_policy=settings.overflow_policy,
        )
        self.metrics = MetricsRegistry()
        self.metrics.info("service", "repro.service")
        self.started_at = time.time()
        self._threads: Dict[str, threading.Thread] = {}
        self._lock = threading.RLock()
        self._draining = False
        #: live connection count, maintained by the server loop
        self.connections = 0

    # ------------------------------------------------------------------
    # admission / state helpers
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def _require_admitting(self) -> None:
        if self._draining:
            raise HTTPError(
                503,
                "server is draining; retry against another replica",
                retry_after=self.settings.retry_after_s,
            )

    def active_sessions(self) -> int:
        return sum(
            1
            for s in self.supervisor.sessions()
            if s.state in ("PENDING", "RUNNING")
        )

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------
    def create_dataset(self, payload: dict) -> dict:
        self._require_admitting()
        limit = self.settings.max_datasets
        if limit and len(self.store.dataset_ids()) >= limit:
            raise HTTPError(
                429,
                "dataset store full (%d); delete or raise max_datasets" % limit,
                retry_after=self.settings.retry_after_s,
            )
        dataset_id = valid_identifier(
            payload.get("dataset_id") or ("ds-%s" % uuid.uuid4().hex[:12])
        )
        kind = payload.get("kind", "synthetic")
        try:
            if kind == "synthetic":
                from ..datasets import generate_synthetic

                dataset = generate_synthetic(
                    n_objects=int(payload.get("n", 200)),
                    missing_rate=float(payload.get("missing_rate", 0.1)),
                    seed=int(payload.get("seed", 0)),
                )
            elif kind == "nba":
                from ..datasets import generate_nba

                dataset = generate_nba(
                    n_objects=int(payload.get("n", 200)),
                    missing_rate=float(payload.get("missing_rate", 0.1)),
                    seed=int(payload.get("seed", 0)),
                )
            elif kind == "inline":
                dataset = self._inline_dataset(payload)
            else:
                raise HTTPError(
                    400,
                    "unknown dataset kind %r; expected synthetic|nba|inline" % kind,
                )
        except HTTPError:
            raise
        except (TypeError, ValueError) as err:
            raise HTTPError(400, "invalid dataset request: %s" % err) from err
        meta = self.store.save_dataset(
            dataset_id,
            dataset,
            {"kind": kind, "request": {k: v for k, v in payload.items() if k != "values"}},
        )
        self.metrics.counter(
            "service_datasets_created", "datasets created via the API"
        ).inc()
        return meta

    @staticmethod
    def _inline_dataset(payload: dict):
        import numpy as np

        from ..datasets.dataset import DatasetError, IncompleteDataset

        if "values" not in payload:
            raise HTTPError(400, "inline datasets need a 'values' matrix")
        values = np.asarray(payload["values"], dtype=np.int64)
        if values.ndim != 2:
            raise HTTPError(400, "'values' must be a 2-D matrix")
        complete = (
            np.asarray(payload["complete"], dtype=np.int64)
            if payload.get("complete") is not None
            else None
        )
        if payload.get("domain_sizes") is not None:
            domain_sizes = [int(d) for d in payload["domain_sizes"]]
        else:
            reference = complete if complete is not None else values
            domain_sizes = [
                max(2, int(reference[:, j].max()) + 1)
                for j in range(values.shape[1])
            ]
        kwargs = {}
        if payload.get("attribute_names") is not None:
            kwargs["attribute_names"] = [str(s) for s in payload["attribute_names"]]
        try:
            return IncompleteDataset(
                values=values,
                domain_sizes=domain_sizes,
                complete=complete,
                name=str(payload.get("name", "inline")),
                **kwargs,
            )
        except DatasetError as err:
            raise HTTPError(400, "invalid inline dataset: %s" % err) from err

    def list_datasets(self) -> List[dict]:
        return [self.store.dataset_meta(d) for d in self.store.dataset_ids()]

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def open_session(self, payload: dict) -> dict:
        self._require_admitting()
        if self.active_sessions() >= self.settings.max_sessions:
            self.metrics.counter(
                "service_sessions_rejected",
                "session opens refused by admission control",
            ).inc()
            raise HTTPError(
                429,
                "all %d session slots are busy" % self.settings.max_sessions,
                retry_after=self.settings.retry_after_s,
            )
        dataset_id = payload.get("dataset_id")
        if not dataset_id:
            raise HTTPError(400, "a dataset_id is required")
        dataset = self.store.load_dataset(valid_identifier(dataset_id))
        session_id = valid_identifier(
            payload.get("session_id") or ("qs-%s" % uuid.uuid4().hex[:12])
        )
        mode = payload.get("platform", "simulated")
        if mode not in PLATFORM_MODES:
            raise HTTPError(
                400,
                "unknown platform mode %r; expected one of %r"
                % (mode, PLATFORM_MODES),
            )
        if mode in ("simulated", "hybrid") and not dataset.has_ground_truth():
            raise HTTPError(
                409,
                "dataset %r has no ground truth to simulate answers from; "
                "use platform='queued'" % dataset_id,
            )
        config = _config_from_payload(
            payload.get("config"), self.settings, session_id, self.store
        )
        meta = self.store.create_session(
            session_id,
            {
                "dataset_id": dataset_id,
                "platform": mode,
                "config": _config_payload_for_meta(payload.get("config")),
                "state": "PENDING",
                "created_at": time.time(),
            },
        )
        self._register_and_start(session_id, dataset, config, mode, resume=False)
        self.metrics.counter(
            "service_sessions_opened", "sessions opened via the API"
        ).inc()
        return meta

    def _register_and_start(
        self, session_id: str, dataset, config, mode: str, resume: bool
    ) -> None:
        with self._lock:
            session = self.supervisor.create(session_id, dataset, config)
            if mode == "queued":
                session.platform = QueuedAnswerPlatform(session.answer_queue)
            elif mode == "hybrid":
                session.platform = QueuedAnswerPlatform(
                    session.answer_queue,
                    fallback=build_default_platform(dataset, config),
                )
            if resume:
                self._requeue_unconsumed_answers(session_id, session)
            thread = threading.Thread(
                target=self._session_thread,
                args=(session_id, resume),
                name="session-%s" % session_id,
                daemon=True,
            )
            self._threads[session_id] = thread
            thread.start()

    def _session_thread(self, session_id: str, resume: bool) -> None:
        try:
            self.store.update_session(session_id, state="RUNNING")
            result = self.supervisor.run(session_id, resume=resume)
        except HTTPError:
            raise
        except Exception as err:  # noqa: BLE001 - recorded, not propagated
            self.store.update_session(session_id, state="FAILED", error=str(err))
            self.metrics.counter(
                "service_sessions_failed", "sessions that exhausted supervision"
            ).inc()
            return
        if result is None:
            # Cooperative pause (drain, client pause or deadline): the
            # journal + checkpoint on disk make the session resumable.
            session = self.supervisor.get(session_id)
            self.store.update_session(
                session_id,
                state="PAUSED",
                pause_reason=str(session.error) if session.error else "paused",
            )
            self.metrics.counter(
                "service_sessions_paused", "sessions parked resumable"
            ).inc()
            return
        save_result(result, self.store.session_file(session_id, "result.json"))
        self.store.update_session(
            session_id,
            state="DEGRADED" if result.degraded else "DONE",
            rounds=result.rounds,
            tasks_posted=result.tasks_posted,
        )
        self.metrics.counter(
            "service_sessions_completed", "sessions run to completion"
        ).inc()

    def resume_session(self, session_id: str) -> dict:
        """Re-run a PAUSED session (same process) from its durable state."""
        self._require_admitting()
        session = self._get_session(session_id)
        if session.state != "PAUSED":
            raise HTTPError(
                409, "session %r is %s, not PAUSED" % (session_id, session.state)
            )
        if self.active_sessions() >= self.settings.max_sessions:
            raise HTTPError(
                429,
                "all %d session slots are busy" % self.settings.max_sessions,
                retry_after=self.settings.retry_after_s,
            )
        with self._lock:
            old = self._threads.get(session_id)
            if old is not None and old.is_alive():
                raise HTTPError(409, "session %r is still settling" % session_id)
            thread = threading.Thread(
                target=self._session_thread,
                args=(session_id, True),
                name="session-%s" % session_id,
                daemon=True,
            )
            self._threads[session_id] = thread
            thread.start()
        return {"session_id": session_id, "state": "RUNNING"}

    def pause_session(self, session_id: str, reason: str = "paused by client") -> dict:
        session = self._get_session(session_id)
        if session.state not in ("RUNNING", "PENDING"):
            raise HTTPError(
                409,
                "session %r is %s; only RUNNING sessions pause"
                % (session_id, session.state),
            )
        self.supervisor.pause(session_id, reason)
        return {"session_id": session_id, "state": session.state, "pausing": True}

    def cancel_session(self, session_id: str) -> dict:
        """Pause, then mark terminal CANCELLED (files stay for audit)."""
        session = self._get_session(session_id)
        if session.state in ("RUNNING", "PENDING"):
            self.supervisor.pause(session_id, "cancelled by client")
            thread = self._threads.get(session_id)
            if thread is not None:
                thread.join(timeout=self.settings.drain_timeout_s)
        meta = self.store.update_session(session_id, state="CANCELLED")
        return {"session_id": session_id, "state": meta["state"]}

    def _get_session(self, session_id: str):
        try:
            return self.supervisor.get(session_id)
        except KeyError:
            raise HTTPError(404, "unknown session %r" % session_id) from None

    def session_view(self, session_id: str) -> dict:
        meta = self.store.session_meta(session_id)
        try:
            session = self.supervisor.get(session_id)
        except KeyError:
            session = None
        view = dict(meta)
        if session is not None:
            view["state"] = session.state
            view["restarts"] = session.restarts
            view.update(session.answer_queue.stats())
        return view

    def list_sessions(self) -> List[dict]:
        return [self.session_view(sid) for sid in self.store.session_ids()]

    def session_result(self, session_id: str) -> dict:
        meta = self.store.session_meta(session_id)
        state = meta.get("state")
        try:
            session = self.supervisor.get(session_id)
            if session.result is not None:
                return {
                    "session_id": session_id,
                    "state": session.state,
                    "result": result_to_dict(session.result),
                }
        except KeyError:
            pass
        text = self.store.read_session_artifact(session_id, "result.json")
        if text is None:
            raise HTTPError(
                409,
                "session %r is %s; no result yet" % (session_id, state),
            )
        return {"session_id": session_id, "state": state, "result": json.loads(text)}

    def session_metrics_json(self, session_id: str) -> dict:
        self.store.session_meta(session_id)  # 404 on unknown
        text = self.store.read_session_artifact(session_id, "metrics.json")
        if text is None:
            raise HTTPError(409, "session %r has no metrics snapshot yet" % session_id)
        return json.loads(text)

    # ------------------------------------------------------------------
    # answers
    # ------------------------------------------------------------------
    def submit_answers(self, session_id: str, payload: dict) -> dict:
        self._require_admitting()
        session = self._get_session(session_id)
        meta = self.store.session_meta(session_id)
        if meta.get("platform", "simulated") == "simulated":
            raise HTTPError(
                409,
                "session %r runs the simulated platform and does not "
                "consume queued answers; open it with platform='queued' "
                "or 'hybrid'" % session_id,
            )
        entries = payload.get("answers")
        if not isinstance(entries, list) or not entries:
            raise HTTPError(400, "expected a non-empty 'answers' list")
        parsed = []
        for entry in entries:
            try:
                expression = expression_from_json(entry["expression"])
                relation = Relation(entry["relation"])
            except (KeyError, TypeError, ValueError) as err:
                raise HTTPError(400, "malformed answer %r: %s" % (entry, err)) from err
            parsed.append((expression, relation))
        log = self.store.answer_log(session_id, fsync=self.settings.journal_fsync)
        accepted = 0
        for expression, relation in parsed:
            try:
                session.answer_queue.put(expression, relation)
            except BackpressureError as err:
                self.metrics.counter(
                    "service_answers_rejected",
                    "answer submissions refused by backpressure",
                ).inc(len(parsed) - accepted)
                raise HTTPError(
                    429, str(err), retry_after=self.settings.retry_after_s
                ) from err
            # Durable acceptance: logged before the client is acked, so
            # a crash cannot silently lose an acknowledged submission.
            log.append(expression_to_json(expression), relation.value)
            accepted += 1
        self.metrics.counter(
            "service_answers_accepted", "answer submissions queued"
        ).inc(accepted)
        return {
            "session_id": session_id,
            "accepted": accepted,
            "queue_depth": len(session.answer_queue),
        }

    def _requeue_unconsumed_answers(self, session_id: str, session) -> None:
        """Re-enqueue durably logged submissions the engine never consumed.

        Consumption is reconciled against the engine's write-ahead
        journal per (expression, relation) occurrence count -- an
        at-least-once contract: a submission answered *and* journaled is
        not redelivered; one accepted but unconsumed at the crash is.
        """
        log = self.store.answer_log(session_id)
        submissions = log.load()
        if not submissions:
            return
        consumed: Dict[str, int] = {}
        journal_path = self.store.session_file(session_id, "journal.jsonl")
        if journal_path.exists():
            try:
                for record in read_journal(journal_path):
                    if record.kind != "answer":
                        continue
                    key = json.dumps(
                        [record.payload.get("expression"), record.payload.get("relation")],
                        sort_keys=True,
                    )
                    consumed[key] = consumed.get(key, 0) + 1
            except Exception:  # noqa: BLE001 - recovery must not die here
                consumed = {}
        requeued = 0
        for entry in submissions:
            key = json.dumps(
                [entry.get("expression"), entry.get("relation")], sort_keys=True
            )
            if consumed.get(key, 0) > 0:
                consumed[key] -= 1
                continue
            try:
                session.answer_queue.put(
                    expression_from_json(entry["expression"]),
                    Relation(entry["relation"]),
                )
                requeued += 1
            except (BackpressureError, KeyError, TypeError, ValueError):
                continue
        if requeued:
            self.metrics.counter(
                "service_answers_requeued",
                "durable submissions re-enqueued at recovery",
            ).inc(requeued)

    # ------------------------------------------------------------------
    # recovery & drain
    # ------------------------------------------------------------------
    def recover(self) -> List[str]:
        """Re-open every non-terminal stored session (startup path)."""
        recovered = []
        for meta in self.store.recoverable_sessions():
            session_id = meta["session_id"]
            try:
                dataset = self.store.load_dataset(meta["dataset_id"])
                config = _config_from_payload(
                    meta.get("config"), self.settings, session_id, self.store
                )
                self._register_and_start(
                    session_id,
                    dataset,
                    config,
                    meta.get("platform", "simulated"),
                    resume=True,
                )
            except (HTTPError, ValueError, KeyError) as err:
                self.store.update_session(
                    session_id, state="FAILED", error="unrecoverable: %s" % err
                )
                self.metrics.counter(
                    "service_sessions_failed",
                    "sessions that exhausted supervision",
                ).inc()
                continue
            recovered.append(session_id)
            self.metrics.counter(
                "service_sessions_recovered",
                "interrupted sessions re-opened at startup",
            ).inc()
        return recovered

    def begin_drain(self, reason: str = "SIGTERM") -> None:
        """Stop admitting and cooperatively cancel running sessions."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
        self.metrics.counter("service_drains", "drains initiated").inc()
        for session in self.supervisor.sessions():
            if session.state in ("PENDING", "RUNNING"):
                self.supervisor.pause(session.session_id, "drain: %s" % reason)

    def drain(self, timeout_s: Optional[float] = None, reason: str = "SIGTERM") -> bool:
        """Full graceful drain; True when every session parked in time."""
        self.begin_drain(reason)
        deadline = time.monotonic() + (
            self.settings.drain_timeout_s if timeout_s is None else timeout_s
        )
        parked = True
        for session_id, thread in list(self._threads.items()):
            while thread.is_alive() and time.monotonic() < deadline:
                # Re-assert the cancellation: the supervisor arms a fresh
                # context per restart attempt, so a pause that raced a
                # restart (or a thread that had not reached run() yet)
                # needs to be repeated until the session actually parks.
                session = self.supervisor.get(session_id)
                if session.state in ("PENDING", "RUNNING"):
                    self.supervisor.pause(session_id, "drain: %s" % reason)
                thread.join(timeout=0.1)
            if thread.is_alive():
                parked = False
        return parked

    # ------------------------------------------------------------------
    # health & metrics
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_s": time.time() - self.started_at,
            "draining": self._draining,
        }

    def readiness(self) -> dict:
        if self._draining:
            raise HTTPError(
                503, "draining", retry_after=self.settings.retry_after_s
            )
        return {
            "status": "ready",
            "session_slots_free": max(
                0, self.settings.max_sessions - self.active_sessions()
            ),
        }

    def refresh_gauges(self) -> None:
        states = {state: 0 for state in
                  ("PENDING", "RUNNING", "PAUSED", "DEGRADED", "FAILED", "DONE")}
        queue_depth = 0
        queue_shed = 0
        queue_rejected = 0
        for session in self.supervisor.sessions():
            states[session.state] = states.get(session.state, 0) + 1
            stats = session.answer_queue.stats()
            queue_depth += stats["queue_depth"]
            queue_shed += stats["queue_shed"]
            queue_rejected += stats["queue_rejected"]
        for state, count in states.items():
            self.metrics.gauge(
                "service_sessions_%s" % state.lower(),
                "sessions currently %s" % state,
            ).set(count)
        self.metrics.gauge(
            "service_answer_queue_depth", "queued answers across sessions"
        ).set(queue_depth)
        self.metrics.gauge(
            "service_answers_shed", "answers shed by overflow policy"
        ).set(queue_shed)
        self.metrics.gauge(
            "service_answers_queue_rejected", "queue-level rejections"
        ).set(queue_rejected)
        self.metrics.gauge("service_draining", "1 while draining").set(
            1.0 if self._draining else 0.0
        )
        self.metrics.gauge(
            "service_connections_active", "open client connections"
        ).set(self.connections)
        summary = self.store.summary()
        self.metrics.gauge("service_store_datasets", "datasets stored").set(
            summary["datasets"]
        )
        self.metrics.gauge("service_store_sessions", "sessions stored").set(
            summary["sessions"]
        )

    def prometheus_text(self) -> str:
        self.refresh_gauges()
        return self.metrics.to_prometheus()
