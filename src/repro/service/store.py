"""Persistent on-disk dataset/session store of the query service.

Layout under one root directory::

    root/
      index.json                   # store index (ids + kinds), atomic
      datasets/<id>.npz            # dataset payload (save_dataset)
      datasets/<id>.meta.json      # creation metadata
      sessions/<sid>.meta.json     # session record: dataset, config, state
      sessions/<sid>.journal.jsonl # write-ahead answer journal (engine)
      sessions/<sid>.checkpoint.json
      sessions/<sid>.trace.jsonl   # EventLog JSONL (the wire format)
      sessions/<sid>.metrics.json  # final metrics snapshot
      sessions/<sid>.result.json   # final QueryResult (save_result)
      sessions/<sid>.answers.jsonl # durable queued-answer submissions

Every whole-file write goes through :func:`repro.persistence.atomic_write`
(temp + fsync + rename), so a crash at any instant leaves each artifact
either absent, old, or new -- never torn.  The journal and the answers
log are append-only JSONL by design (their durability model is
fsync-per-record, not whole-file replacement).

The store is the restart source of truth: :meth:`recoverable_sessions`
returns every session whose last persisted state is non-terminal, which
is exactly the set the service re-opens through the supervisor's
journal+checkpoint recovery at startup.
"""

from __future__ import annotations

import json
import os
import re
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..datasets.dataset import IncompleteDataset
from ..errors import DataValidationError
from ..persistence import atomic_write, load_dataset, save_dataset
from .http import HTTPError

__all__ = ["ServiceStore", "DurableAnswerLog", "valid_identifier"]

#: session states the store considers finished (not re-opened on restart)
TERMINAL_STATES = ("DONE", "DEGRADED", "FAILED", "CANCELLED")

_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def valid_identifier(value: str) -> str:
    """Validate a client-supplied dataset/session id (path-safety)."""
    if not isinstance(value, str) or not _ID_RE.match(value):
        raise HTTPError(
            400,
            "invalid identifier %r: expected 1-64 chars of [A-Za-z0-9._-] "
            "not starting with a dot or dash" % (value,),
        )
    return value


class DurableAnswerLog:
    """Append-only fsynced JSONL of accepted crowd-answer submissions.

    Queued answers live in memory until the engine consumes them; this
    sidecar makes the *acceptance* durable, so a SIGKILL between "202
    accepted" and consumption does not silently lose the submission.
    On recovery the service re-enqueues every logged submission that the
    engine journal has not already consumed (at-least-once redelivery;
    consumption is matched per expression+relation occurrence count).
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()

    def append(self, expression_json: dict, relation_value: int) -> None:
        record = json.dumps(
            {"expression": expression_json, "relation": relation_value},
            sort_keys=True,
        )
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(record + "\n")
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())

    def load(self) -> List[dict]:
        """Every logged submission, in order (torn tail lines dropped)."""
        if not self.path.exists():
            return []
        records = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    break  # torn tail from a crash mid-append
        return records


class ServiceStore:
    """Filesystem-backed registry of datasets and sessions."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.datasets_dir = self.root / "datasets"
        self.sessions_dir = self.root / "sessions"
        for directory in (self.root, self.datasets_dir, self.sessions_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # index
    # ------------------------------------------------------------------
    def _write_index(self) -> None:
        index = {
            "datasets": self.dataset_ids(),
            "sessions": self.session_ids(),
        }
        atomic_write(
            self.root / "index.json",
            lambda handle: json.dump(index, handle, indent=2, sort_keys=True),
        )

    def dataset_ids(self) -> List[str]:
        return sorted(
            p.name[: -len(".meta.json")]
            for p in self.datasets_dir.glob("*.meta.json")
        )

    def session_ids(self) -> List[str]:
        return sorted(
            p.name[: -len(".meta.json")]
            for p in self.sessions_dir.glob("*.meta.json")
        )

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------
    def dataset_path(self, dataset_id: str) -> Path:
        return self.datasets_dir / ("%s.npz" % dataset_id)

    def save_dataset(
        self, dataset_id: str, dataset: IncompleteDataset, meta: dict
    ) -> dict:
        with self._lock:
            if self.dataset_path(dataset_id).exists():
                raise HTTPError(409, "dataset %r already exists" % dataset_id)
            save_dataset(dataset, self.dataset_path(dataset_id))
            record = dict(meta)
            record.update(
                dataset_id=dataset_id,
                n_objects=dataset.n_objects,
                n_attributes=dataset.n_attributes,
                missing_rate=dataset.missing_rate,
                has_ground_truth=bool(dataset.has_ground_truth()),
            )
            atomic_write(
                self.datasets_dir / ("%s.meta.json" % dataset_id),
                lambda handle: json.dump(record, handle, indent=2, sort_keys=True),
            )
            self._write_index()
            return record

    def load_dataset(self, dataset_id: str) -> IncompleteDataset:
        path = self.dataset_path(dataset_id)
        if not path.exists():
            raise HTTPError(404, "unknown dataset %r" % dataset_id)
        try:
            return load_dataset(path)
        except (OSError, ValueError, DataValidationError) as err:
            raise HTTPError(500, "unreadable dataset %r: %s" % (dataset_id, err))

    def dataset_meta(self, dataset_id: str) -> dict:
        path = self.datasets_dir / ("%s.meta.json" % dataset_id)
        if not path.exists():
            raise HTTPError(404, "unknown dataset %r" % dataset_id)
        return json.loads(path.read_text())

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def session_file(self, session_id: str, suffix: str) -> Path:
        return self.sessions_dir / ("%s.%s" % (session_id, suffix))

    def create_session(self, session_id: str, meta: dict) -> dict:
        with self._lock:
            path = self.session_file(session_id, "meta.json")
            if path.exists():
                raise HTTPError(409, "session %r already exists" % session_id)
            record = dict(meta)
            record.setdefault("state", "PENDING")
            record["session_id"] = session_id
            atomic_write(
                path,
                lambda handle: json.dump(record, handle, indent=2, sort_keys=True),
            )
            self._write_index()
            return record

    def update_session(self, session_id: str, **updates) -> dict:
        with self._lock:
            meta = self._session_meta_unlocked(session_id)
            meta.update(updates)
            atomic_write(
                self.session_file(session_id, "meta.json"),
                lambda handle: json.dump(meta, handle, indent=2, sort_keys=True),
            )
            return meta

    def _session_meta_unlocked(self, session_id: str) -> dict:
        path = self.session_file(session_id, "meta.json")
        if not path.exists():
            raise HTTPError(404, "unknown session %r" % session_id)
        return json.loads(path.read_text())

    def session_meta(self, session_id: str) -> dict:
        with self._lock:
            return self._session_meta_unlocked(session_id)

    def session_metas(self) -> List[dict]:
        return [self.session_meta(sid) for sid in self.session_ids()]

    def recoverable_sessions(self) -> List[dict]:
        """Metas of sessions whose persisted state is non-terminal."""
        return [
            meta
            for meta in self.session_metas()
            if meta.get("state") not in TERMINAL_STATES
        ]

    def answer_log(self, session_id: str, fsync: bool = True) -> DurableAnswerLog:
        return DurableAnswerLog(
            self.session_file(session_id, "answers.jsonl"), fsync=fsync
        )

    def read_session_artifact(self, session_id: str, suffix: str) -> Optional[str]:
        """Raw text of one per-session artifact, or ``None`` if absent."""
        path = self.session_file(session_id, suffix)
        if not path.exists():
            return None
        return path.read_text()

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        return {
            "datasets": len(self.dataset_ids()),
            "sessions": len(self.session_ids()),
        }
