"""Resilient HTTP/JSON query service over the BayesCrowd engine.

``repro serve`` (or ``python -m repro.service``) turns the in-process
session substrate -- :class:`~repro.session.SessionSupervisor`, the
write-ahead answer journal and checkpointing -- into a long-running
network service with admission control, graceful drain on SIGTERM and
crash-proof restart from its persistent on-disk store.
"""

from .app import PLATFORM_MODES, ServiceApp
from .faults import StoreFaultInjector, abrupt_close_probe, slow_loris_probe
from .http import HTTPError, Request, Response
from .server import QueryServer, main, run_server
from .settings import ServiceSettings
from .store import DurableAnswerLog, ServiceStore

__all__ = [
    "PLATFORM_MODES",
    "ServiceApp",
    "StoreFaultInjector",
    "abrupt_close_probe",
    "slow_loris_probe",
    "HTTPError",
    "Request",
    "Response",
    "QueryServer",
    "main",
    "run_server",
    "ServiceSettings",
    "ServiceStore",
    "DurableAnswerLog",
]
