"""Configuration of the skyline query service process.

One frozen-at-startup settings object (mirroring the ``app/`` layout's
``settings`` module the ROADMAP sketches) covers everything the server
needs: the bind address, the on-disk store root, the admission-control
limits that keep memory bounded under load, the transport limits that
defeat slow-loris and oversized-body clients, and the drain/recovery
knobs.  Every value can come from the environment (``REPRO_SERVICE_*``)
so a container deployment needs no flags, and every value is validated
here -- a bad knob is a :class:`~repro.errors.ConfigError` at startup,
never a mid-request surprise.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Union

from ..errors import ConfigError
from ..probability.kernel import validate_jit_gate
from ..session.supervisor import OVERFLOW_POLICIES

__all__ = ["ServiceSettings", "ENV_PREFIX"]

#: environment-variable prefix of :meth:`ServiceSettings.from_env`
ENV_PREFIX = "REPRO_SERVICE_"


@dataclass
class ServiceSettings:
    """All knobs of one ``repro serve`` process."""

    #: bind address / port (port 0 lets the OS pick -- tests rely on it)
    host: str = "127.0.0.1"
    port: int = 8321
    #: root of the persistent dataset/session store
    data_dir: Union[str, Path] = "repro-data"
    #: concurrently *active* (PENDING/RUNNING) session slots; opening a
    #: session beyond this returns 429 with Retry-After instead of
    #: growing memory without bound
    max_sessions: int = 8
    #: per-session bound on queued crowd answers (overflow per policy)
    max_pending_answers: int = 256
    #: "reject" (429 the submitter) or "shed-oldest"
    overflow_policy: str = "reject"
    #: concurrently open client connections; excess get 503 + close
    max_connections: int = 64
    #: Retry-After seconds attached to 429/503 responses
    retry_after_s: float = 1.0
    #: slow-loris guard: a client must deliver the full request head
    #: within this many seconds or the connection is dropped
    header_timeout_s: float = 10.0
    #: same guard for the request body
    body_timeout_s: float = 30.0
    #: request head / body size caps (431 / 413 beyond them)
    max_header_bytes: int = 32 * 1024
    max_body_bytes: int = 8 * 1024 * 1024
    #: seconds to wait for running sessions to reach a resumable pause
    #: during SIGTERM drain before the process gives up and exits anyway
    #: (journal durability means even that loses no acknowledged answer)
    drain_timeout_s: float = 30.0
    #: fsync every journal append of hosted sessions (the durability
    #: contract; tests flip it off for speed)
    journal_fsync: bool = True
    #: re-open interrupted sessions automatically at startup
    recover_on_start: bool = True
    #: bound on datasets a client may create (admission control for the
    #: store; 0 = unbounded)
    max_datasets: int = 1024
    #: resolved store root (filled in __post_init__)
    root: Path = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.host:
            raise ConfigError("host must be non-empty")
        if not 0 <= int(self.port) <= 65535:
            raise ConfigError("port must lie in [0, 65535], got %r" % (self.port,))
        self.port = int(self.port)
        if self.max_sessions < 1:
            raise ConfigError("max_sessions must be at least 1")
        if self.max_pending_answers < 1:
            raise ConfigError("max_pending_answers must be at least 1")
        if self.overflow_policy not in OVERFLOW_POLICIES:
            raise ConfigError(
                "unknown overflow_policy %r; expected one of %r"
                % (self.overflow_policy, OVERFLOW_POLICIES)
            )
        if self.max_connections < 1:
            raise ConfigError("max_connections must be at least 1")
        if self.retry_after_s < 0:
            raise ConfigError("retry_after_s must be non-negative")
        for knob in ("header_timeout_s", "body_timeout_s", "drain_timeout_s"):
            if getattr(self, knob) <= 0:
                raise ConfigError("%s must be positive" % knob)
        if self.max_header_bytes < 256:
            raise ConfigError("max_header_bytes must be at least 256")
        if self.max_body_bytes < 1:
            raise ConfigError("max_body_bytes must be at least 1")
        if self.max_datasets < 0:
            raise ConfigError("max_datasets must be non-negative (0 = unbounded)")
        if not isinstance(self.journal_fsync, bool):
            raise ConfigError("journal_fsync must be a bool")
        if not isinstance(self.recover_on_start, bool):
            raise ConfigError("recover_on_start must be a bool")
        # An operator who exported REPRO_FOREST_JIT=1 on a host without
        # numba finds out now, at service-config time -- not when the
        # first forest-backend session crashes a worker.
        validate_jit_gate()
        self.root = Path(self.data_dir)

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, environ=None, **overrides) -> "ServiceSettings":
        """Build settings from ``REPRO_SERVICE_*`` variables + overrides.

        Booleans accept 1/0/true/false/yes/no; numbers are parsed per
        the field's annotated type; unknown variables are ignored (they
        may belong to a newer server).
        """
        environ = os.environ if environ is None else environ
        kwargs = {}
        for spec in fields(cls):
            if not spec.init:
                continue
            key = ENV_PREFIX + spec.name.upper()
            if key not in environ:
                continue
            raw = environ[key]
            kind = spec.type if isinstance(spec.type, str) else spec.type.__name__
            try:
                if spec.name in ("journal_fsync", "recover_on_start"):
                    lowered = raw.strip().lower()
                    if lowered in ("1", "true", "yes", "on"):
                        kwargs[spec.name] = True
                    elif lowered in ("0", "false", "no", "off"):
                        kwargs[spec.name] = False
                    else:
                        raise ValueError("not a boolean: %r" % raw)
                elif "int" in kind:
                    kwargs[spec.name] = int(raw)
                elif "float" in kind:
                    kwargs[spec.name] = float(raw)
                else:
                    kwargs[spec.name] = raw
            except ValueError as err:
                raise ConfigError("bad %s=%r: %s" % (key, raw, err)) from err
        kwargs.update(overrides)
        return cls(**kwargs)
