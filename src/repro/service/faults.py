"""Transport/storage fault injection for the query service.

Two families, both used by the robustness test-suite and the CI chaos
job, both safe to import in production code (they do nothing until
armed):

* :class:`StoreFaultInjector` -- hooks
  :func:`repro.persistence.atomic_write` to simulate **disk-full**
  (``ENOSPC`` while writing the temp file) and **torn-write** (partial
  payload then a simulated crash before the rename).  The atomicity
  contract under test: the *target* file is never observable in a
  partial state -- it is absent, fully old, or fully new.

* socket probes -- drive the server's transport defenses from a real
  client socket: :func:`slow_loris_probe` trickles an unfinished request
  head and expects the 408 timeout to reap it;
  :func:`abrupt_close_probe` disappears mid-request and expects the
  server (and its hosted sessions) to shrug.
"""

from __future__ import annotations

import errno
import socket
import time
from pathlib import Path
from typing import Optional

from ..persistence import set_write_fault_hook

__all__ = [
    "StoreFaultInjector",
    "slow_loris_probe",
    "abrupt_close_probe",
]

FAULT_MODES = ("disk_full", "torn")


class StoreFaultInjector:
    """Context manager that makes the next atomic writes fail on purpose.

    ``mode='disk_full'`` raises ``OSError(ENOSPC)`` while the payload is
    being written to the temp file; ``mode='torn'`` writes a partial
    payload and then raises at the commit point (the instant before
    rename) -- the moral equivalent of a crash with a half-written temp
    file.  In both cases ``atomic_write`` must leave the target path
    untouched and the temp file unlinked.

    ``times`` bounds how many writes fail (subsequent writes succeed,
    modelling the disk recovering); ``match`` restricts injection to
    paths containing that substring.
    """

    def __init__(
        self,
        mode: str = "disk_full",
        times: int = 1,
        match: Optional[str] = None,
    ) -> None:
        if mode not in FAULT_MODES:
            raise ValueError(
                "unknown fault mode %r; expected one of %r" % (mode, FAULT_MODES)
            )
        self.mode = mode
        self.remaining = times
        self.match = match
        self.fired = 0
        self._previous = None

    # ------------------------------------------------------------------
    def _hook(self, stage: str, path: Path, handle) -> None:
        if self.remaining <= 0:
            return
        if self.match is not None and self.match not in str(path):
            return
        if self.mode == "disk_full" and stage == "payload":
            self.remaining -= 1
            self.fired += 1
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        if self.mode == "torn" and stage == "commit":
            self.remaining -= 1
            self.fired += 1
            # Half of the payload is already durable in the temp file;
            # the "crash" happens before the rename publishes it.
            handle.write("\x00TORN")
            handle.flush()
            raise OSError(errno.EIO, "injected: crash before rename")

    def __enter__(self) -> "StoreFaultInjector":
        self._previous = set_write_fault_hook(self._hook)
        return self

    def __exit__(self, *exc_info) -> None:
        set_write_fault_hook(self._previous)


# ----------------------------------------------------------------------
# transport probes
# ----------------------------------------------------------------------
def slow_loris_probe(
    host: str,
    port: int,
    duration_s: float = 30.0,
    interval_s: float = 0.2,
    timeout_s: float = 60.0,
) -> bytes:
    """Trickle an unfinished request head; return whatever the server sent.

    A robust server must reap the connection with a 408 (or a plain
    close) once ``header_timeout_s`` elapses -- it must not hold the
    socket open for the whole ``duration_s``.
    """
    deadline = time.monotonic() + duration_s
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\nX-Drip: ")
        received = b""
        while time.monotonic() < deadline:
            try:
                sock.sendall(b"y")
            except OSError:
                break  # server gave up on us: success
            sock.settimeout(interval_s)
            try:
                chunk = sock.recv(4096)
            except socket.timeout:
                continue
            except OSError:
                break
            if not chunk:
                break  # orderly close
            received += chunk
            if b"\r\n\r\n" in received:
                break  # got the 408
        return received


def abrupt_close_probe(host: str, port: int, body_bytes: int = 1 << 16) -> None:
    """Announce a large body, send half of it, and vanish (RST if we can)."""
    with socket.create_connection((host, port), timeout=60.0) as sock:
        head = (
            "POST /v1/datasets HTTP/1.1\r\nHost: x\r\n"
            "Content-Length: %d\r\n\r\n" % body_bytes
        ).encode()
        sock.sendall(head + b"x" * (body_bytes // 2))
        # SO_LINGER(0) turns close() into a hard RST, the nastiest
        # flavour of client disappearance.
        try:
            import struct

            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
