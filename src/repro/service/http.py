"""Minimal asyncio HTTP/1.1 layer: request parsing, responses, limits.

The service deliberately speaks plain HTTP over stdlib ``asyncio``
streams -- no web framework, no new dependency -- because its surface is
small (JSON bodies, JSONL streams, Prometheus text) and its robustness
requirements are specific:

* **slow-loris resistance**: the whole request head must arrive within
  ``header_timeout_s`` and fit in ``max_header_bytes``, the body within
  ``body_timeout_s`` and ``max_body_bytes``; violators cost one socket
  for a bounded time, never a thread or unbounded buffer;
* **typed rejection**: every refusal is an :class:`HTTPError` with a
  proper status (400/404/408/411/413/429/431/503) and -- for the
  backpressure statuses -- a ``Retry-After`` header, so well-behaved
  clients back off instead of hammering;
* **half-dead peers**: writes absorb ``ConnectionResetError`` /
  ``BrokenPipeError``; a client that vanished mid-stream must never
  take a session (or the server) down with it.
"""

from __future__ import annotations

import asyncio
import json
from typing import AsyncIterator, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HTTPError",
    "Request",
    "Response",
    "json_response",
    "error_response",
    "read_request",
    "write_response",
]

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: request methods the router understands
METHODS = ("GET", "POST", "DELETE", "HEAD")


class HTTPError(Exception):
    """A typed request refusal, rendered as a JSON error body."""

    def __init__(
        self, status: int, message: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


class Request:
    """One parsed HTTP request."""

    def __init__(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        parts = urlsplit(target)
        self.path = unquote(parts.path)
        self.query: Dict[str, str] = dict(parse_qsl(parts.query))
        self.headers = headers
        self.body = body
        #: filled by the router from ``{name}`` path segments
        self.params: Dict[str, str] = {}

    def json(self):
        """The request body parsed as JSON (400 on anything else)."""
        if not self.body:
            raise HTTPError(400, "a JSON request body is required")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise HTTPError(400, "malformed JSON body: %s" % err) from err

    @property
    def wants_keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


class Response:
    """One response: status + headers + body bytes, or a byte stream."""

    def __init__(
        self,
        status: int = 200,
        body: bytes = b"",
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
        stream: Optional[AsyncIterator[bytes]] = None,
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = dict(headers or {})
        #: when set, the body is produced incrementally and the
        #: connection closes at stream end (close-delimited framing)
        self.stream = stream


def json_response(payload, status: int = 200) -> Response:
    return Response(
        status=status,
        body=(json.dumps(payload, indent=None, sort_keys=True) + "\n").encode(),
    )


def error_response(err: HTTPError) -> Response:
    headers = {}
    if err.retry_after is not None:
        # Retry-After is delta-seconds; round up so 0.5 isn't "now".
        headers["Retry-After"] = str(max(1, int(-(-err.retry_after // 1))))
    return Response(
        status=err.status,
        body=(
            json.dumps({"error": err.message, "status": err.status}) + "\n"
        ).encode(),
        headers=headers,
    )


async def read_request(
    reader: asyncio.StreamReader,
    max_header_bytes: int,
    max_body_bytes: int,
    header_timeout_s: float,
    body_timeout_s: float,
) -> Optional[Request]:
    """Parse one request; ``None`` on clean EOF before a request line.

    Raises :class:`HTTPError` on protocol violations and timeouts; the
    caller renders it and closes the connection.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=header_timeout_s
        )
    except asyncio.TimeoutError:
        raise HTTPError(408, "request head not received in time") from None
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None  # clean keep-alive close
        raise HTTPError(400, "connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise HTTPError(431, "request head too large") from None
    if len(head) > max_header_bytes:
        raise HTTPError(431, "request head too large")

    try:
        head_text = head.decode("latin-1")
        request_line, _, header_block = head_text.partition("\r\n")
        method, target, version = request_line.split(" ", 2)
    except ValueError:
        raise HTTPError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HTTPError(400, "unsupported protocol %r" % version)
    if method not in METHODS:
        raise HTTPError(405, "method %s not supported" % method)

    headers: Dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HTTPError(400, "malformed header line %r" % line)
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HTTPError(400, "malformed Content-Length") from None
        if length < 0:
            raise HTTPError(400, "malformed Content-Length")
        if length > max_body_bytes:
            raise HTTPError(413, "request body exceeds %d bytes" % max_body_bytes)
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=body_timeout_s
                )
            except asyncio.TimeoutError:
                raise HTTPError(408, "request body not received in time") from None
            except asyncio.IncompleteReadError:
                raise HTTPError(400, "connection closed mid-body") from None
    elif headers.get("transfer-encoding"):
        raise HTTPError(411, "chunked request bodies are not supported")
    elif method == "POST":
        # POST without a length: treat as empty body (handlers that
        # need one raise 400 from Request.json()).
        body = b""
    return Request(method, target, headers, body)


async def write_response(
    writer: asyncio.StreamWriter,
    response: Response,
    keep_alive: bool = True,
) -> Tuple[bool, bool]:
    """Send one response; returns ``(written_ok, connection_reusable)``.

    Streamed responses are close-delimited, so they always end the
    connection; a peer that disappears mid-write is absorbed (the
    caller just closes).
    """
    reusable = keep_alive and response.stream is None
    head = ["HTTP/1.1 %d %s" % (response.status, _REASONS.get(response.status, "OK"))]
    headers = dict(response.headers)
    headers.setdefault("Content-Type", response.content_type)
    if response.stream is None:
        headers["Content-Length"] = str(len(response.body))
    headers["Connection"] = "keep-alive" if reusable else "close"
    for name, value in headers.items():
        head.append("%s: %s" % (name, value))
    head.append("\r\n")
    try:
        writer.write("\r\n".join(head).encode("latin-1"))
        if response.stream is None:
            if response.body:
                writer.write(response.body)
            await writer.drain()
        else:
            await writer.drain()
            async for chunk in response.stream:
                if chunk:
                    writer.write(chunk)
                    await writer.drain()
    except (ConnectionResetError, BrokenPipeError, OSError):
        return False, False
    return True, reusable
