"""The asyncio server loop: connections, signals, drain, recovery.

Lifecycle of one ``repro serve`` process::

    start --> recover() re-opens interrupted sessions from the store
          --> listen (announce "listening on http://host:port")
          --> serve keep-alive connections (bounded; excess get 503)
    SIGTERM/SIGINT
          --> stop admitting (readyz -> 503, new work -> 503)
          --> cooperatively cancel running sessions
          --> wait <= drain_timeout_s for them to park resumable
          --> exit 0 (all parked) / 1 (drain timeout; journal + store
              still guarantee a resumable restart -- that is the point)

A second signal during drain force-exits immediately; durability never
depends on the drain finishing because every mutation hit the journal
before it was acknowledged.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Optional

from ..errors import ConfigError
from .app import ServiceApp
from .http import (
    HTTPError,
    error_response,
    read_request,
    write_response,
)
from .routers import dispatch
from .settings import ServiceSettings

__all__ = ["QueryServer", "run_server", "main"]


class QueryServer:
    """One listening server bound to a :class:`ServiceApp`."""

    def __init__(self, settings: ServiceSettings, app: Optional[ServiceApp] = None) -> None:
        self.settings = settings
        self.app = app if app is not None else ServiceApp(settings)
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop: Optional[asyncio.Event] = None
        self._stop_reason = "stopped"
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.bound_port: Optional[int] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._stop = asyncio.Event()
        self._loop = asyncio.get_event_loop()
        if self.settings.recover_on_start:
            loop = asyncio.get_event_loop()
            recovered = await loop.run_in_executor(None, self.app.recover)
            if recovered:
                print(
                    "repro-service recovered %d interrupted session(s): %s"
                    % (len(recovered), ", ".join(recovered)),
                    flush=True,
                )
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.settings.host,
            port=self.settings.port,
            limit=self.settings.max_header_bytes + 4096,
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        print(
            "repro-service listening on http://%s:%d (data_dir=%s)"
            % (self.settings.host, self.bound_port, self.settings.root),
            flush=True,
        )

    def request_stop(self, reason: str) -> None:
        """Signal-safe stop request (idempotent)."""
        self._stop_reason = reason
        if self._stop is not None:
            self._stop.set()

    def request_stop_threadsafe(self, reason: str) -> None:
        """Stop from another thread (tests; embedding)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_stop, reason)

    async def serve_until_stopped(self) -> int:
        """Start, serve until a stop is requested, drain, return exit code."""
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.request_stop, signal.Signals(signum).name
                )
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-unix event loops / not the main thread
        await self.start()
        assert self._stop is not None
        await self._stop.wait()
        print(
            "repro-service draining (%s): refusing new work, parking sessions"
            % self._stop_reason,
            flush=True,
        )
        self._server.close()
        await self._server.wait_closed()
        parked = await loop.run_in_executor(
            None, self.app.drain, None, self._stop_reason
        )
        if parked:
            print("repro-service drained cleanly; sessions are resumable", flush=True)
            return 0
        print(
            "repro-service drain timed out after %.1fs; exiting anyway "
            "(journal guarantees resumability)" % self.settings.drain_timeout_s,
            flush=True,
        )
        return 1

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        app = self.app
        if app.connections >= self.settings.max_connections:
            app.metrics.counter(
                "service_connections_rejected",
                "connections refused by the connection cap",
            ).inc()
            await write_response(
                writer,
                error_response(
                    HTTPError(
                        503,
                        "connection limit reached",
                        retry_after=self.settings.retry_after_s,
                    )
                ),
                keep_alive=False,
            )
            self._close(writer)
            return
        app.connections += 1
        try:
            await self._serve_requests(reader, writer)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # half-dead peer; nothing to salvage
        finally:
            app.connections -= 1
            self._close(writer)

    async def _serve_requests(self, reader, writer) -> None:
        settings = self.settings
        app = self.app
        while True:
            try:
                request = await read_request(
                    reader,
                    max_header_bytes=settings.max_header_bytes,
                    max_body_bytes=settings.max_body_bytes,
                    header_timeout_s=settings.header_timeout_s,
                    body_timeout_s=settings.body_timeout_s,
                )
            except HTTPError as err:
                app.metrics.counter(
                    "service_requests_refused",
                    "requests refused at the transport layer",
                ).inc()
                await write_response(writer, error_response(err), keep_alive=False)
                return
            if request is None:
                return  # clean close between keep-alive requests
            app.metrics.counter("service_requests", "requests received").inc()
            try:
                response = await dispatch(app, request)
            except HTTPError as err:
                response = error_response(err)
            except Exception as err:  # noqa: BLE001 - request boundary
                app.metrics.counter(
                    "service_errors", "requests that hit an unexpected error"
                ).inc()
                response = error_response(
                    HTTPError(500, "internal error: %s" % err)
                )
            app.metrics.counter(
                "service_responses_%dxx" % (response.status // 100),
                "responses by status class",
            ).inc()
            if request.method == "HEAD":
                response.stream = None
                response.body = b""
            keep_alive = request.wants_keep_alive and not app.draining
            ok, reusable = await write_response(writer, response, keep_alive)
            if not ok or not reusable:
                return

    @staticmethod
    def _close(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except Exception:  # noqa: BLE001 - already-dead transport
            pass


async def _run(settings: ServiceSettings) -> int:
    server = QueryServer(settings)
    return await server.serve_until_stopped()


def run_server(settings: ServiceSettings) -> int:
    """Blocking entry point; returns the process exit code."""
    try:
        return asyncio.run(_run(settings))
    except KeyboardInterrupt:
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve skyline query sessions over HTTP/JSON.",
    )
    parser.add_argument("--host", default=None, help="bind address")
    parser.add_argument("--port", type=int, default=None, help="bind port (0 = OS-assigned)")
    parser.add_argument("--data-dir", default=None, help="persistent store root")
    parser.add_argument("--max-sessions", type=int, default=None)
    parser.add_argument("--max-pending-answers", type=int, default=None)
    parser.add_argument(
        "--overflow-policy", choices=("reject", "shed-oldest"), default=None
    )
    parser.add_argument("--max-connections", type=int, default=None)
    parser.add_argument("--drain-timeout-s", type=float, default=None)
    parser.add_argument(
        "--no-recover",
        action="store_true",
        help="do not re-open interrupted sessions at startup",
    )
    parser.add_argument(
        "--no-journal-fsync",
        action="store_true",
        help="skip fsync on journal appends (tests only; weakens durability)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    overrides = {}
    for field_name in (
        "host",
        "port",
        "data_dir",
        "max_sessions",
        "max_pending_answers",
        "overflow_policy",
        "max_connections",
        "drain_timeout_s",
    ):
        value = getattr(args, field_name)
        if value is not None:
            overrides[field_name] = value
    if args.no_recover:
        overrides["recover_on_start"] = False
    if args.no_journal_fsync:
        overrides["journal_fsync"] = False
    try:
        settings = ServiceSettings.from_env(**overrides)
    except ConfigError as err:
        print("config error: %s" % err, file=sys.stderr)
        return 2
    return run_server(settings)


if __name__ == "__main__":
    sys.exit(main())
