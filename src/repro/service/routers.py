"""Route table of the query service: paths -> :class:`ServiceApp` calls.

The API surface (all JSON unless noted)::

    GET  /healthz                          liveness
    GET  /readyz                           readiness (503 while draining)
    GET  /metrics                          Prometheus text format
    POST /v1/datasets                      create (synthetic|nba|inline)
    GET  /v1/datasets                      list
    GET  /v1/datasets/{dataset_id}         metadata
    POST /v1/sessions                      open a query session (202)
    GET  /v1/sessions                      list
    GET  /v1/sessions/{sid}                state + queue stats
    GET  /v1/sessions/{sid}/events         EventLog JSONL stream
                                           (?follow=1 tails until terminal)
    POST /v1/sessions/{sid}/answers        queue crowd answers (202/429)
    POST /v1/sessions/{sid}/pause          cooperative pause -> resumable
    POST /v1/sessions/{sid}/resume         resume a PAUSED session
    POST /v1/sessions/{sid}/cancel         pause + mark terminal CANCELLED
    GET  /v1/sessions/{sid}/result         final QueryResult (409 until done)
    GET  /v1/sessions/{sid}/metrics        final metrics snapshot JSON

Routing is a flat table of ``(method, "/seg/{param}/...")`` patterns --
no framework, no regex; ``{param}`` segments capture into
``request.params``.  ``HEAD`` matches ``GET`` routes (the server strips
the body).
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Awaitable, Callable, Dict, List, Optional, Tuple

from .http import HTTPError, Request, Response, json_response
from .store import TERMINAL_STATES

__all__ = ["dispatch", "ROUTES"]

Handler = Callable[["ServiceApp", Request], Awaitable[Response]]  # noqa: F821


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------
async def _healthz(app, request: Request) -> Response:
    return json_response(app.health())


async def _readyz(app, request: Request) -> Response:
    return json_response(app.readiness())


async def _metrics(app, request: Request) -> Response:
    text = await asyncio.get_event_loop().run_in_executor(
        None, app.prometheus_text
    )
    return Response(
        body=text.encode("utf-8"),
        content_type="text/plain; version=0.0.4; charset=utf-8",
    )


async def _create_dataset(app, request: Request) -> Response:
    payload = request.json()
    if not isinstance(payload, dict):
        raise HTTPError(400, "expected a JSON object")
    meta = await asyncio.get_event_loop().run_in_executor(
        None, app.create_dataset, payload
    )
    return json_response(meta, status=201)


async def _list_datasets(app, request: Request) -> Response:
    return json_response({"datasets": app.list_datasets()})


async def _dataset_meta(app, request: Request) -> Response:
    return json_response(app.store.dataset_meta(request.params["dataset_id"]))


async def _open_session(app, request: Request) -> Response:
    payload = request.json()
    if not isinstance(payload, dict):
        raise HTTPError(400, "expected a JSON object")
    meta = await asyncio.get_event_loop().run_in_executor(
        None, app.open_session, payload
    )
    return json_response(meta, status=202)


async def _list_sessions(app, request: Request) -> Response:
    return json_response({"sessions": app.list_sessions()})


async def _session_view(app, request: Request) -> Response:
    return json_response(app.session_view(request.params["session_id"]))


async def _submit_answers(app, request: Request) -> Response:
    payload = request.json()
    if not isinstance(payload, dict):
        raise HTTPError(400, "expected a JSON object")
    out = await asyncio.get_event_loop().run_in_executor(
        None, app.submit_answers, request.params["session_id"], payload
    )
    return json_response(out, status=202)


async def _pause_session(app, request: Request) -> Response:
    return json_response(app.pause_session(request.params["session_id"]))


async def _resume_session(app, request: Request) -> Response:
    return json_response(
        app.resume_session(request.params["session_id"]), status=202
    )


async def _cancel_session(app, request: Request) -> Response:
    out = await asyncio.get_event_loop().run_in_executor(
        None, app.cancel_session, request.params["session_id"]
    )
    return json_response(out)


async def _session_result(app, request: Request) -> Response:
    return json_response(app.session_result(request.params["session_id"]))


async def _session_metrics(app, request: Request) -> Response:
    return json_response(app.session_metrics_json(request.params["session_id"]))


def _events_stream(app, session_id: str, follow: bool) -> AsyncIterator[bytes]:
    """Tail a session's EventLog JSONL file as the response body.

    The trace file is rewritten from scratch when a session resumes
    (EventLog truncates on open), so a shrinking file resets the read
    offset -- the client sees the resumed run's events from its round 0.
    """
    path = app.store.session_file(session_id, "trace.jsonl")

    async def _generate() -> AsyncIterator[bytes]:
        offset = 0
        quiet_polls = 0
        while True:
            chunk = b""
            if path.exists():
                size = path.stat().st_size
                if size < offset:
                    offset = 0  # truncated by a resume
                if size > offset:
                    with open(path, "rb") as handle:
                        handle.seek(offset)
                        chunk = handle.read()
                        offset = handle.tell()
            if chunk:
                quiet_polls = 0
                yield chunk
            if not follow:
                return
            try:
                state = app.store.session_meta(session_id).get("state")
            except HTTPError:
                return
            if state in TERMINAL_STATES or state == "PAUSED":
                # allow two extra polls so the tail written between the
                # state flip and now is not lost
                quiet_polls += 1
                if quiet_polls > 2 and not chunk:
                    return
            await asyncio.sleep(0.1)

    return _generate()


async def _session_events(app, request: Request) -> Response:
    session_id = request.params["session_id"]
    app.store.session_meta(session_id)  # 404 on unknown
    follow = request.query.get("follow", "0") not in ("", "0", "false")
    return Response(
        content_type="application/x-ndjson",
        stream=_events_stream(app, session_id, follow),
    )


# ----------------------------------------------------------------------
# table + dispatch
# ----------------------------------------------------------------------
ROUTES: List[Tuple[str, str, Handler]] = [
    ("GET", "/healthz", _healthz),
    ("GET", "/readyz", _readyz),
    ("GET", "/metrics", _metrics),
    ("POST", "/v1/datasets", _create_dataset),
    ("GET", "/v1/datasets", _list_datasets),
    ("GET", "/v1/datasets/{dataset_id}", _dataset_meta),
    ("POST", "/v1/sessions", _open_session),
    ("GET", "/v1/sessions", _list_sessions),
    ("GET", "/v1/sessions/{session_id}", _session_view),
    ("GET", "/v1/sessions/{session_id}/events", _session_events),
    ("POST", "/v1/sessions/{session_id}/answers", _submit_answers),
    ("POST", "/v1/sessions/{session_id}/pause", _pause_session),
    ("POST", "/v1/sessions/{session_id}/resume", _resume_session),
    ("POST", "/v1/sessions/{session_id}/cancel", _cancel_session),
    ("GET", "/v1/sessions/{session_id}/result", _session_result),
    ("GET", "/v1/sessions/{session_id}/metrics", _session_metrics),
]

_COMPILED = [
    (method, tuple(pattern.strip("/").split("/")), handler)
    for method, pattern, handler in ROUTES
]


def _match(
    method: str, path: str
) -> Tuple[Optional[Handler], Dict[str, str], bool]:
    """Resolve a request; returns (handler, params, path_known)."""
    segments = tuple(seg for seg in path.strip("/").split("/") if seg != "")
    if path.strip("/") == "":
        segments = ()
    path_known = False
    want = "GET" if method == "HEAD" else method
    for route_method, route_segments, handler in _COMPILED:
        if len(route_segments) != len(segments):
            continue
        params: Dict[str, str] = {}
        for route_seg, seg in zip(route_segments, segments):
            if route_seg.startswith("{") and route_seg.endswith("}"):
                params[route_seg[1:-1]] = seg
            elif route_seg != seg:
                break
        else:
            path_known = True
            if route_method == want:
                return handler, params, True
    return None, {}, path_known


async def dispatch(app, request: Request) -> Response:
    """Route one request to its handler (404/405 on no match)."""
    handler, params, path_known = _match(request.method, request.path)
    if handler is None:
        if path_known:
            raise HTTPError(405, "method %s not allowed here" % request.method)
        raise HTTPError(404, "no route for %s" % request.path)
    request.params = params
    return await handler(app, request)
