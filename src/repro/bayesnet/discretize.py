"""Domain discretization.

"Bayesian network is more suitable to discrete values.  For continuous
values, we partition the whole domain into a series of value ranges
(using some space partitioning techniques), and treat each range as a
discrete value" (Section 3).  Both equal-width and equal-frequency
partitioning are provided; the dataset generators use equal-frequency so
every level carries comparable mass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


def equal_width_edges(column: np.ndarray, n_bins: int) -> np.ndarray:
    """Interior cut points splitting ``[min, max]`` into equal-width bins."""
    if n_bins < 1:
        raise ValueError("n_bins must be positive")
    lo = float(np.min(column))
    hi = float(np.max(column))
    if lo == hi:
        return np.array([])
    return np.linspace(lo, hi, n_bins + 1)[1:-1]


def equal_frequency_edges(column: np.ndarray, n_bins: int) -> np.ndarray:
    """Interior cut points at quantiles so bins hold similar counts.

    Duplicate quantiles (heavy ties) are collapsed, so fewer than
    ``n_bins`` levels may result on highly discrete inputs.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be positive")
    quantiles = np.linspace(0, 1, n_bins + 1)[1:-1]
    # closest_observation keeps cut points on actual data values, so heavy
    # ties collapse instead of producing interpolated phantom levels.
    edges = np.quantile(column, quantiles, method="closest_observation")
    return np.unique(edges)


@dataclass
class Discretizer:
    """Per-attribute binning of a continuous matrix into ordinal levels."""

    edges: List[np.ndarray]

    @classmethod
    def fit(
        cls,
        matrix: np.ndarray,
        n_bins: int,
        strategy: str = "frequency",
    ) -> "Discretizer":
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-D")
        if strategy == "frequency":
            edge_fn = equal_frequency_edges
        elif strategy == "width":
            edge_fn = equal_width_edges
        else:
            raise ValueError("unknown strategy %r" % strategy)
        edges = [edge_fn(matrix[:, j], n_bins) for j in range(matrix.shape[1])]
        return cls(edges=edges)

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Map every cell to its ordinal level (0 = lowest)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        out = np.zeros(matrix.shape, dtype=np.int64)
        for j, cuts in enumerate(self.edges):
            out[:, j] = np.searchsorted(cuts, matrix[:, j], side="right")
        return out

    def domain_sizes(self) -> List[int]:
        return [len(cuts) + 1 for cuts in self.edges]


def discretize(
    matrix: np.ndarray, n_bins: int, strategy: str = "frequency"
) -> "tuple[np.ndarray, List[int]]":
    """One-shot fit + transform; returns ``(levels, domain_sizes)``."""
    discretizer = Discretizer.fit(matrix, n_bins, strategy=strategy)
    return discretizer.transform(matrix), discretizer.domain_sizes()
