"""Discrete Bayesian network: joint model, sampling, fitting, queries."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .cpt import CPT
from .dag import DAG
from .inference import Factor, VariableElimination
from .parameters import fit_cpt
from .structure import hill_climb


class BayesianNetwork:
    """A fully-specified discrete Bayesian network over attribute indices.

    Nodes are attribute indices ``0..d-1`` with cardinalities
    ``cardinalities[j]``.  The network owns one :class:`CPT` per node whose
    parent set matches ``dag``.
    """

    def __init__(
        self,
        dag: DAG,
        cardinalities: Sequence[int],
        cpts: Sequence[CPT],
        node_names: Optional[List[str]] = None,
    ) -> None:
        self.dag = dag
        self.cardinalities = list(int(c) for c in cardinalities)
        if dag.n_nodes != len(self.cardinalities):
            raise ValueError("DAG size does not match cardinalities")
        if len(cpts) != dag.n_nodes:
            raise ValueError("expected one CPT per node")
        self.cpts: List[CPT] = [None] * dag.n_nodes  # type: ignore[list-item]
        for cpt in cpts:
            if set(cpt.parents) != set(dag.parents(cpt.node)):
                raise ValueError(
                    "CPT parents %r disagree with DAG parents of node %d"
                    % (cpt.parents, cpt.node)
                )
            if cpt.cardinality != self.cardinalities[cpt.node]:
                raise ValueError("CPT cardinality mismatch for node %d" % cpt.node)
            self.cpts[cpt.node] = cpt
        if any(c is None for c in self.cpts):
            raise ValueError("missing CPT for some node")
        self.node_names = node_names or ["a%d" % (j + 1) for j in range(dag.n_nodes)]
        self._order = dag.topological_order()
        self._ve: Optional[VariableElimination] = None

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.dag.n_nodes

    def joint_probability(self, assignment: Sequence[int]) -> float:
        """Probability of one complete assignment (chain rule)."""
        if len(assignment) != self.n_nodes:
            raise ValueError("assignment length mismatch")
        prob = 1.0
        values = {j: int(assignment[j]) for j in range(self.n_nodes)}
        for node in range(self.n_nodes):
            prob *= self.cpts[node].probability(values[node], values)
        return prob

    def log_likelihood(self, data: np.ndarray) -> float:
        """Sum of log joint probabilities of complete rows."""
        total = 0.0
        for row in np.asarray(data, dtype=np.int64):
            p = self.joint_probability(row)
            if p <= 0:
                return float("-inf")
            total += float(np.log(p))
        return total

    # ------------------------------------------------------------------
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Forward (ancestral) sampling of ``n`` complete rows."""
        if n < 0:
            raise ValueError("n must be non-negative")
        out = np.zeros((n, self.n_nodes), dtype=np.int64)
        for node in self._order:
            cpt = self.cpts[node]
            if not cpt.parents:
                pmf = cpt.table
                out[:, node] = rng.choice(len(pmf), size=n, p=pmf)
                continue
            # Group rows by parent configuration for vectorized sampling.
            parent_cols = out[:, list(cpt.parents)]
            shape = cpt.parent_cards()
            flat = np.ravel_multi_index(parent_cols.T, shape) if n else np.array([], dtype=np.int64)
            uniques = np.unique(flat)
            for config in uniques:
                rows = np.nonzero(flat == config)[0]
                pmf = cpt.table.reshape(-1, cpt.cardinality)[config]
                out[rows, node] = rng.choice(cpt.cardinality, size=len(rows), p=pmf)
        return out

    # ------------------------------------------------------------------
    def posterior(self, target: int, evidence: Dict[int, int]) -> np.ndarray:
        """Exact posterior pmf of ``target`` given the evidence dict."""
        return self._elimination().query(target, evidence)

    def posterior_multi(
        self, targets: Sequence[int], evidence: Dict[int, int]
    ) -> List[np.ndarray]:
        """Exact posteriors of several nodes sharing one evidence dict.

        Evidence restriction runs once for the whole target list; each
        target's pmf is identical to a separate :meth:`posterior` call.
        """
        return self._elimination().query_multi(targets, evidence)

    def _elimination(self) -> VariableElimination:
        if self._ve is None:
            factors = [
                Factor(cpt.parents + (cpt.node,), cpt.table) for cpt in self.cpts
            ]
            self._ve = VariableElimination(factors, self.cardinalities)
        return self._ve

    def prior(self, target: int) -> np.ndarray:
        """Marginal pmf of one node with no evidence."""
        return self.posterior(target, {})

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        data: np.ndarray,
        cardinalities: Sequence[int],
        max_parents: int = 3,
        smoothing: float = 1.0,
        node_names: Optional[List[str]] = None,
        rng: Optional[np.random.Generator] = None,
        dag: Optional[DAG] = None,
        mask: Optional[np.ndarray] = None,
    ) -> "BayesianNetwork":
        """Learn structure (hill climbing + BIC) and parameters.

        Pass ``dag`` to skip structure search and fit parameters only.
        With ``mask`` (True = missing cell), both steps use available-case
        analysis, so fully-incomplete datasets can be fitted directly;
        masked cells of ``data`` are never read.
        """
        data = np.asarray(data, dtype=np.int64).copy()
        if mask is not None:
            data[mask] = 0  # neutralize sentinel values; rows are filtered anyway
        if dag is None:
            dag = hill_climb(
                data, cardinalities, max_parents=max_parents, rng=rng, mask=mask
            ).dag
        cpts = [
            fit_cpt(
                data,
                node,
                sorted(dag.parents(node)),
                cardinalities,
                alpha=smoothing,
                mask=mask,
            )
            for node in range(dag.n_nodes)
        ]
        return cls(dag, cardinalities, cpts, node_names=node_names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "BayesianNetwork(nodes=%d, edges=%d)" % (self.n_nodes, self.dag.n_edges())
