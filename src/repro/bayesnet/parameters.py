"""Parameter learning: Laplace-smoothed maximum-likelihood CPT estimation.

This stands in for the Infer.Net parameter estimation used by the paper:
for fully discrete networks, Bayesian parameter estimation with a uniform
Dirichlet prior reduces to the smoothed count ratios computed here.

Both estimators accept an optional missingness ``mask`` and then perform
*available-case* analysis: each family ``(node, parents)`` is counted over
the rows that are complete in exactly those columns, so the network can be
trained directly on an incomplete dataset (where no row may be fully
complete) without imputation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .cpt import CPT


def _family_rows(
    data: np.ndarray,
    columns: Sequence[int],
    mask: Optional[np.ndarray],
) -> np.ndarray:
    """Rows of ``data`` complete in every listed column (available case)."""
    if mask is None:
        return data
    keep = ~mask[:, list(columns)].any(axis=1)
    return data[keep]


def fit_cpt(
    data: np.ndarray,
    node: int,
    parents: Sequence[int],
    cardinalities: Sequence[int],
    alpha: float = 1.0,
    mask: Optional[np.ndarray] = None,
) -> CPT:
    """Estimate ``P(node | parents)`` from (available-case) counts.

    Parameters
    ----------
    data:
        ``(n, d)`` integer matrix; with ``mask`` given, cells flagged there
        are ignored via available-case row filtering per family.
    alpha:
        Additive (Laplace/Dirichlet) smoothing pseudo-count.  ``alpha > 0``
        guarantees every value keeps non-zero probability, which matches the
        paper's assumption that "every missing value has non-zero probability
        of getting any value within the corresponding attribute domain".
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    parents = tuple(int(p) for p in parents)
    card = int(cardinalities[node])
    parent_cards: Tuple[int, ...] = tuple(int(cardinalities[p]) for p in parents)
    shape = parent_cards + (card,)
    counts = np.zeros(shape, dtype=np.float64)

    rows = _family_rows(data, parents + (node,), mask)
    if rows.shape[0]:
        columns = [rows[:, p] for p in parents] + [rows[:, node]]
        flat = np.ravel_multi_index(columns, shape)
        counts += np.bincount(flat, minlength=int(np.prod(shape))).reshape(shape)

    counts += alpha
    totals = counts.sum(axis=-1, keepdims=True)
    # alpha == 0 with an unseen parent configuration would divide by zero;
    # fall back to a uniform row in that case.
    zero_rows = totals == 0
    if zero_rows.any():
        counts = counts + zero_rows * (1.0 / card)
        totals = counts.sum(axis=-1, keepdims=True)
    return CPT(node=node, parents=parents, table=counts / totals)


def log_likelihood(
    data: np.ndarray,
    node: int,
    parents: Sequence[int],
    cardinalities: Sequence[int],
    mask: Optional[np.ndarray] = None,
) -> float:
    """Maximized family log-likelihood of one node given its parents.

    Used by the BIC structure score; computed directly from (available-
    case) counts so the structure search never materializes CPT objects.
    """
    parents = tuple(int(p) for p in parents)
    card = int(cardinalities[node])
    parent_cards = tuple(int(cardinalities[p]) for p in parents)
    shape = parent_cards + (card,)
    counts = np.zeros(shape, dtype=np.float64)
    rows = _family_rows(data, parents + (node,), mask)
    if rows.shape[0]:
        columns = [rows[:, p] for p in parents] + [rows[:, node]]
        flat = np.ravel_multi_index(columns, shape)
        counts += np.bincount(flat, minlength=int(np.prod(shape))).reshape(shape)
    totals = counts.sum(axis=-1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_ratio = np.where(counts > 0, np.log(counts / totals), 0.0)
    return float((counts * log_ratio).sum())


def family_sample_size(
    data: np.ndarray,
    columns: Sequence[int],
    mask: Optional[np.ndarray] = None,
) -> int:
    """Number of available-case rows for one family (for BIC penalties)."""
    return int(_family_rows(data, tuple(columns), mask).shape[0])
