"""Directed acyclic graph over attribute indices.

A tiny purpose-built DAG type: nodes are the integers ``0..n-1`` (attribute
indices) and edges point parent -> child.  It supports exactly the
operations the hill-climbing structure learner needs: add / remove /
reverse an edge with an acyclicity guard, parent lookup and topological
ordering.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Set, Tuple


class CycleError(ValueError):
    """Raised when an edge operation would create a directed cycle."""


class DAG:
    """Mutable DAG with parent-set representation."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 0:
            raise ValueError("n_nodes must be non-negative")
        self.n_nodes = n_nodes
        self._parents: List[Set[int]] = [set() for _ in range(n_nodes)]
        self._children: List[Set[int]] = [set() for _ in range(n_nodes)]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def parents(self, node: int) -> FrozenSet[int]:
        return frozenset(self._parents[node])

    def children(self, node: int) -> FrozenSet[int]:
        return frozenset(self._children[node])

    def has_edge(self, parent: int, child: int) -> bool:
        return child in self._children[parent]

    def edges(self) -> Iterator[Tuple[int, int]]:
        for parent in range(self.n_nodes):
            for child in sorted(self._children[parent]):
                yield (parent, child)

    def n_edges(self) -> int:
        return sum(len(c) for c in self._children)

    def has_path(self, source: int, target: int) -> bool:
        """Directed reachability source ->* target (DFS)."""
        if source == target:
            return True
        stack = [source]
        seen = {source}
        while stack:
            node = stack.pop()
            for child in self._children[node]:
                if child == target:
                    return True
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return False

    def topological_order(self) -> List[int]:
        """Kahn's algorithm; raises :class:`CycleError` on a cyclic graph."""
        in_degree = [len(self._parents[v]) for v in range(self.n_nodes)]
        frontier = [v for v in range(self.n_nodes) if in_degree[v] == 0]
        order: List[int] = []
        while frontier:
            node = frontier.pop()
            order.append(node)
            for child in self._children[node]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    frontier.append(child)
        if len(order) != self.n_nodes:
            raise CycleError("graph contains a directed cycle")
        return order

    # ------------------------------------------------------------------
    # mutations (all guarded against cycles)
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError("node %d out of range" % node)

    def can_add_edge(self, parent: int, child: int) -> bool:
        self._check_node(parent)
        self._check_node(child)
        if parent == child or self.has_edge(parent, child):
            return False
        return not self.has_path(child, parent)

    def add_edge(self, parent: int, child: int) -> None:
        if parent == child:
            raise CycleError("self loop %d -> %d" % (parent, child))
        self._check_node(parent)
        self._check_node(child)
        if self.has_path(child, parent):
            raise CycleError("edge %d -> %d would create a cycle" % (parent, child))
        self._parents[child].add(parent)
        self._children[parent].add(child)

    def remove_edge(self, parent: int, child: int) -> None:
        if not self.has_edge(parent, child):
            raise ValueError("edge %d -> %d not present" % (parent, child))
        self._parents[child].discard(parent)
        self._children[parent].discard(child)

    def can_reverse_edge(self, parent: int, child: int) -> bool:
        if not self.has_edge(parent, child):
            return False
        self.remove_edge(parent, child)
        try:
            return not self.has_path(parent, child)
        finally:
            self.add_edge(parent, child)

    def reverse_edge(self, parent: int, child: int) -> None:
        if not self.has_edge(parent, child):
            raise ValueError("edge %d -> %d not present" % (parent, child))
        self.remove_edge(parent, child)
        try:
            self.add_edge(child, parent)
        except CycleError:
            self.add_edge(parent, child)
            raise

    def copy(self) -> "DAG":
        clone = DAG(self.n_nodes)
        for parent, child in self.edges():
            clone._parents[child].add(parent)
            clone._children[parent].add(child)
        return clone

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DAG):
            return NotImplemented
        return self.n_nodes == other.n_nodes and self._parents == other._parents

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "DAG(n=%d, edges=%s)" % (self.n_nodes, list(self.edges()))


def dag_from_edges(n_nodes: int, edges: Iterator[Tuple[int, int]]) -> DAG:
    """Build a DAG from an edge list, validating acyclicity edge by edge."""
    dag = DAG(n_nodes)
    for parent, child in edges:
        dag.add_edge(parent, child)
    return dag
