"""Missing-value posterior service.

The preprocessing step of BayesCrowd (Section 3): given a trained
Bayesian network and an incomplete dataset, learn a probability
distribution for every variable ``Var(o, a)`` -- the posterior of
attribute ``a`` given the *observed* attributes of object ``o``.

Like the paper's ADPLL (which multiplies ``prob * p(v_a)`` per variable),
downstream probability computation treats variables as independent with
these marginal posteriors; this class is the single place the marginals
are produced.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..datasets.dataset import IncompleteDataset, Variable
from .network import BayesianNetwork


class MissingValuePosteriors:
    """Computes and caches per-variable posterior distributions."""

    def __init__(self, network: BayesianNetwork, dataset: IncompleteDataset) -> None:
        if network.n_nodes != dataset.n_attributes:
            raise ValueError("network/dataset attribute count mismatch")
        for j in range(dataset.n_attributes):
            if network.cardinalities[j] != dataset.domain_sizes[j]:
                raise ValueError(
                    "attribute %d: network cardinality %d != domain size %d"
                    % (j, network.cardinalities[j], dataset.domain_sizes[j])
                )
        self._network = network
        self._dataset = dataset
        self._cache: Dict[Tuple[int, Tuple[Tuple[int, int], ...]], np.ndarray] = {}

    def distribution(self, variable: Variable) -> np.ndarray:
        """Posterior pmf of one missing cell given its object's observed cells."""
        obj, attr = variable
        if not self._dataset.is_missing(obj, attr):
            raise ValueError("cell (%d, %d) is not missing" % (obj, attr))
        evidence = self._dataset.observed_evidence(obj)
        key = (attr, tuple(sorted(evidence.items())))
        cached = self._cache.get(key)
        if cached is None:
            cached = self._network.posterior(attr, evidence)
            self._cache[key] = cached
        return cached.copy()

    def all_distributions(self) -> Dict[Variable, np.ndarray]:
        """Posteriors for every missing cell of the dataset."""
        return {variable: self.distribution(variable) for variable in self._dataset.variables()}


def uniform_distributions(dataset: IncompleteDataset) -> Dict[Variable, np.ndarray]:
    """Zero-knowledge fallback: uniform pmf over each attribute domain.

    Matches the paper's baseline assumption that "there is no prior
    knowledge on the missing values"; used when no Bayesian network is
    supplied (and by tests that need deterministic distributions).
    """
    out: Dict[Variable, np.ndarray] = {}
    for variable in dataset.variables():
        __, attr = variable
        size = dataset.domain_sizes[attr]
        out[variable] = np.full(size, 1.0 / size)
    return out


def empirical_distributions(
    dataset: IncompleteDataset, smoothing: float = 1.0
) -> Dict[Variable, np.ndarray]:
    """Column-marginal distributions estimated from observed values.

    A middle ground between uniform and full BN posteriors: each variable's
    pmf is the smoothed empirical distribution of its attribute's observed
    values (no cross-attribute correlation).
    """
    pmfs = []
    for j, size in enumerate(dataset.domain_sizes):
        column = dataset.values[:, j]
        observed = column[column >= 0]
        counts = np.bincount(observed, minlength=size).astype(np.float64)
        counts += smoothing
        pmfs.append(counts / counts.sum())
    out: Dict[Variable, np.ndarray] = {}
    for variable in dataset.variables():
        __, attr = variable
        out[variable] = pmfs[attr].copy()
    return out
