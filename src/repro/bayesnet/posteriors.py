"""Missing-value posterior service.

The preprocessing step of BayesCrowd (Section 3): given a trained
Bayesian network and an incomplete dataset, learn a probability
distribution for every variable ``Var(o, a)`` -- the posterior of
attribute ``a`` given the *observed* attributes of object ``o``.

Like the paper's ADPLL (which multiplies ``prob * p(v_a)`` per variable),
downstream probability computation treats variables as independent with
these marginal posteriors; this class is the single place the marginals
are produced.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..datasets.dataset import MISSING, IncompleteDataset, Variable
from .network import BayesianNetwork


class MissingValuePosteriors:
    """Computes and caches per-variable posterior distributions."""

    def __init__(self, network: BayesianNetwork, dataset: IncompleteDataset) -> None:
        if network.n_nodes != dataset.n_attributes:
            raise ValueError("network/dataset attribute count mismatch")
        for j in range(dataset.n_attributes):
            if network.cardinalities[j] != dataset.domain_sizes[j]:
                raise ValueError(
                    "attribute %d: network cardinality %d != domain size %d"
                    % (j, network.cardinalities[j], dataset.domain_sizes[j])
                )
        self._network = network
        self._dataset = dataset
        self._cache: Dict[Tuple[int, Tuple[Tuple[int, int], ...]], np.ndarray] = {}
        #: populated by :meth:`precompute_all` (signature grouping counters)
        self.stats: Dict[str, int] = {}

    def distribution(self, variable: Variable) -> np.ndarray:
        """Posterior pmf of one missing cell given its object's observed cells."""
        obj, attr = variable
        if not self._dataset.is_missing(obj, attr):
            raise ValueError("cell (%d, %d) is not missing" % (obj, attr))
        evidence = self._dataset.observed_evidence(obj)
        key = (attr, tuple(sorted(evidence.items())))
        cached = self._cache.get(key)
        if cached is None:
            cached = self._network.posterior(attr, evidence)
            self._cache[key] = cached
        return cached.copy()

    def precompute_all(self) -> Tuple[List[Variable], np.ndarray]:
        """Posterior pmfs of every missing cell, one inference per signature.

        Objects sharing an *observed-evidence signature* (identical value
        rows, missing cells included) have identical posteriors for every
        missing attribute, and all missing attributes of one signature
        share their evidence restriction.  Rows with missing cells are
        therefore grouped by ``np.unique(..., axis=0)`` and each unique
        signature is pushed once through
        :meth:`BayesianNetwork.posterior_multi` -- replacing the historical
        per-cell inference loop with one bulk pass per signature.

        Returns ``(variables, dense)``: the dataset's missing cells in
        :meth:`IncompleteDataset.variables` order and a
        ``(n_variables, max_domain)`` float array whose row ``i`` holds the
        pmf of ``variables[i]``, zero-padded past the attribute's domain
        (ready to feed :class:`DistributionStore` construction).  Each pmf
        is identical to a per-cell :meth:`distribution` call.

        ``self.stats`` records ``signature_groups`` (unique signatures),
        ``cells`` (missing cells served) and ``inference_calls``
        (posterior eliminations actually run).
        """
        dataset = self._dataset
        variables = list(dataset.variables())
        max_domain = max(dataset.domain_sizes) if dataset.domain_sizes else 0
        dense = np.zeros((len(variables), max_domain))
        if not variables:
            self.stats = {"signature_groups": 0, "cells": 0, "inference_calls": 0}
            return variables, dense

        rows = sorted({obj for obj, __ in variables})
        signatures, inverse = np.unique(
            dataset.values[rows], axis=0, return_inverse=True
        )
        inference_calls = 0
        group_pmfs: List[Dict[int, np.ndarray]] = []
        for signature in signatures:
            cells = signature.tolist()
            evidence = {j: int(v) for j, v in enumerate(cells) if v != MISSING}
            targets = [j for j, v in enumerate(cells) if v == MISSING]
            pmfs = self._network.posterior_multi(targets, evidence)
            inference_calls += len(targets)
            group_pmfs.append(dict(zip(targets, pmfs)))
        group_of_row = {obj: int(inverse[i]) for i, obj in enumerate(rows)}
        for i, (obj, attr) in enumerate(variables):
            pmf = group_pmfs[group_of_row[obj]][attr]
            dense[i, : pmf.size] = pmf
        self.stats = {
            "signature_groups": len(signatures),
            "cells": len(variables),
            "inference_calls": inference_calls,
        }
        return variables, dense

    def all_distributions(self) -> Dict[Variable, np.ndarray]:
        """Posteriors for every missing cell of the dataset (bulk path)."""
        variables, dense = self.precompute_all()
        sizes = self._dataset.domain_sizes
        return {
            (obj, attr): dense[i, : sizes[attr]].copy()
            for i, (obj, attr) in enumerate(variables)
        }


def uniform_distributions(dataset: IncompleteDataset) -> Dict[Variable, np.ndarray]:
    """Zero-knowledge fallback: uniform pmf over each attribute domain.

    Matches the paper's baseline assumption that "there is no prior
    knowledge on the missing values"; used when no Bayesian network is
    supplied (and by tests that need deterministic distributions).
    """
    out: Dict[Variable, np.ndarray] = {}
    for variable in dataset.variables():
        __, attr = variable
        size = dataset.domain_sizes[attr]
        out[variable] = np.full(size, 1.0 / size)
    return out


def empirical_distributions(
    dataset: IncompleteDataset, smoothing: float = 1.0
) -> Dict[Variable, np.ndarray]:
    """Column-marginal distributions estimated from observed values.

    A middle ground between uniform and full BN posteriors: each variable's
    pmf is the smoothed empirical distribution of its attribute's observed
    values (no cross-attribute correlation).
    """
    pmfs = []
    for j, size in enumerate(dataset.domain_sizes):
        column = dataset.values[:, j]
        observed = column[column >= 0]
        counts = np.bincount(observed, minlength=size).astype(np.float64)
        counts += smoothing
        pmfs.append(counts / counts.sum())
    out: Dict[Variable, np.ndarray] = {}
    for variable in dataset.variables():
        __, attr = variable
        out[variable] = pmfs[attr].copy()
    return out
