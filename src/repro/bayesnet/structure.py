"""Bayesian network structure learning by greedy hill climbing with BIC.

This is the stand-in for the Banjo framework used in the paper's
implementation.  Banjo searches DAG space with greedy / simulated
annealing moves scored by a Bayesian metric; we implement the greedy
variant with the decomposable BIC score:

    BIC(G) = sum_v [ LL(v | Pa(v)) - (log N / 2) * free_params(v) ]

Because the score decomposes over families, each move (add / remove /
reverse an edge) only re-scores the affected child nodes, and family
scores are memoized across the whole search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

import numpy as np

from .dag import DAG
from .parameters import family_sample_size, log_likelihood


@dataclass
class StructureSearchResult:
    """Outcome of a hill-climbing run."""

    dag: DAG
    score: float
    iterations: int
    moves_applied: int


class _FamilyScoreCache:
    """Memoizes BIC family scores keyed by (node, parent-set).

    With a missingness mask, families are scored on their available-case
    rows and the BIC penalty uses the per-family sample size.
    """

    def __init__(
        self,
        data: np.ndarray,
        cardinalities: Sequence[int],
        mask: Optional[np.ndarray] = None,
    ) -> None:
        self._data = data
        self._mask = mask
        self._cards = list(int(c) for c in cardinalities)
        self._cache: Dict[Tuple[int, FrozenSet[int]], float] = {}

    def family_score(self, node: int, parents: FrozenSet[int]) -> float:
        key = (node, parents)
        if key in self._cache:
            return self._cache[key]
        parent_list = sorted(parents)
        ll = log_likelihood(self._data, node, parent_list, self._cards, mask=self._mask)
        free = (self._cards[node] - 1) * int(
            np.prod([self._cards[p] for p in parent_list]) if parent_list else 1
        )
        n = max(family_sample_size(self._data, parent_list + [node], self._mask), 1)
        if self._mask is not None and parent_list and n < max(30, 2 * free):
            # Available-case guard: a family observed on a handful of rows
            # can show spuriously high likelihood; refuse the edge outright.
            score = float("-inf")
        else:
            score = ll - 0.5 * math.log(n) * free
        self._cache[key] = score
        return score


def bic_score(
    data: np.ndarray,
    dag: DAG,
    cardinalities: Sequence[int],
    mask: Optional[np.ndarray] = None,
) -> float:
    """Total BIC score of a DAG (available-case when ``mask`` is given)."""
    cache = _FamilyScoreCache(np.asarray(data, dtype=np.int64), cardinalities, mask)
    return sum(
        cache.family_score(node, dag.parents(node)) for node in range(dag.n_nodes)
    )


def hill_climb(
    data: np.ndarray,
    cardinalities: Sequence[int],
    max_parents: int = 3,
    max_iterations: int = 200,
    initial: Optional[DAG] = None,
    rng: Optional[np.random.Generator] = None,
    mask: Optional[np.ndarray] = None,
) -> StructureSearchResult:
    """Greedy hill climbing over add / remove / reverse edge moves.

    At each iteration the single best-improving move is applied; the search
    stops at a local optimum or after ``max_iterations`` moves.  ``rng``
    only shuffles tie-breaking order so repeated runs are reproducible.
    """
    data = np.asarray(data, dtype=np.int64)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D matrix")
    n_nodes = data.shape[1]
    if len(cardinalities) != n_nodes:
        raise ValueError("cardinalities length mismatch")
    if max_parents < 0:
        raise ValueError("max_parents must be non-negative")

    rng = rng or np.random.default_rng(0)
    dag = initial.copy() if initial is not None else DAG(n_nodes)
    cache = _FamilyScoreCache(data, cardinalities, mask)

    family = {node: cache.family_score(node, dag.parents(node)) for node in range(n_nodes)}
    iterations = 0
    moves = 0
    for iterations in range(1, max_iterations + 1):
        best_gain = 1e-9  # require strictly positive improvement
        best_move: Optional[Tuple[str, int, int]] = None
        pairs = [(u, v) for u in range(n_nodes) for v in range(n_nodes) if u != v]
        rng.shuffle(pairs)

        for u, v in pairs:
            if dag.has_edge(u, v):
                # remove u -> v
                gain = cache.family_score(v, dag.parents(v) - {u}) - family[v]
                if gain > best_gain:
                    best_gain, best_move = gain, ("remove", u, v)
                # reverse u -> v (v becomes parent of u)
                if len(dag.parents(u)) < max_parents and dag.can_reverse_edge(u, v):
                    gain = (
                        cache.family_score(v, dag.parents(v) - {u})
                        - family[v]
                        + cache.family_score(u, dag.parents(u) | {v})
                        - family[u]
                    )
                    if gain > best_gain:
                        best_gain, best_move = gain, ("reverse", u, v)
            else:
                # add u -> v
                if len(dag.parents(v)) >= max_parents:
                    continue
                if not dag.can_add_edge(u, v):
                    continue
                gain = cache.family_score(v, dag.parents(v) | {u}) - family[v]
                if gain > best_gain:
                    best_gain, best_move = gain, ("add", u, v)

        if best_move is None:
            break
        kind, u, v = best_move
        if kind == "add":
            dag.add_edge(u, v)
            family[v] = cache.family_score(v, dag.parents(v))
        elif kind == "remove":
            dag.remove_edge(u, v)
            family[v] = cache.family_score(v, dag.parents(v))
        else:
            dag.reverse_edge(u, v)
            family[v] = cache.family_score(v, dag.parents(v))
            family[u] = cache.family_score(u, dag.parents(u))
        moves += 1

    return StructureSearchResult(
        dag=dag,
        score=sum(family.values()),
        iterations=iterations,
        moves_applied=moves,
    )
