"""Discrete Bayesian network substrate (replaces Banjo + Infer.Net).

Structure learning (hill climbing, BIC), parameter fitting (smoothed MLE),
exact inference (variable elimination), forward sampling, discretization
and the missing-value posterior service used by BayesCrowd preprocessing.
"""

from .cpt import CPT, random_cpt, uniform_cpt
from .dag import DAG, CycleError, dag_from_edges
from .discretize import Discretizer, discretize
from .inference import Factor, VariableElimination
from .network import BayesianNetwork
from .parameters import fit_cpt, log_likelihood
from .posteriors import (
    MissingValuePosteriors,
    empirical_distributions,
    uniform_distributions,
)
from .structure import StructureSearchResult, bic_score, hill_climb

__all__ = [
    "CPT",
    "random_cpt",
    "uniform_cpt",
    "DAG",
    "CycleError",
    "dag_from_edges",
    "Discretizer",
    "discretize",
    "Factor",
    "VariableElimination",
    "BayesianNetwork",
    "fit_cpt",
    "log_likelihood",
    "MissingValuePosteriors",
    "uniform_distributions",
    "empirical_distributions",
    "StructureSearchResult",
    "bic_score",
    "hill_climb",
]
