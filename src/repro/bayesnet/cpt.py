"""Conditional probability tables for discrete Bayesian networks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class CPT:
    """``P(node | parents)`` as a dense table.

    ``table`` has shape ``(*parent_cards, card)``: the first axes index the
    parent configuration (in ``parents`` order) and the last axis is the
    node's own value.  Every parent-configuration slice sums to one.
    """

    node: int
    parents: Tuple[int, ...]
    table: np.ndarray

    def __post_init__(self) -> None:
        table = np.asarray(self.table, dtype=np.float64)
        object.__setattr__(self, "table", table)
        if table.ndim != len(self.parents) + 1:
            raise ValueError(
                "table rank %d does not match %d parents"
                % (table.ndim, len(self.parents))
            )
        if (table < 0).any():
            raise ValueError("CPT entries must be non-negative")
        sums = table.sum(axis=-1)
        if not np.allclose(sums, 1.0, atol=1e-8):
            raise ValueError("every parent configuration must sum to 1")

    @property
    def cardinality(self) -> int:
        return int(self.table.shape[-1])

    def parent_cards(self) -> Tuple[int, ...]:
        return tuple(int(s) for s in self.table.shape[:-1])

    def probability(self, value: int, parent_values: Dict[int, int]) -> float:
        """``P(node = value | parents = parent_values)``."""
        index = tuple(parent_values[p] for p in self.parents) + (value,)
        return float(self.table[index])

    def distribution(self, parent_values: Dict[int, int]) -> np.ndarray:
        """The conditional pmf of the node for one parent configuration."""
        index = tuple(parent_values[p] for p in self.parents)
        return self.table[index].copy()


def uniform_cpt(node: int, cardinality: int, parents: Sequence[int] = (),
                parent_cards: Sequence[int] = ()) -> CPT:
    """A CPT assigning equal mass to every node value."""
    parents = tuple(parents)
    parent_cards = tuple(parent_cards)
    if len(parents) != len(parent_cards):
        raise ValueError("parents and parent_cards must align")
    shape = parent_cards + (cardinality,)
    table = np.full(shape, 1.0 / cardinality)
    return CPT(node=node, parents=parents, table=table)


def random_cpt(
    node: int,
    cardinality: int,
    parents: Sequence[int],
    parent_cards: Sequence[int],
    rng: np.random.Generator,
    concentration: float = 1.0,
) -> CPT:
    """Dirichlet-random CPT (used by synthetic data generators).

    Lower ``concentration`` yields more deterministic (skewed) conditionals,
    i.e. stronger attribute correlation in the sampled data.
    """
    parents = tuple(parents)
    parent_cards = tuple(parent_cards)
    shape = parent_cards + (cardinality,)
    flat_rows = int(np.prod(parent_cards)) if parent_cards else 1
    rows = rng.dirichlet(np.full(cardinality, concentration), size=flat_rows)
    return CPT(node=node, parents=parents, table=rows.reshape(shape))
