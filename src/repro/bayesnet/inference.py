"""Exact inference by variable elimination.

Used in the preprocessing step to learn "the probability distributions of
missing values leveraging Bayes rules" (Section 3): for each object, the
posterior of every missing attribute given the object's observed
attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class Factor:
    """A non-negative table over a tuple of variables (attribute indices)."""

    variables: Tuple[int, ...]
    table: np.ndarray

    def __post_init__(self) -> None:
        self.table = np.asarray(self.table, dtype=np.float64)
        if self.table.ndim != len(self.variables):
            raise ValueError("factor rank does not match its scope")

    def restrict(self, variable: int, value: int) -> "Factor":
        """Condition on ``variable = value``, dropping it from the scope."""
        axis = self.variables.index(variable)
        new_vars = self.variables[:axis] + self.variables[axis + 1 :]
        new_table = np.take(self.table, value, axis=axis)
        return Factor(new_vars, new_table)

    def multiply(self, other: "Factor") -> "Factor":
        """Pointwise product over the union scope (broadcasted)."""
        merged = list(self.variables)
        for v in other.variables:
            if v not in merged:
                merged.append(v)
        merged_tuple = tuple(merged)
        left = _broadcast(self, merged_tuple)
        right = _broadcast(other, merged_tuple)
        return Factor(merged_tuple, left * right)

    def marginalize(self, variable: int) -> "Factor":
        """Sum out one variable."""
        axis = self.variables.index(variable)
        new_vars = self.variables[:axis] + self.variables[axis + 1 :]
        return Factor(new_vars, self.table.sum(axis=axis))


def _broadcast(factor: Factor, scope: Tuple[int, ...]) -> np.ndarray:
    """Expand a factor table to a larger scope for multiplication."""
    source_axes = [scope.index(v) for v in factor.variables]
    full_shape = [1] * len(scope)
    for axis, size in zip(source_axes, factor.table.shape):
        full_shape[axis] = size
    # Permute the factor's axes into ascending scope order, then pad with 1s.
    order = np.argsort(source_axes)
    permuted = np.transpose(factor.table, axes=order)
    return permuted.reshape(full_shape)


class VariableElimination:
    """Exact marginal queries against a set of CPT-derived factors."""

    def __init__(self, factors: Sequence[Factor], cardinalities: Sequence[int]) -> None:
        self._factors = list(factors)
        self._cards = list(int(c) for c in cardinalities)

    def query(self, target: int, evidence: Dict[int, int]) -> np.ndarray:
        """Posterior pmf ``P(target | evidence)``.

        Falls back to the prior-shaped distribution when the evidence has
        zero probability under the model (cannot happen with smoothed CPTs).
        """
        return self.query_multi([target], evidence)[0]

    def query_multi(
        self, targets: Sequence[int], evidence: Dict[int, int]
    ) -> List[np.ndarray]:
        """Posterior pmfs of several targets under one shared evidence set.

        Restricting every factor against the evidence -- the part of a
        query whose cost scales with the evidence size -- happens once for
        the whole target list.  This is the bulk entry point behind
        :meth:`MissingValuePosteriors.precompute_all`, where all missing
        attributes of one observed-row signature share their evidence.
        """
        restricted: List[Factor] = []
        for factor in self._factors:
            current = factor
            for variable, value in evidence.items():
                if variable in current.variables:
                    current = current.restrict(variable, value)
            restricted.append(current)
        out: List[np.ndarray] = []
        for target in targets:
            if target in evidence:
                point = np.zeros(self._cards[target])
                point[evidence[target]] = 1.0
                out.append(point)
            else:
                out.append(self._eliminate(restricted, target))
        return out

    def _eliminate(self, restricted: List[Factor], target: int) -> np.ndarray:
        """Sum out everything but ``target`` from evidence-restricted factors."""
        factors = list(restricted)
        hidden = set()
        for factor in factors:
            hidden.update(factor.variables)
        hidden.discard(target)

        for variable in self._elimination_order(factors, hidden, target):
            involved = [f for f in factors if variable in f.variables]
            if not involved:
                continue
            product = involved[0]
            for factor in involved[1:]:
                product = product.multiply(factor)
            summed = product.marginalize(variable)
            factors = [f for f in factors if variable not in f.variables]
            if summed.variables:
                factors.append(summed)
            else:
                factors.append(Factor((), summed.table))

        result = Factor((target,), np.ones(self._cards[target]))
        for factor in factors:
            if factor.variables == ():
                result = Factor(result.variables, result.table * float(factor.table))
            else:
                result = result.multiply(factor)
        table = result.table.reshape(self._cards[target])
        total = table.sum()
        if total <= 0:
            return np.full(self._cards[target], 1.0 / self._cards[target])
        return table / total

    def _elimination_order(self, factors, hidden, target) -> List[int]:
        """Min-degree heuristic: eliminate the variable in the fewest factors first."""
        remaining = set(hidden)
        order: List[int] = []
        scopes = [set(f.variables) for f in factors]
        while remaining:
            best = min(
                remaining,
                key=lambda v: (sum(1 for s in scopes if v in s), v),
            )
            order.append(best)
            remaining.discard(best)
            merged = set()
            kept = []
            for scope in scopes:
                if best in scope:
                    merged |= scope - {best}
                else:
                    kept.append(scope)
            kept.append(merged)
            scopes = kept
        return order
