"""Answer aggregation: majority voting over redundant assignments.

"We use the majority voting strategy to get task answers, and each task
is assigned to three workers" (Section 7).  Three-way ties (all three
workers disagree) are broken uniformly at random among the voted options.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence

import numpy as np

from ..ctable.expression import Relation

#: Deprecated process-global fallback for callers that do not thread an
#: rng.  A module-level generator advances across calls, so repeated
#: no-rng ties are still random relative to each other -- but it is
#: *shared mutable state*: concurrent sessions interleave draws on it.
#: Inside an activated :class:`repro.session.SessionContext` the fallback
#: therefore resolves to a per-session stream instead (see
#: :func:`_resolve_fallback_rng`); this global only serves library-mode
#: callers outside any session and is kept for backward compatibility.
_fallback_rng = np.random.default_rng(0)


def _resolve_fallback_rng(stream: str = "crowd.aggregation") -> np.random.Generator:
    """Session-local fallback stream, or the deprecated process global."""
    from ..session.context import session_rng

    rng = session_rng(stream)
    if rng is not None:
        return rng
    return _fallback_rng


def vote_shares(answers: Sequence[Relation]) -> dict:
    """Fraction of votes behind each voted relation (sums to 1).

    The answer-integrity ledger records this as per-answer provenance: a
    3-0 majority and a 2-1 split aggregate to the same relation but carry
    very different evidence, which matters when arbitrating re-asks.
    """
    if not answers:
        raise ValueError("cannot summarize zero answers")
    counts = Counter(answers)
    total = len(answers)
    return {relation: count / total for relation, count in counts.items()}


def majority_vote(
    answers: Sequence[Relation],
    rng: Optional[np.random.Generator] = None,
) -> Relation:
    """The plurality answer, with random tie-breaking."""
    if not answers:
        raise ValueError("cannot aggregate zero answers")
    counts = Counter(answers)
    best = max(counts.values())
    winners: List[Relation] = sorted(
        (r for r, c in counts.items() if c == best), key=lambda r: r.value
    )
    if len(winners) == 1:
        return winners[0]
    if rng is None:
        rng = _resolve_fallback_rng()
    return winners[int(rng.integers(len(winners)))]
