"""Simulated crowdsourcing substrate: tasks, workers, platform, quality."""

from .aggregation import majority_vote, vote_shares
from .integrity import AnswerLedger, LedgerEntry
from .platform import (
    ConflictingBatchError,
    CrowdPlatform,
    CrowdStats,
    DuplicateTaskError,
    SimulatedCrowdPlatform,
)
from .quality import (
    WorkerReliability,
    estimate_worker_accuracies,
    filter_pool,
    make_weighted_aggregator,
    weighted_vote,
)
from .task import ComparisonTask
from .unreliable import FaultModel, UnreliableCrowdPlatform
from .worker import SimulatedWorker, WorkerPool

__all__ = [
    "majority_vote",
    "vote_shares",
    "AnswerLedger",
    "LedgerEntry",
    "ConflictingBatchError",
    "CrowdPlatform",
    "CrowdStats",
    "DuplicateTaskError",
    "FaultModel",
    "SimulatedCrowdPlatform",
    "UnreliableCrowdPlatform",
    "WorkerReliability",
    "estimate_worker_accuracies",
    "filter_pool",
    "make_weighted_aggregator",
    "weighted_vote",
    "ComparisonTask",
    "SimulatedWorker",
    "WorkerPool",
]
