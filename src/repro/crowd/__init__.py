"""Simulated crowdsourcing substrate: tasks, workers, platform, quality."""

from .aggregation import majority_vote
from .platform import ConflictingBatchError, CrowdStats, SimulatedCrowdPlatform
from .quality import (
    estimate_worker_accuracies,
    filter_pool,
    make_weighted_aggregator,
    weighted_vote,
)
from .task import ComparisonTask
from .worker import SimulatedWorker, WorkerPool

__all__ = [
    "majority_vote",
    "ConflictingBatchError",
    "CrowdStats",
    "SimulatedCrowdPlatform",
    "estimate_worker_accuracies",
    "filter_pool",
    "make_weighted_aggregator",
    "weighted_vote",
    "ComparisonTask",
    "SimulatedWorker",
    "WorkerPool",
]
