"""Simulated crowdsourcing substrate: tasks, workers, platform, quality."""

from .aggregation import majority_vote
from .platform import (
    ConflictingBatchError,
    CrowdPlatform,
    CrowdStats,
    DuplicateTaskError,
    SimulatedCrowdPlatform,
)
from .quality import (
    estimate_worker_accuracies,
    filter_pool,
    make_weighted_aggregator,
    weighted_vote,
)
from .task import ComparisonTask
from .unreliable import FaultModel, UnreliableCrowdPlatform
from .worker import SimulatedWorker, WorkerPool

__all__ = [
    "majority_vote",
    "ConflictingBatchError",
    "CrowdPlatform",
    "CrowdStats",
    "DuplicateTaskError",
    "FaultModel",
    "SimulatedCrowdPlatform",
    "UnreliableCrowdPlatform",
    "estimate_worker_accuracies",
    "filter_pool",
    "make_weighted_aggregator",
    "weighted_vote",
    "ComparisonTask",
    "SimulatedWorker",
    "WorkerPool",
]
