"""Fault injection: make any crowd platform behave like a real one.

The simulated platform is an oracle -- every posted task comes back
answered, synchronously, forever.  Real markets are nothing like that:
workers never pick tasks up, accept and abandon them, spam random
answers, the platform itself rate-limits or goes down, and some answers
arrive hours late.  :class:`UnreliableCrowdPlatform` wraps any
:class:`~repro.crowd.platform.CrowdPlatform` and injects exactly those
faults from a seeded RNG, so resilience behaviour is reproducible and
testable (chaos engineering for the crowdsourcing loop).

All fault knobs live in :class:`FaultModel`; a zero-valued model is a
transparent pass-through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ctable.expression import Relation
from ..errors import PlatformFatalError, PlatformTransientError, TaskExpiredError
from .platform import CrowdStats
from .task import ComparisonTask

_ALL_RELATIONS = (Relation.LESS, Relation.EQUAL, Relation.GREATER)


@dataclass(frozen=True)
class FaultModel:
    """Seeded, configurable fault rates of an unreliable crowd market."""

    #: per-task probability that nobody picks the task up (no answer)
    drop_rate: float = 0.0
    #: per-task probability that every assigned worker abstains (no answer)
    abstention_rate: float = 0.0
    #: per-task probability the answer comes from a spammer (uniform random)
    spam_fraction: float = 0.0
    #: per-attempt probability that posting the batch fails transiently
    transient_rate: float = 0.0
    #: deterministic schedule: every Nth post attempt fails transiently
    #: (0 disables; ``2`` fails attempts 2, 4, 6, ...)
    transient_every: int = 0
    #: post attempts from this one on fail fatally (0 disables)
    fatal_after: int = 0
    #: per-task probability the answer straggles in late
    straggler_rate: float = 0.0
    #: simulated extra latency charged per straggling task (seconds)
    straggler_seconds: float = 30.0
    #: a task posted more than this many times expires (0 = never)
    max_reposts: int = 0

    def __post_init__(self) -> None:
        for name in (
            "drop_rate",
            "abstention_rate",
            "spam_fraction",
            "transient_rate",
            "straggler_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError("%s must lie in [0, 1], got %r" % (name, value))
        if self.transient_every < 0:
            raise ValueError("transient_every must be non-negative")
        if self.fatal_after < 0:
            raise ValueError("fatal_after must be non-negative")
        if self.straggler_seconds < 0:
            raise ValueError("straggler_seconds must be non-negative")
        if self.max_reposts < 0:
            raise ValueError("max_reposts must be non-negative")

    def any_faults(self) -> bool:
        """True when at least one fault channel is active."""
        return (
            self.drop_rate > 0
            or self.abstention_rate > 0
            or self.spam_fraction > 0
            or self.transient_rate > 0
            or self.transient_every > 0
            or self.fatal_after > 0
            or self.straggler_rate > 0
            or self.max_reposts > 0
        )


class UnreliableCrowdPlatform:
    """Wrap a platform with seeded fault injection.

    Injected faults, in the order they apply to one ``post_batch`` call:

    1. scheduled/random **transient failures** raise
       :class:`PlatformTransientError` before anything is posted;
    2. a configured **fatal horizon** raises :class:`PlatformFatalError`;
    3. tasks over their **repost allowance** raise
       :class:`TaskExpiredError` carrying exactly the expired tasks;
    4. per answered task: **drop** (no-show), **abstention** (omit from
       the result), **spam** (replace with a uniform random relation)
       and **straggling** (charge simulated latency).

    Fault totals are accumulated on :attr:`stats` (the inner platform's
    :class:`CrowdStats` when it has one) so a single object carries both
    usage and fault accounting.
    """

    def __init__(
        self,
        inner,
        faults: Optional[FaultModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.inner = inner
        self.faults = faults or FaultModel()
        self._rng = rng or np.random.default_rng(0)
        self.stats: CrowdStats = getattr(inner, "stats", None) or CrowdStats()
        #: injected straggler latency accumulated so far (simulated seconds)
        self.simulated_wait_seconds = 0.0
        self._attempts = 0
        self._post_counts: Dict[int, int] = {}
        #: vote provenance of the latest delivered batch, mirroring the
        #: inner platform's but consistent with the injected faults:
        #: withheld tasks vanish, spammed tasks carry a synthetic spammer
        #: identity (negative worker id) so online reliability tracking
        #: can learn to distrust it.  Shadows the inner attribute.
        self.last_votes: Dict[int, List] = {}

    # ------------------------------------------------------------------
    def post_batch(self, tasks: Sequence[ComparisonTask]) -> Dict[ComparisonTask, Relation]:
        tasks = list(tasks)
        if not tasks:
            return {}
        faults = self.faults
        self._attempts += 1
        if faults.fatal_after and self._attempts >= faults.fatal_after:
            raise PlatformFatalError(
                "platform permanently unavailable (attempt %d)" % self._attempts
            )
        if faults.transient_every and self._attempts % faults.transient_every == 0:
            self.stats.transient_failures += 1
            raise PlatformTransientError(
                "scheduled transient failure (attempt %d)" % self._attempts
            )
        if faults.transient_rate and self._rng.random() < faults.transient_rate:
            self.stats.transient_failures += 1
            raise PlatformTransientError(
                "random transient failure (attempt %d)" % self._attempts
            )
        if faults.max_reposts:
            expired: List[ComparisonTask] = []
            for task in tasks:
                count = self._post_counts.get(task.task_id, 0) + 1
                self._post_counts[task.task_id] = count
                if count > faults.max_reposts:
                    expired.append(task)
            if expired:
                self.stats.tasks_expired += len(expired)
                raise TaskExpiredError(expired)

        answers = self.inner.post_batch(tasks)
        inner_votes = dict(getattr(self.inner, "last_votes", None) or {})
        delivered: Dict[ComparisonTask, Relation] = {}
        votes: Dict[int, List] = {}
        for task in tasks:
            relation = answers.get(task)
            if relation is None:
                continue  # the inner platform already withheld this one
            if faults.drop_rate and self._rng.random() < faults.drop_rate:
                self.stats.tasks_unanswered += 1
                continue
            if faults.abstention_rate and self._rng.random() < faults.abstention_rate:
                self.stats.tasks_unanswered += 1
                continue
            task_votes = inner_votes.get(task.task_id)
            if faults.spam_fraction and self._rng.random() < faults.spam_fraction:
                relation = _ALL_RELATIONS[int(self._rng.integers(3))]
                self.stats.spam_answers += 1
                # The spammer's single overriding vote replaces the honest
                # provenance.  Its identity is derived from the task id
                # (not the rng) so fault streams stay seed-stable.
                task_votes = [(-1 - (task.task_id % 3), relation)]
            if faults.straggler_rate and self._rng.random() < faults.straggler_rate:
                self.stats.stragglers += 1
                self.simulated_wait_seconds += faults.straggler_seconds
            if task_votes is not None:
                votes[task.task_id] = task_votes
            delivered[task] = relation
        self.last_votes = votes
        return delivered

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = {
            "rng": self._rng.bit_generator.state,
            "attempts": self._attempts,
            "post_counts": dict(self._post_counts),
            "simulated_wait_seconds": self.simulated_wait_seconds,
        }
        inner_state = getattr(self.inner, "state_dict", None)
        if callable(inner_state):
            state["inner"] = inner_state()
        return state

    def load_state_dict(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        self._attempts = int(state.get("attempts", 0))
        self._post_counts = {
            int(k): int(v) for k, v in state.get("post_counts", {}).items()
        }
        self.simulated_wait_seconds = float(state.get("simulated_wait_seconds", 0.0))
        if "inner" in state and hasattr(self.inner, "load_state_dict"):
            self.inner.load_state_dict(state["inner"])

    def __getattr__(self, name: str):
        # Delegate everything else (true_relation, task_log, ...) inward.
        return getattr(self.inner, name)
