"""Worker-quality estimation and confidence-weighted aggregation.

The paper leaves "the quality optimization problem on answering
incomplete data queries" as future work and notes that in practice one
"could select the workers whose accuracies being above one certain value"
(AMT supports such recruitment).  This module implements the standard
machinery behind both ideas:

* :func:`estimate_worker_accuracies` -- calibrate each worker against
  *gold tasks* (questions whose answer the requester already knows, e.g.
  comparisons between observed values that are presented as if unknown);
* :func:`weighted_vote` -- Dawid-Skene-style log-odds weighted voting,
  which beats plain majority voting when worker quality varies;
* :func:`filter_pool` -- drop workers below an accuracy bar;
* :class:`WorkerReliability` -- *online* per-worker accuracy estimation:
  a sequential Bayesian (Beta-Bernoulli) update from each worker's
  agreement with accepted majorities, generalizing the static gold-task
  calibration to run continuously during a crowd campaign.  Used by the
  answer-integrity layer (:mod:`repro.crowd.integrity`) to weight re-ask
  votes without spending extra gold questions.

All pieces plug into :class:`~repro.crowd.platform.SimulatedCrowdPlatform`
via its ``aggregator`` hook.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ctable.expression import Relation
from .aggregation import _resolve_fallback_rng
from .worker import SimulatedWorker, WorkerPool

#: number of wrong options in a triple-choice task
_N_WRONG = 2


def estimate_worker_accuracies(
    pool: WorkerPool,
    n_gold_questions: int = 20,
    rng: Optional[np.random.Generator] = None,
    smoothing: float = 1.0,
) -> Dict[int, float]:
    """Estimate each worker's accuracy from gold questions.

    Each worker answers ``n_gold_questions`` tasks with known ground-truth
    relations (drawn uniformly over the three options); the estimate is the
    Laplace-smoothed fraction answered correctly.
    """
    if n_gold_questions < 1:
        raise ValueError("n_gold_questions must be positive")
    rng = rng or np.random.default_rng(0)
    relations = (Relation.LESS, Relation.EQUAL, Relation.GREATER)
    estimates: Dict[int, float] = {}
    for worker in pool.workers:
        correct = 0
        for __ in range(n_gold_questions):
            truth = relations[int(rng.integers(3))]
            if worker.answer(truth) is truth:
                correct += 1
        estimates[worker.worker_id] = (correct + smoothing) / (
            n_gold_questions + 2 * smoothing
        )
    return estimates


def _log_odds(accuracy: float) -> float:
    """Log-odds weight of one worker for a 3-option task.

    Derived from the symmetric-confusion model: a worker answers correctly
    with probability ``a`` and picks either wrong option with probability
    ``(1 - a) / 2``.  Clipped away from 0 and 1 for stability.
    """
    a = min(max(accuracy, 1e-3), 1.0 - 1e-3)
    return math.log(a * _N_WRONG / (1.0 - a))


def weighted_vote(
    votes: Sequence[Tuple[int, Relation]],
    accuracies: Dict[int, float],
    rng: Optional[np.random.Generator] = None,
    default_accuracy: float = 0.75,
) -> Relation:
    """Pick the relation with the highest total log-odds weight.

    ``votes`` holds ``(worker_id, relation)`` pairs; workers missing from
    ``accuracies`` count with ``default_accuracy``.  Ties break uniformly.
    """
    if not votes:
        raise ValueError("cannot aggregate zero votes")
    scores: Dict[Relation, float] = {}
    for worker_id, relation in votes:
        weight = _log_odds(accuracies.get(worker_id, default_accuracy))
        scores[relation] = scores.get(relation, 0.0) + weight
    best = max(scores.values())
    winners = sorted((r for r, s in scores.items() if s >= best - 1e-12),
                     key=lambda r: r.value)
    if len(winners) == 1:
        return winners[0]
    if rng is None:
        # Session-local fallback stream when a session is active; the
        # deprecated process-global generator otherwise.  A fresh
        # default_rng(0) here would replay the identical tie-break on
        # every call.
        rng = _resolve_fallback_rng("crowd.quality")
    return winners[int(rng.integers(len(winners)))]


def make_weighted_aggregator(
    accuracies: Dict[int, float],
    rng: Optional[np.random.Generator] = None,
):
    """An ``aggregator`` callable for the simulated platform."""
    def aggregate(votes: Sequence[Tuple[SimulatedWorker, Relation]]) -> Relation:
        pairs = [(worker.worker_id, relation) for worker, relation in votes]
        return weighted_vote(pairs, accuracies, rng=rng)

    return aggregate


#: Default Beta prior over worker accuracy: mean 0.8 (a mildly optimistic
#: crowd), pseudo-counts low enough that ~5 observations dominate it.
DEFAULT_RELIABILITY_PRIOR: Tuple[float, float] = (4.0, 1.0)


class WorkerReliability:
    """Online per-worker accuracy from agreement with accepted majorities.

    Each worker carries a Beta posterior over their accuracy, updated
    sequentially: agreeing with an answer the integrity layer *accepted*
    counts as a success, disagreeing as a failure.  The posterior mean is
    the running estimate, usable anywhere a gold-question estimate is
    (e.g. :func:`weighted_vote`).  Unseen workers report the prior mean.

    Accepted majorities are a noisy ground-truth proxy, so this is the
    standard EM-flavoured approximation (Dawid-Skene with hard labels);
    the prior keeps early estimates from collapsing on one disagreement.
    """

    def __init__(
        self, prior: Tuple[float, float] = DEFAULT_RELIABILITY_PRIOR
    ) -> None:
        alpha, beta = float(prior[0]), float(prior[1])
        if alpha <= 0.0 or beta <= 0.0:
            raise ValueError(
                "reliability prior needs positive pseudo-counts, got %r" % (prior,)
            )
        self.prior = (alpha, beta)
        #: worker -> [successes, failures] observed so far
        self._observed: Dict[int, List[float]] = {}

    @property
    def prior_mean(self) -> float:
        alpha, beta = self.prior
        return alpha / (alpha + beta)

    def observe(self, worker_id: int, agreed: bool) -> None:
        """Fold one agreement observation into the worker's posterior."""
        counts = self._observed.setdefault(int(worker_id), [0.0, 0.0])
        counts[0 if agreed else 1] += 1.0

    def observe_votes(
        self, votes: Sequence[Tuple[int, Relation]], accepted: Relation
    ) -> None:
        """Update every voter against the accepted aggregated answer."""
        for worker_id, relation in votes:
            self.observe(worker_id, relation is accepted)

    def accuracy(self, worker_id: int) -> float:
        """Posterior-mean accuracy of one worker (prior mean if unseen)."""
        counts = self._observed.get(int(worker_id))
        alpha, beta = self.prior
        if counts is None:
            return alpha / (alpha + beta)
        return (alpha + counts[0]) / (alpha + beta + counts[0] + counts[1])

    def n_observations(self, worker_id: int) -> int:
        counts = self._observed.get(int(worker_id))
        return int(counts[0] + counts[1]) if counts else 0

    def accuracies(self) -> Dict[int, float]:
        """Current estimate for every observed worker."""
        return {worker_id: self.accuracy(worker_id) for worker_id in self._observed}

    def n_workers(self) -> int:
        return len(self._observed)

    # -- checkpoint support --------------------------------------------
    def state_dict(self) -> dict:
        return {
            "prior": list(self.prior),
            "observed": {
                str(worker_id): list(counts)
                for worker_id, counts in self._observed.items()
            },
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "WorkerReliability":
        prior = state.get("prior", DEFAULT_RELIABILITY_PRIOR)
        tracker = cls(prior=(float(prior[0]), float(prior[1])))
        for worker_id, counts in state.get("observed", {}).items():
            tracker._observed[int(worker_id)] = [float(counts[0]), float(counts[1])]
        return tracker


def filter_pool(
    pool: WorkerPool,
    accuracies: Dict[int, float],
    minimum_accuracy: float,
    rng: Optional[np.random.Generator] = None,
) -> WorkerPool:
    """Recruit only workers whose estimated accuracy clears the bar.

    Falls back to the single best worker when nobody qualifies (a pool
    must never be empty).
    """
    kept: List[float] = [
        worker.accuracy
        for worker in pool.workers
        if accuracies.get(worker.worker_id, 0.0) >= minimum_accuracy
    ]
    if not kept:
        best = max(pool.workers, key=lambda w: accuracies.get(w.worker_id, 0.0))
        kept = [best.accuracy]
    return WorkerPool(kept, rng=rng or np.random.default_rng(0))
