"""Worker-quality estimation and confidence-weighted aggregation.

The paper leaves "the quality optimization problem on answering
incomplete data queries" as future work and notes that in practice one
"could select the workers whose accuracies being above one certain value"
(AMT supports such recruitment).  This module implements the standard
machinery behind both ideas:

* :func:`estimate_worker_accuracies` -- calibrate each worker against
  *gold tasks* (questions whose answer the requester already knows, e.g.
  comparisons between observed values that are presented as if unknown);
* :func:`weighted_vote` -- Dawid-Skene-style log-odds weighted voting,
  which beats plain majority voting when worker quality varies;
* :func:`filter_pool` -- drop workers below an accuracy bar.

All pieces plug into :class:`~repro.crowd.platform.SimulatedCrowdPlatform`
via its ``aggregator`` hook.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ctable.expression import Relation
from .aggregation import _fallback_rng
from .worker import SimulatedWorker, WorkerPool

#: number of wrong options in a triple-choice task
_N_WRONG = 2


def estimate_worker_accuracies(
    pool: WorkerPool,
    n_gold_questions: int = 20,
    rng: Optional[np.random.Generator] = None,
    smoothing: float = 1.0,
) -> Dict[int, float]:
    """Estimate each worker's accuracy from gold questions.

    Each worker answers ``n_gold_questions`` tasks with known ground-truth
    relations (drawn uniformly over the three options); the estimate is the
    Laplace-smoothed fraction answered correctly.
    """
    if n_gold_questions < 1:
        raise ValueError("n_gold_questions must be positive")
    rng = rng or np.random.default_rng(0)
    relations = (Relation.LESS, Relation.EQUAL, Relation.GREATER)
    estimates: Dict[int, float] = {}
    for worker in pool.workers:
        correct = 0
        for __ in range(n_gold_questions):
            truth = relations[int(rng.integers(3))]
            if worker.answer(truth) is truth:
                correct += 1
        estimates[worker.worker_id] = (correct + smoothing) / (
            n_gold_questions + 2 * smoothing
        )
    return estimates


def _log_odds(accuracy: float) -> float:
    """Log-odds weight of one worker for a 3-option task.

    Derived from the symmetric-confusion model: a worker answers correctly
    with probability ``a`` and picks either wrong option with probability
    ``(1 - a) / 2``.  Clipped away from 0 and 1 for stability.
    """
    a = min(max(accuracy, 1e-3), 1.0 - 1e-3)
    return math.log(a * _N_WRONG / (1.0 - a))


def weighted_vote(
    votes: Sequence[Tuple[int, Relation]],
    accuracies: Dict[int, float],
    rng: Optional[np.random.Generator] = None,
    default_accuracy: float = 0.75,
) -> Relation:
    """Pick the relation with the highest total log-odds weight.

    ``votes`` holds ``(worker_id, relation)`` pairs; workers missing from
    ``accuracies`` count with ``default_accuracy``.  Ties break uniformly.
    """
    if not votes:
        raise ValueError("cannot aggregate zero votes")
    scores: Dict[Relation, float] = {}
    for worker_id, relation in votes:
        weight = _log_odds(accuracies.get(worker_id, default_accuracy))
        scores[relation] = scores.get(relation, 0.0) + weight
    best = max(scores.values())
    winners = sorted((r for r, s in scores.items() if s >= best - 1e-12),
                     key=lambda r: r.value)
    if len(winners) == 1:
        return winners[0]
    if rng is None:
        # Shared module-level fallback: a fresh default_rng(0) here would
        # replay the identical tie-break on every call.
        rng = _fallback_rng
    return winners[int(rng.integers(len(winners)))]


def make_weighted_aggregator(
    accuracies: Dict[int, float],
    rng: Optional[np.random.Generator] = None,
):
    """An ``aggregator`` callable for the simulated platform."""
    def aggregate(votes: Sequence[Tuple[SimulatedWorker, Relation]]) -> Relation:
        pairs = [(worker.worker_id, relation) for worker, relation in votes]
        return weighted_vote(pairs, accuracies, rng=rng)

    return aggregate


def filter_pool(
    pool: WorkerPool,
    accuracies: Dict[int, float],
    minimum_accuracy: float,
    rng: Optional[np.random.Generator] = None,
) -> WorkerPool:
    """Recruit only workers whose estimated accuracy clears the bar.

    Falls back to the single best worker when nobody qualifies (a pool
    must never be empty).
    """
    kept: List[float] = [
        worker.accuracy
        for worker in pool.workers
        if accuracies.get(worker.worker_id, 0.0) >= minimum_accuracy
    ]
    if not kept:
        best = max(pool.workers, key=lambda w: accuracies.get(w.worker_id, 0.0))
        kept = [best.accuracy]
    return WorkerPool(kept, rng=rng or np.random.default_rng(0))
