"""Crowd tasks.

"A crowd task in this paper is a triple choice (i.e., larger/smaller
than, or equal to) to ask the relation of two operands in the inequality
of a condition" (Section 2).  A task therefore wraps one expression; the
object it was selected for is kept for bookkeeping only.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..ctable.expression import Expression

#: Process-global fallback counter, used only outside an active session.
#: It resets per process and interleaves across concurrent runs, so the
#: session layer replaces it: inside ``SessionContext.activate()`` new
#: tasks draw ids from the session's own resumable allocator instead.
_task_ids = itertools.count(1)


def _next_task_id() -> int:
    from ..session.context import current_session

    session = current_session()
    if session is not None:
        return session.task_ids.allocate()
    return next(_task_ids)


@dataclass(frozen=True)
class ComparisonTask:
    """One triple-choice question about an expression's operands."""

    expression: Expression
    for_object: Optional[int] = None
    task_id: int = field(default_factory=_next_task_id)
    #: task id of the quarantined original this task re-asks (None for a
    #: first ask); set by the integrity layer's bounded re-ask policy
    reask_of: Optional[int] = None

    def is_reask(self) -> bool:
        """Was this task issued to re-verify a quarantined answer?"""
        return self.reask_of is not None

    def question(self) -> str:
        return self.expression.question()

    def variables(self):
        """Variables touched by the task (for batch conflict checks)."""
        return self.expression.variables()

    def conflicts_with(self, other: "ComparisonTask") -> bool:
        """Two tasks conflict when they share a variable.

        "The crowd tasks in one iteration must avoid conflictions ...
        any pair of chosen tasks in one iteration does not share the same
        variable" (Section 6.1).
        """
        return bool(set(self.variables()) & set(other.variables()))

    def __str__(self) -> str:
        return "Task#%d[%s]" % (self.task_id, self.expression)
