"""Answer-integrity ledger: provenance, contradiction detection, quarantine.

The fault-tolerance layer (PR 1) made the crowd *platform* survivable,
but the pipeline still trusted every aggregated answer: a spam or
adversarial majority can write a contradictory resolution -- ``a < b``
and ``b < a`` through transitivity, or a re-answer that flips a decided
variable -- straight into the c-table, silently corrupting every
downstream ``Pr(phi(o))``.  Noisy-comparison skyline theory
(Mallmann-Trenn et al.) shows re-asking under learned error rates is the
principled fix; this module supplies the bookkeeping:

* :class:`AnswerLedger` -- an append-only ledger of every aggregated
  answer with per-variable provenance (round, task, worker votes);
* **contradiction detection** before an answer is applied: direct
  conflicts on the same variable and transitivity-cycle detection over
  the partial order implied by accepted ``<``/``=``/``>`` answers,
  delegated to :meth:`repro.ctable.constraints.VariableConstraints.conflict`
  (which already maintains the transitive closure of accepted answers);
* **quarantine** -- a conflicting answer is recorded charged-but-flagged
  and never applied; the framework's bounded re-ask policy re-posts the
  expression, weighting the new votes by the online
  :class:`~repro.crowd.quality.WorkerReliability` estimates.

The ledger maintains the accounting invariant checked by
``python -m repro.obs --integrity``::

    answers_quarantined + answers_applied == answers_aggregated
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..ctable.constraints import VariableConstraints
from ..ctable.expression import Expression, Relation

__all__ = ["LedgerEntry", "AnswerLedger", "CONFLICT_REASONS"]

#: Conflict taxonomy reported by the detector (see
#: :meth:`VariableConstraints.conflict` for the semantics of each).
CONFLICT_REASONS = ("direct", "cycle", "empty-domain", "bounds")

#: Ledger entry statuses.
STATUSES = ("applied", "quarantined")


@dataclass(frozen=True)
class LedgerEntry:
    """One aggregated crowd answer with its provenance and verdict."""

    #: position in the ledger (0-based, append order)
    seq: int
    expression: Expression
    relation: Relation
    #: ``"applied"`` (folded into the c-table) or ``"quarantined"``
    #: (charged-but-flagged, never applied)
    status: str
    #: conflict reason when the detector flagged this answer (an applied
    #: entry may carry a reason too: non-strict runs apply-but-flag)
    reason: Optional[str] = None
    #: crowdsourcing round the answer arrived in (0 = unknown)
    round_index: int = 0
    #: platform task id the answer came from
    task_id: Optional[int] = None
    #: raw worker votes ``(worker_id, Relation)`` behind the aggregation
    votes: Tuple = ()
    #: task id of the quarantined original, when this answer is a re-ask
    reask_of: Optional[int] = None

    def is_conflict(self) -> bool:
        return self.reason is not None

    def to_dict(self) -> dict:
        from ..persistence import expression_to_json

        return {
            "seq": self.seq,
            "expression": expression_to_json(self.expression),
            "relation": self.relation.value,
            "status": self.status,
            "reason": self.reason,
            "round": self.round_index,
            "task_id": self.task_id,
            "votes": [[wid, rel.value] for wid, rel in self.votes],
            "reask_of": self.reask_of,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LedgerEntry":
        from ..persistence import expression_from_json

        return cls(
            seq=int(data["seq"]),
            expression=expression_from_json(data["expression"]),
            relation=Relation(data["relation"]),
            status=str(data["status"]),
            reason=data.get("reason"),
            round_index=int(data.get("round", 0)),
            task_id=data.get("task_id"),
            votes=tuple(
                (int(wid), Relation(rel)) for wid, rel in data.get("votes", [])
            ),
            reask_of=data.get("reask_of"),
        )


class AnswerLedger:
    """Append-only ledger of aggregated answers with integrity checks.

    Two usage modes:

    * **attached** (the framework): constructed with the c-table's own
      :class:`VariableConstraints`, so :meth:`check` sees exactly the
      accepted answers -- the framework applies accepted answers through
      :meth:`CTable.apply_answer` itself;
    * **standalone** (tests, offline audits): constructed with
      ``domain_sizes``; :meth:`observe` then also applies accepted
      answers to the ledger's private constraint store.
    """

    def __init__(
        self,
        constraints: Optional[VariableConstraints] = None,
        domain_sizes: Optional[Sequence[int]] = None,
        inference_mode: str = "full",
    ) -> None:
        if constraints is None:
            if domain_sizes is None:
                raise ValueError(
                    "an AnswerLedger needs either a constraints store or "
                    "domain_sizes to build its own"
                )
            constraints = VariableConstraints(domain_sizes, mode=inference_mode)
            self._owns_constraints = True
        else:
            self._owns_constraints = False
        self.constraints = constraints
        self._entries: List[LedgerEntry] = []
        #: task ids already recorded (journal-replay dedupe)
        self._task_ids: set = set()
        #: re-ask attempts per expression (the bounded-re-ask bookkeeping)
        self._reask_attempts: Dict[Expression, int] = {}
        self.answers_applied = 0
        self.answers_quarantined = 0
        self.answers_reasked = 0
        self.contradictions_detected = 0
        self._conflicts_by_reason: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # core API
    # ------------------------------------------------------------------
    @property
    def answers_aggregated(self) -> int:
        """Every answer ever recorded (applied + quarantined)."""
        return len(self._entries)

    def check(self, expression: Expression, relation: Relation) -> Optional[str]:
        """Conflict reason against the accepted answers, or ``None``.

        Detects direct conflicts (the answer flips a variable the
        accepted answers already decide, directly or transitively) and
        transitivity cycles / emptied domains over the partial order of
        accepted ``<``/``=``/``>`` answers per attribute.
        """
        return self.constraints.conflict(expression, relation)

    def has_task(self, task_id: int) -> bool:
        """Is an answer for this task id already in the ledger?

        Journal replay uses this to make re-application idempotent: an
        answer whose task id is already recorded (because the checkpoint
        covered it, or a resumed round reproduced it) is a no-op.
        """
        return task_id in self._task_ids

    def observe(
        self,
        expression: Expression,
        relation: Relation,
        strict: bool = True,
        round_index: int = 0,
        task_id: Optional[int] = None,
        votes: Sequence[Tuple[int, Relation]] = (),
        reask_of: Optional[int] = None,
    ) -> LedgerEntry:
        """Check one aggregated answer and append its ledger entry.

        With ``strict=True`` a conflicting answer is quarantined (never
        applied); otherwise it is applied-but-flagged, preserving the
        historical trust-everything behaviour while still recording the
        contradiction.  In standalone mode accepted answers are folded
        into the ledger's own constraint store so later checks see them.
        """
        reason = self.check(expression, relation)
        status = "quarantined" if (reason is not None and strict) else "applied"
        entry = self.record(
            expression,
            relation,
            status=status,
            reason=reason,
            round_index=round_index,
            task_id=task_id,
            votes=votes,
            reask_of=reask_of,
        )
        if status == "applied" and self._owns_constraints:
            self.constraints.apply_answer(expression, relation)
        return entry

    def record(
        self,
        expression: Expression,
        relation: Relation,
        status: str,
        reason: Optional[str] = None,
        round_index: int = 0,
        task_id: Optional[int] = None,
        votes: Sequence[Tuple[int, Relation]] = (),
        reask_of: Optional[int] = None,
    ) -> LedgerEntry:
        """Append one entry (no checking, no application) and count it."""
        if status not in STATUSES:
            raise ValueError(
                "unknown ledger status %r; expected one of %r" % (status, STATUSES)
            )
        entry = LedgerEntry(
            seq=len(self._entries),
            expression=expression,
            relation=relation,
            status=status,
            reason=reason,
            round_index=round_index,
            task_id=task_id,
            votes=tuple(votes),
            reask_of=reask_of,
        )
        self._entries.append(entry)
        if task_id is not None:
            self._task_ids.add(task_id)
        if status == "applied":
            self.answers_applied += 1
        else:
            self.answers_quarantined += 1
        if reason is not None:
            self.contradictions_detected += 1
            self._conflicts_by_reason[reason] = (
                self._conflicts_by_reason.get(reason, 0) + 1
            )
        return entry

    # ------------------------------------------------------------------
    # re-ask bookkeeping
    # ------------------------------------------------------------------
    def reask_attempts(self, expression: Expression) -> int:
        return self._reask_attempts.get(expression, 0)

    def note_reask(self, expression: Expression) -> int:
        """Count one re-ask of an expression; returns the attempt number."""
        attempts = self._reask_attempts.get(expression, 0) + 1
        self._reask_attempts[expression] = attempts
        self.answers_reasked += 1
        return attempts

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def entries(self) -> List[LedgerEntry]:
        return list(self._entries)

    def quarantined(self) -> List[LedgerEntry]:
        return [e for e in self._entries if e.status == "quarantined"]

    def applied(self) -> List[LedgerEntry]:
        return [e for e in self._entries if e.status == "applied"]

    def accounting_ok(self) -> bool:
        """The invariant the obs verifier checks."""
        return (
            self.answers_quarantined + self.answers_applied
            == self.answers_aggregated
        )

    def summary(self) -> Dict[str, int]:
        """Flat integer counters (absorbable into a MetricsRegistry)."""
        out = {
            "answers_aggregated": self.answers_aggregated,
            "answers_applied": self.answers_applied,
            "answers_quarantined": self.answers_quarantined,
            "answers_reasked": self.answers_reasked,
            "contradictions_detected": self.contradictions_detected,
        }
        for reason in CONFLICT_REASONS:
            out["conflict_%s" % reason.replace("-", "_")] = (
                self._conflicts_by_reason.get(reason, 0)
            )
        return out

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self._entries)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot (constraints are *not* included:
        they are rebuilt by replaying the applied answers)."""
        from ..persistence import expression_to_json

        return {
            "entries": [entry.to_dict() for entry in self._entries],
            "reask_attempts": [
                [expression_to_json(expression), attempts]
                for expression, attempts in self._reask_attempts.items()
            ],
            "answers_reasked": self.answers_reasked,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore entries/counters recorded by :meth:`state_dict`.

        The constraint store is left untouched: in attached mode the
        framework replays the checkpoint's answer log through the
        c-table, which reconstructs the exact accepted-answer state.
        """
        from ..persistence import expression_from_json

        self._entries = [
            LedgerEntry.from_dict(entry) for entry in state.get("entries", [])
        ]
        self._task_ids = {
            e.task_id for e in self._entries if e.task_id is not None
        }
        self.answers_applied = sum(
            1 for e in self._entries if e.status == "applied"
        )
        self.answers_quarantined = sum(
            1 for e in self._entries if e.status == "quarantined"
        )
        self.contradictions_detected = sum(
            1 for e in self._entries if e.reason is not None
        )
        self._conflicts_by_reason = {}
        for entry in self._entries:
            if entry.reason is not None:
                self._conflicts_by_reason[entry.reason] = (
                    self._conflicts_by_reason.get(entry.reason, 0) + 1
                )
        self._reask_attempts = {
            expression_from_json(expression): int(attempts)
            for expression, attempts in state.get("reask_attempts", [])
        }
        self.answers_reasked = int(state.get("answers_reasked", 0))
