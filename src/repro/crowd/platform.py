"""Simulated crowdsourcing platform.

Plays the role of AMT / FigureEight in the paper's architecture: a
requester posts batches of triple-choice tasks; each task is assigned to
``assignments_per_task`` workers drawn from a pool; answers are majority
voted.  Ground truth comes from the dataset's held-out complete matrix,
which the query algorithms themselves never see.

The platform also does the money/latency accounting used throughout the
evaluation: the *monetary cost* is the number of posted tasks and the
*latency* the number of posted batches (rounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ctable.expression import Relation
from ..datasets.dataset import IncompleteDataset
from .aggregation import majority_vote
from .task import ComparisonTask
from .worker import WorkerPool


class ConflictingBatchError(ValueError):
    """A batch contained two tasks sharing a variable (Section 6.1)."""


@dataclass
class CrowdStats:
    """Running totals of crowd usage."""

    tasks_posted: int = 0
    rounds: int = 0
    worker_answers: int = 0
    correct_majorities: int = 0

    def majority_accuracy(self) -> float:
        if self.tasks_posted == 0:
            return 1.0
        return self.correct_majorities / self.tasks_posted


class SimulatedCrowdPlatform:
    """Answers comparison tasks from ground truth through noisy workers."""

    def __init__(
        self,
        dataset: IncompleteDataset,
        worker_pool: Optional[WorkerPool] = None,
        worker_accuracy: float = 1.0,
        assignments_per_task: int = 3,
        rng: Optional[np.random.Generator] = None,
        enforce_conflict_free: bool = True,
        aggregator=None,
    ) -> None:
        """``aggregator`` optionally replaces majority voting: a callable
        taking ``[(worker, relation), ...]`` and returning the aggregated
        :class:`Relation` (see :mod:`repro.crowd.quality`)."""
        if not dataset.has_ground_truth():
            raise ValueError("the simulated crowd needs the dataset's ground truth")
        if assignments_per_task < 1:
            raise ValueError("assignments_per_task must be at least 1")
        self._dataset = dataset
        self._rng = rng or np.random.default_rng(0)
        self._pool = worker_pool or WorkerPool(worker_accuracy, rng=self._rng)
        self._assignments = assignments_per_task
        self._enforce_conflict_free = enforce_conflict_free
        self._aggregator = aggregator
        self.stats = CrowdStats()
        #: every task ever posted, in posting order (for post-hoc analysis)
        self.task_log: List["ComparisonTask"] = []

    # ------------------------------------------------------------------
    def true_relation(self, task: ComparisonTask) -> Relation:
        """Ground-truth relation of a task (what perfect workers answer)."""
        return task.expression.true_relation(self._dataset.complete)

    def post_batch(self, tasks: Sequence[ComparisonTask]) -> Dict[ComparisonTask, Relation]:
        """Post one round of tasks; returns the majority-voted answers.

        An empty batch is a no-op that does not consume a round.
        """
        tasks = list(tasks)
        if not tasks:
            return {}
        if self._enforce_conflict_free:
            self._check_conflicts(tasks)
        answers: Dict[ComparisonTask, Relation] = {}
        for task in tasks:
            truth = self.true_relation(task)
            pairs = [
                (worker, worker.answer(truth))
                for worker in self._pool.draw(self._assignments)
            ]
            if self._aggregator is not None:
                voted = self._aggregator(pairs)
            else:
                voted = majority_vote([r for __, r in pairs], rng=self._rng)
            answers[task] = voted
            self.stats.worker_answers += len(pairs)
            if voted is truth:
                self.stats.correct_majorities += 1
        self.stats.tasks_posted += len(tasks)
        self.stats.rounds += 1
        self.task_log.extend(tasks)
        return answers

    @staticmethod
    def _check_conflicts(tasks: Sequence[ComparisonTask]) -> None:
        seen: Dict[tuple, ComparisonTask] = {}
        for task in tasks:
            for variable in task.variables():
                other = seen.get(variable)
                if other is not None and other is not task:
                    raise ConflictingBatchError(
                        "tasks %s and %s share variable %s" % (other, task, variable)
                    )
                seen[variable] = task
