"""Crowd platform protocol and the simulated implementation.

Plays the role of AMT / FigureEight in the paper's architecture: a
requester posts batches of triple-choice tasks; each task is assigned to
``assignments_per_task`` workers drawn from a pool; answers are majority
voted.  Ground truth comes from the dataset's held-out complete matrix,
which the query algorithms themselves never see.

The platform also does the money/latency accounting used throughout the
evaluation: the *monetary cost* is the number of answered tasks and the
*latency* the number of posted batches (rounds).

The :class:`CrowdPlatform` protocol is the integration surface for real
markets.  Its contract is deliberately weaker than the oracle simulator:
``post_batch`` may return **partial** answers (tasks workers never picked
up, or all of whose workers abstained, are simply absent from the
returned dict) and may raise the typed errors of :mod:`repro.errors`
(transient outages, fatal failures, per-task expiry).  Callers must not
assume every posted task comes back answered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ctable.expression import Relation
from ..datasets.dataset import IncompleteDataset
from ..errors import ConflictingBatchError, DuplicateTaskError
from .aggregation import majority_vote
from .task import ComparisonTask
from .worker import WorkerPool

__all__ = [
    "ConflictingBatchError",
    "DuplicateTaskError",
    "CrowdPlatform",
    "CrowdStats",
    "SimulatedCrowdPlatform",
]

try:  # Protocol is typing-only; keep a graceful path for exotic runtimes
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@runtime_checkable
class CrowdPlatform(Protocol):
    """What :class:`repro.core.BayesCrowd` needs from a crowd market.

    Implementations may answer only a subset of the posted tasks (the
    partial-answer contract) and may raise
    :class:`repro.errors.PlatformTransientError`,
    :class:`repro.errors.PlatformFatalError` or
    :class:`repro.errors.TaskExpiredError`; the framework retries,
    degrades or refunds accordingly.
    """

    def post_batch(
        self, tasks: Sequence[ComparisonTask]
    ) -> Dict[ComparisonTask, Relation]:
        """Post one round of tasks; return answers for the answered subset."""
        ...  # pragma: no cover - protocol


@dataclass
class CrowdStats:
    """Running totals of crowd usage and observed faults."""

    tasks_posted: int = 0
    rounds: int = 0
    worker_answers: int = 0
    correct_majorities: int = 0
    #: posted tasks that came back without an answer (no-shows, abstentions)
    tasks_unanswered: int = 0
    #: tasks refused because they exceeded their repost allowance
    tasks_expired: int = 0
    #: batch posts that failed with a transient platform error
    transient_failures: int = 0
    #: answers produced (overwritten) by spamming workers
    spam_answers: int = 0
    #: tasks whose answers arrived only after injected straggler latency
    stragglers: int = 0

    def majority_accuracy(self) -> float:
        answered = self.tasks_posted - self.tasks_unanswered
        if answered <= 0:
            return 1.0
        return self.correct_majorities / answered


class SimulatedCrowdPlatform:
    """Answers comparison tasks from ground truth through noisy workers."""

    def __init__(
        self,
        dataset: IncompleteDataset,
        worker_pool: Optional[WorkerPool] = None,
        worker_accuracy: float = 1.0,
        assignments_per_task: int = 3,
        rng: Optional[np.random.Generator] = None,
        enforce_conflict_free: bool = True,
        aggregator=None,
    ) -> None:
        """``aggregator`` optionally replaces majority voting: a callable
        taking ``[(worker, relation), ...]`` and returning the aggregated
        :class:`Relation` (see :mod:`repro.crowd.quality`)."""
        if not dataset.has_ground_truth():
            raise ValueError("the simulated crowd needs the dataset's ground truth")
        if assignments_per_task < 1:
            raise ValueError("assignments_per_task must be at least 1")
        self._dataset = dataset
        self._rng = rng or np.random.default_rng(0)
        self._pool = worker_pool or WorkerPool(worker_accuracy, rng=self._rng)
        self._assignments = assignments_per_task
        self._enforce_conflict_free = enforce_conflict_free
        self._aggregator = aggregator
        self.stats = CrowdStats()
        #: every task ever posted, in posting order (for post-hoc analysis)
        self.task_log: List["ComparisonTask"] = []
        #: per-task worker votes of the *latest* batch, keyed by task id:
        #: ``{task_id: [(worker_id, Relation), ...]}``.  Overwritten on
        #: every post; the answer-integrity layer reads it to attribute
        #: provenance and run online reliability updates.
        self.last_votes: Dict[int, List] = {}

    # ------------------------------------------------------------------
    def true_relation(self, task: ComparisonTask) -> Relation:
        """Ground-truth relation of a task (what perfect workers answer)."""
        return task.expression.true_relation(self._dataset.complete)

    def post_batch(self, tasks: Sequence[ComparisonTask]) -> Dict[ComparisonTask, Relation]:
        """Post one round of tasks; returns the majority-voted answers.

        An empty batch is a no-op that does not consume a round.  Tasks
        all of whose assigned workers abstained are absent from the
        returned dict (the partial-answer contract).
        """
        tasks = list(tasks)
        if not tasks:
            return {}
        self._check_duplicates(tasks)
        if self._enforce_conflict_free:
            self._check_conflicts(tasks)
        answers: Dict[ComparisonTask, Relation] = {}
        self.last_votes = {}
        for task in tasks:
            truth = self.true_relation(task)
            pairs = [
                (worker, worker.answer(truth))
                for worker in self._pool.draw(self._assignments)
            ]
            voted_pairs = [(w, r) for w, r in pairs if r is not None]
            self.stats.worker_answers += len(voted_pairs)
            if not voted_pairs:
                self.stats.tasks_unanswered += 1
                continue
            self.last_votes[task.task_id] = [
                (worker.worker_id, relation) for worker, relation in voted_pairs
            ]
            if self._aggregator is not None:
                voted = self._aggregator(voted_pairs)
            else:
                voted = majority_vote([r for __, r in voted_pairs], rng=self._rng)
            answers[task] = voted
            if voted is truth:
                self.stats.correct_majorities += 1
        self.stats.tasks_posted += len(tasks)
        self.stats.rounds += 1
        self.task_log.extend(tasks)
        return answers

    @staticmethod
    def _check_duplicates(tasks: Sequence[ComparisonTask]) -> None:
        seen: set = set()
        for task in tasks:
            if task.task_id in seen:
                raise DuplicateTaskError(
                    "task %s appears more than once in one batch" % task
                )
            seen.add(task.task_id)

    @staticmethod
    def _check_conflicts(tasks: Sequence[ComparisonTask]) -> None:
        seen: Dict[tuple, ComparisonTask] = {}
        for task in tasks:
            for variable in task.variables():
                other = seen.get(variable)
                if other is not None and other is not task:
                    raise ConflictingBatchError(
                        "tasks %s and %s share variable %s" % (other, task, variable)
                    )
                seen[variable] = task

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the platform's evolving state.

        Restoring it replays the RNG stream exactly, so a resumed run
        sees the same worker draws and noise as an uninterrupted one.
        """
        from dataclasses import asdict

        return {"rng": self._rng.bit_generator.state, "stats": asdict(self.stats)}

    def load_state_dict(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        for key, value in state.get("stats", {}).items():
            if hasattr(self.stats, key):
                setattr(self.stats, key, value)
