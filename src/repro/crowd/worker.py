"""Simulated crowd workers.

A worker with accuracy ``w`` "returns a correct answer with the
confidence ``w``" (Section 7); an incorrect worker picks uniformly among
the two wrong options of the triple choice.  The paper's default is
perfect workers (``w = 1.0``) so worker noise never confounds the other
factors; Figure 9 sweeps ``w`` from 0.7 to 1.0.

Real workers also *abstain*: they accept an assignment and never submit
(the dominant failure mode on AMT).  ``abstain_rate`` models this; an
abstaining worker contributes no vote, and a task all of whose workers
abstained comes back unanswered (the platform's partial-answer
contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..ctable.expression import Relation

_ALL_RELATIONS = (Relation.LESS, Relation.EQUAL, Relation.GREATER)


@dataclass
class SimulatedWorker:
    """One worker identity with a fixed accuracy."""

    worker_id: int
    accuracy: float
    rng: np.random.Generator
    #: probability the worker never submits an accepted assignment
    abstain_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError("accuracy must lie in [0, 1]")
        if not 0.0 <= self.abstain_rate <= 1.0:
            raise ValueError("abstain_rate must lie in [0, 1]")

    def answer(self, true_relation: Relation) -> Optional[Relation]:
        """Answer a triple-choice task given its ground-truth relation.

        Returns ``None`` when the worker abstains (no vote submitted).
        """
        if self.abstain_rate > 0.0 and self.rng.random() < self.abstain_rate:
            return None
        if self.rng.random() < self.accuracy:
            return true_relation
        wrong = [r for r in _ALL_RELATIONS if r is not true_relation]
        return wrong[int(self.rng.integers(len(wrong)))]


class WorkerPool:
    """A pool of workers tasks are assigned from.

    ``accuracies`` may be a single float (homogeneous pool, the paper's
    setting) or a list of per-worker accuracies (used by the simulated
    "live AMT" experiment, where worker quality varies).
    """

    def __init__(
        self,
        accuracies,
        rng: Optional[np.random.Generator] = None,
        size: int = 30,
        abstain_rate: float = 0.0,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        if np.isscalar(accuracies):
            accuracies = [float(accuracies)] * size
        self.workers: List[SimulatedWorker] = [
            SimulatedWorker(
                worker_id=i, accuracy=float(a), rng=rng, abstain_rate=abstain_rate
            )
            for i, a in enumerate(accuracies)
        ]
        if not self.workers:
            raise ValueError("a worker pool needs at least one worker")
        self._rng = rng

    def draw(self, n: int) -> List[SimulatedWorker]:
        """Pick ``n`` distinct workers (with replacement if the pool is small)."""
        if n <= len(self.workers):
            indices = self._rng.choice(len(self.workers), size=n, replace=False)
        else:
            indices = self._rng.choice(len(self.workers), size=n, replace=True)
        return [self.workers[int(i)] for i in indices]

    def mean_accuracy(self) -> float:
        return float(np.mean([w.accuracy for w in self.workers]))
