"""k-skyband queries over incomplete data with crowdsourcing (extension).

The k-skyband contains every object dominated by fewer than ``k`` other
objects; the skyline is the 1-skyband.  This extension generalizes the
paper's machinery: per potential dominator the same CNF clause encodes
"p does not dominate o", and membership probability becomes a counting
problem -- ``Pr(#dominators < k)`` -- solved exactly by ADPLL-style
branching on shared variables plus a Poisson-binomial DP once the
dominance events are independent.
"""

from .algorithms import skyband
from .candidates import SkybandCandidate, build_skyband_candidates
from .probability import skyband_membership_probability
from .query import CrowdSkyband, SkybandConfig

__all__ = [
    "skyband",
    "SkybandCandidate",
    "build_skyband_candidates",
    "skyband_membership_probability",
    "CrowdSkyband",
    "SkybandConfig",
]
