"""Ground-truth k-skyband computation on complete data."""

from __future__ import annotations

from typing import List

import numpy as np


def skyband(values: np.ndarray, k: int) -> List[int]:
    """Indices of objects dominated by fewer than ``k`` others.

    ``skyband(values, 1)`` equals the skyline.  Quadratic reference
    implementation (ground truth for evaluation, not a hot path).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError("values must be a 2-D matrix")
    n = values.shape[0]
    members: List[int] = []
    for o in range(n):
        geq = (values >= values[o]).all(axis=1)
        gt = (values > values[o]).any(axis=1)
        dominated_by = geq & gt
        dominated_by[o] = False
        if int(dominated_by.sum()) < k:
            members.append(o)
    return members
