"""Crowd-assisted k-skyband query (extension of the BayesCrowd loop).

Mirrors the skyline framework: entropy-ranked candidate selection, one
conflict-free expression per chosen candidate (frequency order), batched
posting, answer propagation through the shared constraint store, result
inference by membership probability threshold.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.framework import learn_distributions
from ..core.config import BayesCrowdConfig
from ..core.result import QueryResult, RoundRecord
from ..core.utility import entropy
from ..crowd.platform import SimulatedCrowdPlatform
from ..crowd.task import ComparisonTask
from ..ctable.constraints import VariableConstraints
from ..ctable.expression import Expression
from ..datasets.dataset import IncompleteDataset, Variable
from ..probability.distributions import DistributionStore
from .candidates import SkybandCandidate, build_skyband_candidates
from .probability import skyband_membership_probability


@dataclass
class SkybandConfig:
    """Knobs of one crowd-assisted k-skyband query."""

    k: int = 2
    alpha: float = 0.05
    budget: int = 50
    latency: int = 5
    answer_threshold: float = 0.5
    distribution_source: str = "bayesnet"
    worker_accuracy: float = 1.0
    inference_mode: str = "full"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.budget < 0:
            raise ValueError("budget must be non-negative")
        if self.latency < 1:
            raise ValueError("latency must be at least one round")

    def tasks_per_round(self) -> int:
        if self.budget == 0:
            return 0
        return -(-self.budget // self.latency)


class CrowdSkyband:
    """One configured k-skyband query over one incomplete dataset."""

    def __init__(
        self,
        dataset: IncompleteDataset,
        config: Optional[SkybandConfig] = None,
        platform: Optional[SimulatedCrowdPlatform] = None,
        distributions: Optional[Dict[Variable, np.ndarray]] = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or SkybandConfig()
        if platform is None and dataset.has_ground_truth():
            platform = SimulatedCrowdPlatform(
                dataset,
                worker_accuracy=self.config.worker_accuracy,
                rng=np.random.default_rng(self.config.seed + 1),
            )
        self.platform = platform
        if distributions is None:
            proxy = BayesCrowdConfig(
                distribution_source=self.config.distribution_source,
                seed=self.config.seed,
            )
            distributions = learn_distributions(dataset, proxy)
        self.distributions = distributions
        self.candidates: Optional[Dict[int, SkybandCandidate]] = None
        self.constraints: Optional[VariableConstraints] = None

    # ------------------------------------------------------------------
    def _membership_probability(
        self, candidate: SkybandCandidate, store: DistributionStore
    ) -> float:
        if candidate.certainly_out:
            return 0.0
        if candidate.certainly_in:
            return 1.0
        return skyband_membership_probability(
            candidate.base_dominators,
            candidate.open_clauses,
            candidate.k,
            store,
        )

    def run(self) -> QueryResult:
        config = self.config
        start = time.perf_counter()
        candidates = build_skyband_candidates(
            self.dataset, config.k, alpha=config.alpha
        )
        modeling_seconds = time.perf_counter() - start
        constraints = VariableConstraints(
            self.dataset.domain_sizes, mode=config.inference_mode
        )
        store = DistributionStore(self.distributions, constraints)
        self.candidates = candidates
        self.constraints = constraints

        initial_answers = self._result_set(candidates, store)
        crowd_wait = 0.0
        budget = config.budget
        mu = config.tasks_per_round()
        history: List[RoundRecord] = []

        while budget > 0 and len(history) < config.latency:
            round_start = time.perf_counter()
            undecided = [c for c in candidates.values() if not c.decided]
            if not any(c.open_clauses for c in undecided):
                break
            ranked = sorted(
                undecided,
                key=lambda c: (
                    -entropy(self._membership_probability(c, store)),
                    c.obj,
                ),
            )
            k_tasks = min(budget, mu)
            banned: set = set()
            tasks: List[ComparisonTask] = []
            objects: List[int] = []
            frequencies = self._expression_frequencies(ranked[:k_tasks])
            for candidate in ranked:
                if len(tasks) >= k_tasks:
                    break
                expression = self._pick_expression(candidate, frequencies, banned)
                if expression is None:
                    continue
                banned.update(expression.variables())
                tasks.append(ComparisonTask(expression, for_object=candidate.obj))
                objects.append(candidate.obj)
            if not tasks:
                break
            if self.platform is None:
                raise RuntimeError("crowdsourcing needs a platform or ground truth")

            post_start = time.perf_counter()
            answers = self.platform.post_batch(tasks)
            crowd_wait += time.perf_counter() - post_start

            open_before = sum(1 for c in candidates.values() if not c.decided)
            touched: set = set()
            for task, relation in answers.items():
                touched |= constraints.apply_answer(task.expression, relation)
            for candidate in candidates.values():
                if not candidate.decided and (candidate.variables() & touched):
                    candidate.simplify_with(constraints.resolve)
            open_after = sum(1 for c in candidates.values() if not c.decided)
            budget -= len(tasks)
            history.append(
                RoundRecord(
                    round_index=len(history) + 1,
                    tasks_posted=len(tasks),
                    objects=objects,
                    newly_decided=open_before - open_after,
                    open_conditions=open_after,
                    seconds=time.perf_counter() - round_start,
                )
            )

        answers = self._result_set(candidates, store)
        certain = sorted(
            c.obj for c in candidates.values() if c.certainly_in
        )
        return QueryResult(
            answers=answers,
            certain_answers=certain,
            tasks_posted=sum(r.tasks_posted for r in history),
            rounds=len(history),
            seconds=time.perf_counter() - start - crowd_wait,
            modeling_seconds=modeling_seconds,
            history=history,
            initial_answers=initial_answers,
        )

    # ------------------------------------------------------------------
    def _result_set(self, candidates, store) -> List[int]:
        threshold = self.config.answer_threshold
        out = []
        for candidate in candidates.values():
            if self._membership_probability(candidate, store) > threshold:
                out.append(candidate.obj)
        return sorted(out)

    @staticmethod
    def _expression_frequencies(candidates: List[SkybandCandidate]) -> Counter:
        counts: Counter = Counter()
        for candidate in candidates:
            for clause in candidate.open_clauses:
                for expression in clause.expressions():
                    counts[expression] += 1
        return counts

    @staticmethod
    def _pick_expression(
        candidate: SkybandCandidate, frequencies: Counter, banned: set
    ) -> Optional[Expression]:
        best: Optional[Expression] = None
        best_rank = None
        for clause in candidate.open_clauses:
            for expression in clause.distinct_expressions():
                if banned.intersection(expression.variables()):
                    continue
                rank = (-frequencies[expression], expression.sort_key())
                if best_rank is None or rank < best_rank:
                    best_rank = rank
                    best = expression
        return best
