"""Exact k-skyband membership probability.

``Pr(o in k-skyband) = Pr(base + #failing clauses < k)`` where clause
``j`` failing means potential dominator ``j`` actually dominates ``o``.

Clauses may share variables (typically ``o``'s own missing attributes
appear in every clause).  The solver therefore branches ADPLL-style on
any variable occurring in more than one clause; once clauses are
pairwise variable-disjoint their failure events are independent and the
count distribution is Poisson-binomial, evaluated by the standard DP
truncated at ``k`` successes.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence

from ..ctable.condition import Condition
from ..probability.distributions import DistributionStore


def _poisson_binomial_below(failure_probs: Sequence[float], budget: int) -> float:
    """``Pr(X < budget)`` for X = sum of independent Bernoullis.

    ``budget <= 0`` gives 0; the DP state is truncated at ``budget``
    successes since anything beyond already fails the test.
    """
    if budget <= 0:
        return 0.0
    # state[j] = probability of exactly j successes so far (j < budget);
    # overflow mass is dropped because those outcomes cannot satisfy X < budget.
    state = [0.0] * budget
    state[0] = 1.0
    for q in failure_probs:
        nxt = [0.0] * budget
        keep = 1.0 - q
        for j, mass in enumerate(state):
            if mass == 0.0:
                continue
            nxt[j] += mass * keep
            if j + 1 < budget:
                nxt[j + 1] += mass * q
        state = nxt
    return float(sum(state))


def _shared_variable(clauses: Sequence[Condition]):
    """The most frequent variable with >1 expression occurrence, or None.

    Counts expression occurrences (not clause membership), so a variable
    repeated inside a single clause also forces branching -- the direct
    product rules need full pairwise independence.
    """
    counts: Counter = Counter()
    for clause in clauses:
        for count in clause.variable_counts().items():
            counts[count[0]] += count[1]
    shared = {v: c for v, c in counts.items() if c > 1}
    if not shared:
        return None
    return min(shared, key=lambda v: (-shared[v], v))


def skyband_membership_probability(
    base_dominators: int,
    clauses: Sequence[Condition],
    k: int,
    store: DistributionStore,
) -> float:
    """Exact ``Pr(base + #dominating < k)`` under the store's distributions."""
    if k < 1:
        raise ValueError("k must be at least 1")
    return _recurse(base_dominators, list(clauses), k, store)


def _recurse(
    base: int, clauses: List[Condition], k: int, store: DistributionStore
) -> float:
    if base >= k:
        return 0.0
    # Drop resolved clauses.
    open_clauses: List[Condition] = []
    for clause in clauses:
        if clause.is_true:
            continue  # that dominator is ruled out
        if clause.is_false:
            base += 1
            if base >= k:
                return 0.0
        else:
            open_clauses.append(clause)
    if base + len(open_clauses) < k:
        return 1.0  # certainly in, whatever happens
    variable = _shared_variable(open_clauses)
    if variable is None:
        # Independent events: clause j FAILS (dominator survives) with
        # probability 1 - Pr(clause).
        failures = [1.0 - _clause_probability(c, store) for c in open_clauses]
        return _poisson_binomial_below(failures, k - base)
    pmf = store.pmf(variable)
    total = 0.0
    for value in store.support(variable).tolist():
        weight = float(pmf[value])
        residual = [c.substitute(variable, int(value)) for c in open_clauses]
        total += weight * _recurse(base, residual, k, store)
    return total


def _clause_probability(clause: Condition, store: DistributionStore) -> float:
    """``Pr(single disjunctive clause)`` via the general disjunctive rule.

    The clause's expressions are variable-disjoint here (guaranteed by the
    branching above), so ``Pr(e1 v e2 v ...) = 1 - prod(1 - Pr(e))``.
    """
    none_true = 1.0
    for expression in clause.expressions():
        none_true *= 1.0 - store.prob_expression(expression)
    return 1.0 - none_true
