"""Skyband candidates: per-object dominance-event bookkeeping.

For the skyline, the c-table folds all dominator clauses into one CNF
condition.  For the k-skyband the clauses must stay separate, because
membership depends on *how many* of them fail: a candidate keeps

* ``base_dominators`` -- dominators already certain (clause resolved
  false, or decided at construction from fully-observed pairs),
* ``open_clauses``    -- one single-clause :class:`Condition` per
  still-undecided potential dominator ("o beats p somewhere").

A candidate is *certainly in* the k-skyband once even all open clauses
failing would keep the count below ``k``, and *certainly out* once
``base_dominators >= k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..ctable.condition import Condition, ExpressionResolver
from ..ctable.construction import _clause_for_pair
from ..ctable.dominators import dominator_sets
from ..datasets.dataset import IncompleteDataset


@dataclass
class SkybandCandidate:
    """Membership state of one object in the k-skyband query."""

    obj: int
    k: int
    base_dominators: int = 0
    open_clauses: List[Condition] = field(default_factory=list)

    @property
    def certainly_out(self) -> bool:
        return self.base_dominators >= self.k

    @property
    def certainly_in(self) -> bool:
        # Even if every open dominance event came true, the count would
        # still be below k.
        return self.base_dominators + len(self.open_clauses) < self.k

    @property
    def decided(self) -> bool:
        return self.certainly_out or self.certainly_in

    def simplify_with(self, resolver: ExpressionResolver) -> bool:
        """Re-simplify open clauses under new knowledge; True if changed.

        A clause turning true means that dominator is ruled out (dropped);
        turning false means one more certain dominator.
        """
        if not self.open_clauses:
            return False
        changed = False
        remaining: List[Condition] = []
        for clause in self.open_clauses:
            simplified = clause.simplify_with(resolver)
            if simplified is not clause:
                changed = True
            if simplified.is_true:
                continue  # p cannot dominate o
            if simplified.is_false:
                self.base_dominators += 1
                continue
            remaining.append(simplified)
        self.open_clauses = remaining
        if self.certainly_out:
            # Remaining clauses are irrelevant once membership is decided.
            if self.open_clauses:
                self.open_clauses = []
                changed = True
        return changed

    def variables(self):
        out = set()
        for clause in self.open_clauses:
            out |= clause.variables()
        return out


def build_skyband_candidates(
    dataset: IncompleteDataset,
    k: int,
    alpha: float = 1.0,
    dominator_method: str = "fast",
) -> Dict[int, SkybandCandidate]:
    """Construct every object's candidate (Get-CTable's clause machinery).

    ``alpha`` prunes like Algorithm 2, with the threshold adjusted for the
    skyband: objects whose potential-dominator count exceeds
    ``max(alpha * |O|, 2k)`` are declared out (their membership
    probability is negligible and their counting problem huge).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    sets = dominator_sets(dataset, method=dominator_method)
    n = dataset.n_objects
    limit = max(alpha * n, 2 * k)
    values = dataset.values
    mask = dataset.mask
    complete_object = ~mask.any(axis=1)
    candidates: Dict[int, SkybandCandidate] = {}

    for o in range(n):
        candidate = SkybandCandidate(obj=o, k=k)
        dominators = sets[o]
        if dominators.size > limit:
            candidate.base_dominators = k  # alpha-pruned: declared out
            candidates[o] = candidate
            continue
        for p in dominators.tolist():
            if (
                complete_object[o]
                and complete_object[p]
                and (values[p] >= values[o]).all()
                and (values[p] > values[o]).any()
            ):
                candidate.base_dominators += 1
                continue
            clause = _clause_for_pair(dataset, o, p)
            if clause is None:
                continue  # p can never dominate o
            if not clause:
                candidate.base_dominators += 1
                continue
            candidate.open_clauses.append(Condition.of([clause]))
        if candidate.certainly_out:
            candidate.open_clauses = []
        candidates[o] = candidate
    return candidates
