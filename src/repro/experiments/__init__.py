"""Experiment harness: one runner per table/figure of the paper.

See ``python -m repro.experiments --help``; DESIGN.md maps each runner to
the paper content it regenerates and EXPERIMENTS.md records the outcomes.
"""

from . import (
    ablations,
    fig02_ctable,
    fig03_probability,
    fig04_crowdsky,
    fig05_budget,
    fig06_missing_rate,
    fig07_m,
    fig08_alpha,
    fig09_worker_accuracy,
    fig10_latency,
    fig11_cardinality,
    table6_live,
)
from .base import ExperimentResult, query_metrics, scale_factor, scaled

__all__ = [
    "ablations",
    "fig02_ctable",
    "fig03_probability",
    "fig04_crowdsky",
    "fig05_budget",
    "fig06_missing_rate",
    "fig07_m",
    "fig08_alpha",
    "fig09_worker_accuracy",
    "fig10_latency",
    "fig11_cardinality",
    "table6_live",
    "ExperimentResult",
    "query_metrics",
    "scale_factor",
    "scaled",
]
