"""Figure 11: effect of the Synthetic dataset cardinality.

Expected shape: time climbs with cardinality (dominator sets and task
selection cost more); accuracy decreases gradually because the fixed
budget covers a shrinking fraction of the candidates.
"""

from __future__ import annotations

from .base import ExperimentResult, scaled
from .sweep import sweep_point

CARDINALITIES = (300, 600, 1200, 2400)
STRATEGIES = ("fbs", "ubs", "hhs")


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig11",
        title="BayesCrowd cost/accuracy vs data cardinality, Synthetic",
        columns=["strategy", "n", "time_s", "f1", "tasks"],
    )
    for strategy in STRATEGIES:
        for base_n in CARDINALITIES:
            n = scaled(base_n, quick)
            point = sweep_point("synthetic", n, strategy)
            result.add(
                strategy=strategy, n=n, time_s=point["time_s"],
                f1=point["f1"], tasks=point["tasks"],
            )
    result.note(
        "paper shape: time grows with cardinality; accuracy decreases "
        "gradually at a fixed budget"
    )
    result.plot_spec(x="n", y="time_s", series="strategy",
                     title="time vs cardinality")
    result.plot_spec(x="n", y="f1", series="strategy", title="F1 vs cardinality")
    return result
