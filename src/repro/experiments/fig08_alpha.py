"""Figure 8: effect of the pruning threshold alpha.

Expected shape: larger alpha keeps more (and more complex) conditions, so
time grows while accuracy improves slightly; a small alpha (~0.01)
already suffices.
"""

from __future__ import annotations

from .base import ExperimentResult, scaled
from .sweep import sweep_point

#: Scaled so alpha*|O| spans the regime the paper's 0.001-0.01 sweep
#: covered at |O| = 10k-100k (a few to a few dozen dominators).
ALPHAS = (0.005, 0.015, 0.05, 0.15)
SIZES = {"nba": 500, "synthetic": 900}
STRATEGIES = ("fbs", "ubs", "hhs")


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig8",
        title="BayesCrowd cost/accuracy vs pruning threshold alpha",
        columns=["dataset", "strategy", "alpha", "time_s", "f1"],
    )
    for kind, base_n in SIZES.items():
        n = scaled(base_n, quick)
        for strategy in STRATEGIES:
            for alpha in ALPHAS:
                point = sweep_point(kind, n, strategy, alpha=alpha)
                result.add(
                    dataset=kind, strategy=strategy, alpha=alpha,
                    time_s=point["time_s"], f1=point["f1"],
                )
    result.note(
        "paper shape: time grows with alpha (stricter pruning condition); "
        "accuracy gains flatten quickly -- small alpha suffices"
    )
    return result
