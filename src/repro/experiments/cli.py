"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    python -m repro.experiments fig2 fig3         # specific experiments
    python -m repro.experiments --all             # everything
    python -m repro.experiments --all --quick     # reduced sizes
    python -m repro.experiments fig5 --out results/   # also write md+json

Set ``REPRO_SCALE`` to scale every dataset cardinality.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict

from . import (
    ablations,
    extensions,
    replication,
    fig02_ctable,
    fig03_probability,
    fig04_crowdsky,
    fig05_budget,
    fig06_missing_rate,
    fig07_m,
    fig08_alpha,
    fig09_worker_accuracy,
    fig10_latency,
    fig11_cardinality,
    table6_live,
)
from .base import ExperimentResult
from ..persistence import atomic_write

RUNNERS: Dict[str, Callable[[bool], ExperimentResult]] = {
    "fig2": fig02_ctable.run,
    "fig3": fig03_probability.run,
    "fig4": fig04_crowdsky.run,
    "fig5": fig05_budget.run,
    "fig6": fig06_missing_rate.run,
    "fig7": fig07_m.run,
    "fig8": fig08_alpha.run,
    "fig9": fig09_worker_accuracy.run,
    "fig10": fig10_latency.run,
    "fig11": fig11_cardinality.run,
    "table6": table6_live.run,
    "ablations": ablations.run,
    "skyband": extensions.run_skyband,
    "topk": extensions.run_topk,
    "replication": lambda quick: replication.replicated_strategy_comparison(
        n=150 if quick else 400, seeds=(0, 1, 2) if quick else (0, 1, 2, 3, 4)
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the tables/figures of the BayesCrowd paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[[]] + sorted(RUNNERS),  # allow empty with --all
        help="experiment ids (fig2..fig11, table6, ablations, skyband, topk, replication)",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--quick", action="store_true", help="reduced dataset sizes / sweeps"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="directory for .md and .json outputs"
    )
    parser.add_argument(
        "--plot", action="store_true", help="render ASCII charts of the series"
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="after running, collate --out JSONs into one markdown report",
    )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    names = sorted(RUNNERS) if args.all else list(args.experiments)
    if not names:
        parser.print_help()
        return 2

    for name in names:
        runner = RUNNERS[name]
        start = time.perf_counter()
        result = runner(args.quick)
        result.seconds = time.perf_counter() - start
        print(result.to_text())
        if args.plot:
            for chart in result.charts():
                print()
                print(chart)
        print("(%s finished in %.1fs)" % (name, result.seconds))
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            for suffix, text in ((".md", result.to_markdown()), (".json", result.to_json())):
                atomic_write(
                    args.out / (name + suffix),
                    lambda handle, _text=text: handle.write(_text + "\n"),
                )
    if args.report is not None:
        if args.out is None:
            parser.error("--report requires --out (the JSONs to collate)")
        from .report import write_report

        path = write_report(args.out, args.report)
        print("report written to %s" % path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
