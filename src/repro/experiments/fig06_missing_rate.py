"""Figure 6: effect of the missing rate on time and accuracy.

Expected shape: time increases and F1 decreases with the missing rate
(more expressions in the c-table, fixed budget covers less uncertainty).
"""

from __future__ import annotations

from .base import ExperimentResult, scaled
from .sweep import sweep_point

MISSING_RATES = (0.05, 0.10, 0.15, 0.20)
SIZES = {"nba": 500, "synthetic": 900}
STRATEGIES = ("fbs", "ubs", "hhs")


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig6",
        title="BayesCrowd cost/accuracy vs missing rate",
        columns=["dataset", "strategy", "missing_rate", "time_s", "f1", "tasks"],
    )
    for kind, base_n in SIZES.items():
        n = scaled(base_n, quick)
        for strategy in STRATEGIES:
            for rate in MISSING_RATES:
                point = sweep_point(kind, n, strategy, missing_rate=rate)
                result.add(
                    dataset=kind,
                    strategy=strategy,
                    missing_rate=rate,
                    time_s=point["time_s"],
                    f1=point["f1"],
                    tasks=point["tasks"],
                )
    result.note(
        "paper shape: time grows and accuracy falls as the missing rate "
        "rises; UBS most accurate, FBS fastest"
    )
    result.plot_spec(x="missing_rate", y="f1", series="strategy",
                     title="F1 vs missing rate")
    result.plot_spec(x="missing_rate", y="time_s", series="strategy", log_y=True,
                     title="time vs missing rate")
    return result
