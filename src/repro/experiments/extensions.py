"""Experiment runners for the query-type extensions (not paper figures).

* ``skyband`` -- F1 / cost of crowd-assisted k-skyband queries over k and
  budget (skyline = k=1 row for reference);
* ``topk`` -- F1 / cost of crowd-assisted top-k dominating queries over k
  and budget.
"""

from __future__ import annotations

from ..metrics.accuracy import f1_score
from ..skyband import CrowdSkyband, SkybandConfig, skyband
from ..topk import CrowdTopKDominating, TopKConfig, top_k_dominating
from .base import ExperimentResult, scaled
from .data import dataset_with_distributions

SIZE = 400
SKYBAND_KS = (1, 2, 3)
TOPK_KS = (5, 10, 20)
BUDGETS = (0, 25, 50, 100)


def run_skyband(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="skyband",
        title="crowd-assisted k-skyband on NBA (extension)",
        columns=["k", "budget", "f1", "tasks", "rounds", "time_s", "truth_size"],
    )
    n = scaled(SIZE, quick)
    dataset, distributions = dataset_with_distributions("nba", n)
    for k in SKYBAND_KS:
        truth = skyband(dataset.complete, k)
        for budget in BUDGETS:
            config = SkybandConfig(
                k=k, alpha=0.08, budget=budget,
                latency=max(1, budget // 10), seed=0,
            )
            query = CrowdSkyband(
                dataset,
                config,
                distributions={v: p.copy() for v, p in distributions.items()},
            )
            run = query.run()
            result.add(
                k=k,
                budget=budget,
                f1=f1_score(run.answers, truth),
                tasks=run.tasks_posted,
                rounds=run.rounds,
                time_s=run.seconds,
                truth_size=len(truth),
            )
    result.note("k=1 equals the skyline query; F1 should climb with budget")
    result.plot_spec(x="budget", y="f1", series="k", title="skyband F1 vs budget")
    return result


def run_topk(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="topk",
        title="crowd-assisted top-k dominating on NBA (extension)",
        columns=["k", "budget", "f1", "tasks", "rounds", "time_s"],
    )
    n = scaled(SIZE, quick)
    dataset, distributions = dataset_with_distributions("nba", n)
    for k in TOPK_KS:
        if k > dataset.n_objects:
            continue  # tiny quick/scaled runs cannot support large k
        truth = top_k_dominating(dataset.complete, k)
        for budget in BUDGETS:
            config = TopKConfig(
                k=k, budget=budget, latency=max(1, budget // 10), seed=0
            )
            query = CrowdTopKDominating(
                dataset,
                config,
                distributions={v: p.copy() for v, p in distributions.items()},
            )
            run = query.run()
            result.add(
                k=k,
                budget=budget,
                f1=f1_score(run.answers, truth),
                tasks=run.tasks_posted,
                rounds=run.rounds,
                time_s=run.seconds,
            )
    result.note(
        "boundary-focused selection: tasks concentrate on objects whose "
        "score interval straddles the k-th rank"
    )
    result.plot_spec(x="budget", y="f1", series="k", title="top-k F1 vs budget")
    return result
