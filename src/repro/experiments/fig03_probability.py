"""Figure 3: efficiency of probability computation vs missing rate.

Total time to compute ``Pr(phi(o))`` for every condition of the initial
c-table, ADPLL vs Naive.  Naive enumerates the full assignment space, so
conditions whose space exceeds an enumeration cap are excluded *for both
methods* (the count is reported); the paper's Java Naive faced the same
exponential blow-up, which is exactly the effect the figure demonstrates.

Expected shape: ADPLL faster everywhere; both costs grow with the missing
rate (more expressions and variables per condition).
"""

from __future__ import annotations

from typing import Dict, List

from ..ctable import build_ctable
from ..probability import (
    ADPLL,
    DistributionStore,
    EnumerationLimitExceeded,
    naive_probability,
)
from ..bayesnet.posteriors import empirical_distributions
from .base import ExperimentResult, scaled, timed_run
from .data import nba_dataset, synthetic_dataset

MISSING_RATES = (0.05, 0.10, 0.15, 0.20)
SIZES = {"nba": 300, "synthetic": 600}
#: Assignment-space cap for Naive feasibility (same set used for ADPLL).
ENUMERATION_CAP = 300_000


def probability_point(kind: str, n: int, missing_rate: float) -> Dict[str, object]:
    """Total ADPLL and Naive time over the initial c-table's conditions."""
    if kind == "nba":
        dataset = nba_dataset(n, missing_rate)
    else:
        dataset = synthetic_dataset(n, missing_rate)
    # Slightly larger alpha than the query default keeps a healthy number
    # of unpruned conditions at every missing rate.
    ctable = build_ctable(dataset, alpha=0.02)
    store = DistributionStore(
        empirical_distributions(dataset), ctable.constraints
    )
    conditions = [ctable.condition(o) for o in ctable.undecided()]

    # Feasibility filter: identical condition set for both methods.
    feasible: List = []
    skipped = 0
    for condition in conditions:
        space = 1
        for variable in condition.variables():
            space *= dataset.domain_sizes[variable[1]]
            if space > ENUMERATION_CAP:
                break
        if space > ENUMERATION_CAP:
            skipped += 1
        else:
            feasible.append(condition)

    solver = ADPLL(store)
    __, adpll_seconds = timed_run(
        lambda: [solver.probability(c) for c in feasible]
    )

    def run_naive():
        out = []
        for condition in feasible:
            try:
                out.append(naive_probability(condition, store, max_assignments=None))
            except EnumerationLimitExceeded:  # pragma: no cover - filtered above
                pass
        return out

    __, naive_seconds = timed_run(run_naive)
    return {
        "conditions": len(feasible),
        "skipped": skipped,
        "adpll_s": adpll_seconds,
        "naive_s": naive_seconds,
    }


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig3",
        title="probability computation time vs missing rate (ADPLL vs Naive)",
        columns=[
            "dataset",
            "n",
            "missing_rate",
            "conditions",
            "skipped",
            "adpll_s",
            "naive_s",
            "speedup",
        ],
    )
    for kind, base_n in SIZES.items():
        n = scaled(base_n, quick)
        for rate in MISSING_RATES:
            point = probability_point(kind, n, rate)
            result.add(
                dataset=kind,
                n=n,
                missing_rate=rate,
                conditions=point["conditions"],
                skipped=point["skipped"],
                adpll_s=point["adpll_s"],
                naive_s=point["naive_s"],
                speedup=(
                    point["naive_s"] / point["adpll_s"]
                    if point["adpll_s"] > 0
                    else float("inf")
                ),
            )
    result.note(
        "paper shape: ADPLL < Naive at every rate, gap widening with the "
        "missing rate; 'skipped' counts conditions whose assignment space "
        "exceeds the enumeration cap (excluded from both timings)"
    )
    return result
