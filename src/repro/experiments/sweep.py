"""Parameter-sweep helper shared by the Figure 5-11 runners."""

from __future__ import annotations

from typing import Dict

from ..core import BayesCrowdConfig
from .base import query_metrics
from .data import NBA_DEFAULTS, SYNTHETIC_DEFAULTS, dataset_with_distributions


def defaults_for(kind: str) -> Dict[str, object]:
    """Paper default parameters for one dataset (Section 7, scaled)."""
    if kind == "nba":
        return dict(NBA_DEFAULTS)
    if kind == "synthetic":
        return dict(SYNTHETIC_DEFAULTS)
    raise ValueError("unknown dataset kind %r" % kind)


def sweep_point(
    kind: str,
    n: int,
    strategy: str,
    missing_rate: float = 0.1,
    seed: int = 0,
    **overrides,
) -> Dict[str, object]:
    """One BayesCrowd run at the dataset defaults plus overrides.

    Returns the standard metric dict (f1 / time_s / tasks / rounds / ...).
    """
    params = defaults_for(kind)
    params.update(overrides)
    dataset, distributions = dataset_with_distributions(kind, n, missing_rate)
    config = BayesCrowdConfig(strategy=strategy, seed=seed, **params)
    return query_metrics(dataset, config, distributions=distributions)
