"""Collate saved experiment results into one report.

``python -m repro.experiments --all --out results/`` writes one JSON per
experiment; this module folds them back into a single markdown document
(tables, notes, optional ASCII charts) -- the machine-generated companion
to the hand-written EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from .base import ExperimentResult
from ..persistence import atomic_write

PathLike = Union[str, Path]


def load_results(results_dir: PathLike) -> List[ExperimentResult]:
    """Read every ``*.json`` result in a directory, sorted by experiment id."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError("no results directory at %s" % results_dir)
    results = []
    for path in sorted(results_dir.glob("*.json")):
        results.append(ExperimentResult.from_json(path.read_text()))

    def sort_key(result: ExperimentResult):
        identifier = result.experiment_id
        if identifier.startswith("fig"):
            try:
                return (0, int(identifier[3:]))
            except ValueError:
                return (1, 0)
        if identifier.startswith("table"):
            return (2, 0)
        return (3, 0)

    results.sort(key=sort_key)
    return results


def build_report(results_dir: PathLike, charts: bool = True) -> str:
    """One markdown document with every saved experiment."""
    results = load_results(results_dir)
    if not results:
        return "# Experiment report\n\n(no results found)\n"
    total = sum(result.seconds for result in results)
    lines = [
        "# Experiment report",
        "",
        "%d experiments, %.1f s total runtime." % (len(results), total),
        "",
    ]
    for result in results:
        lines.append(result.to_markdown())
        if charts:
            for chart in result.charts():
                lines.append("")
                lines.append("```")
                lines.append(chart)
                lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(results_dir: PathLike, output: PathLike, charts: bool = True) -> Path:
    """Render and write the report; returns the output path."""
    output = Path(output)
    text = build_report(results_dir, charts=charts) + "\n"
    atomic_write(output, lambda handle: handle.write(text))
    return output
