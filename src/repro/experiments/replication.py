"""Multi-seed replication: means and confidence intervals for sweeps.

Single-seed points (what the figures show) can hide run-to-run variance
when workers are noisy or datasets are regenerated.  This module reruns a
sweep point across seeds and reports mean, standard deviation and a
normal-approximation 95% confidence half-width per metric -- the right
form for "is UBS actually better than FBS here?" questions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from .base import ExperimentResult
from .sweep import sweep_point

#: metrics aggregated from sweep_point output
NUMERIC_METRICS = ("f1", "time_s", "tasks", "rounds", "initial_f1")


@dataclass(frozen=True)
class Replicate:
    """Aggregated statistics of one metric across seeds."""

    metric: str
    mean: float
    std: float
    half_width_95: float
    n: int

    def interval(self) -> "tuple[float, float]":
        return (self.mean - self.half_width_95, self.mean + self.half_width_95)


def replicate_point(
    kind: str,
    n: int,
    strategy: str,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    missing_rate: float = 0.1,
    **overrides,
) -> Dict[str, Replicate]:
    """Run one sweep point once per seed and aggregate each metric.

    The seed drives worker noise and tie-breaking; the dataset itself is
    the cached instance for (kind, n, missing_rate), matching how the
    paper varies only the stochastic components between repetitions.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    samples: Dict[str, List[float]] = {metric: [] for metric in NUMERIC_METRICS}
    for seed in seeds:
        point = sweep_point(
            kind, n, strategy, missing_rate=missing_rate, seed=seed, **overrides
        )
        for metric in NUMERIC_METRICS:
            samples[metric].append(float(point[metric]))

    out: Dict[str, Replicate] = {}
    count = len(seeds)
    for metric, values in samples.items():
        mean = sum(values) / count
        if count > 1:
            variance = sum((v - mean) ** 2 for v in values) / (count - 1)
        else:
            variance = 0.0
        std = math.sqrt(variance)
        half_width = 1.96 * std / math.sqrt(count)
        out[metric] = Replicate(
            metric=metric, mean=mean, std=std, half_width_95=half_width, n=count
        )
    return out


def replicated_strategy_comparison(
    kind: str = "nba",
    n: int = 400,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    worker_accuracy: float = 0.85,
    **overrides,
) -> ExperimentResult:
    """FBS vs UBS vs HHS with confidence intervals (noisy workers).

    With perfect workers the runs are deterministic, so the comparison
    defaults to ``worker_accuracy = 0.85`` where seeds actually matter.
    """
    result = ExperimentResult(
        experiment_id="replication",
        title="strategy comparison, mean ± 95%% CI over %d seeds" % len(seeds),
        columns=["strategy", "f1_mean", "f1_ci", "time_mean", "tasks_mean"],
    )
    for strategy in ("fbs", "ubs", "hhs"):
        stats = replicate_point(
            kind,
            n,
            strategy,
            seeds=seeds,
            worker_accuracy=worker_accuracy,
            **overrides,
        )
        result.add(
            strategy=strategy,
            f1_mean=stats["f1"].mean,
            f1_ci=stats["f1"].half_width_95,
            time_mean=stats["time_s"].mean,
            tasks_mean=stats["tasks"].mean,
        )
    result.note(
        "worker accuracy %.2f; CI = 1.96 * std / sqrt(n) over seeds %r"
        % (worker_accuracy, tuple(seeds))
    )
    return result
