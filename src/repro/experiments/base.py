"""Shared infrastructure for the per-figure experiment runners.

Every experiment module exposes ``run(quick=False) -> ExperimentResult``.
Results are plain row dictionaries, so they can be printed as a text
table, dumped to JSON, or embedded into EXPERIMENTS.md.

Dataset sizes default to laptop scale (the paper used 10k/100k objects on
a Java implementation); set ``REPRO_SCALE`` to a float to multiply every
cardinality, e.g. ``REPRO_SCALE=5 python -m repro.experiments fig2``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core import BayesCrowd, BayesCrowdConfig
from ..datasets.dataset import IncompleteDataset
from ..metrics.accuracy import f1_score
from ..skyline.algorithms import skyline


def scale_factor() -> float:
    """The global cardinality multiplier from ``REPRO_SCALE`` (default 1)."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError:
        raise ValueError("REPRO_SCALE must be a number, got %r" % raw) from None
    if value <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return value


def scaled(n: int, quick: bool = False) -> int:
    """Apply REPRO_SCALE (and the quick-mode reduction) to a cardinality."""
    factor = scale_factor() * (0.4 if quick else 1.0)
    return max(10, int(round(n * factor)))


@dataclass
class ExperimentResult:
    """Rows produced by one experiment run."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    seconds: float = 0.0
    #: chart declarations for the CLI's --plot flag:
    #: dicts with keys x, y, optional series / log_y / title
    plot_specs: List[Dict[str, object]] = field(default_factory=list)

    def add(self, **row: object) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def plot_spec(
        self,
        x: str,
        y: str,
        series: Optional[str] = None,
        log_y: bool = False,
        title: str = "",
    ) -> None:
        """Declare one chart the CLI should render with ``--plot``."""
        self.plot_specs.append(
            {"x": x, "y": y, "series": series, "log_y": log_y, "title": title}
        )

    def charts(self) -> List[str]:
        """Rendered ASCII charts for every declared plot spec."""
        from .plotting import chart_from_rows

        out = []
        for spec in self.plot_specs:
            out.append(
                chart_from_rows(
                    self.rows,
                    x=spec["x"],
                    y=spec["y"],
                    series_key=spec.get("series"),
                    title=spec.get("title") or ("%s vs %s" % (spec["y"], spec["x"])),
                    log_y=bool(spec.get("log_y")),
                )
            )
        return out

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def _formatted(self, value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) < 0.01 or abs(value) >= 100_000:
                return "%.3g" % value
            return "%.3f" % value
        return str(value)

    def to_text(self) -> str:
        """Fixed-width table, matching what the paper's figure reports."""
        header = [self.experiment_id + ": " + self.title]
        widths = {
            c: max(
                len(c), *(len(self._formatted(r.get(c, ""))) for r in self.rows)
            )
            if self.rows
            else len(c)
            for c in self.columns
        }
        line = "  ".join(c.ljust(widths[c]) for c in self.columns)
        header.append(line)
        header.append("-" * len(line))
        for row in self.rows:
            header.append(
                "  ".join(
                    self._formatted(row.get(c, "")).ljust(widths[c])
                    for c in self.columns
                )
            )
        for note in self.notes:
            header.append("note: " + note)
        return "\n".join(header)

    def to_markdown(self) -> str:
        out = ["### %s — %s" % (self.experiment_id, self.title), ""]
        out.append("| " + " | ".join(self.columns) + " |")
        out.append("|" + "|".join("---" for __ in self.columns) + "|")
        for row in self.rows:
            out.append(
                "| "
                + " | ".join(self._formatted(row.get(c, "")) for c in self.columns)
                + " |"
            )
        for note in self.notes:
            out.append("")
            out.append("*%s*" % note)
        return "\n".join(out)

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment": self.experiment_id,
                "title": self.title,
                "columns": self.columns,
                "rows": self.rows,
                "notes": self.notes,
                "seconds": self.seconds,
                "plot_specs": self.plot_specs,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output."""
        data = json.loads(text)
        rows = data.get("rows", [])
        columns = data.get("columns")
        if not columns:
            columns = sorted({key for row in rows for key in row})
        result = cls(
            experiment_id=data["experiment"],
            title=data.get("title", ""),
            columns=list(columns),
            rows=list(rows),
            notes=list(data.get("notes", [])),
            seconds=float(data.get("seconds", 0.0)),
            plot_specs=list(data.get("plot_specs", [])),
        )
        return result


def timed_run(fn: Callable[[], object]) -> "tuple[object, float]":
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def query_metrics(
    dataset: IncompleteDataset,
    config: BayesCrowdConfig,
    distributions=None,
) -> Dict[str, object]:
    """Run one BayesCrowd query and collect the paper's standard metrics."""
    bc = BayesCrowd(dataset, config, distributions=distributions)
    result = bc.run()
    truth = skyline(dataset.complete)
    return {
        "f1": f1_score(result.answers, truth),
        "time_s": result.seconds,
        "tasks": result.tasks_posted,
        "rounds": result.rounds,
        "answers": len(result.answers),
        "initial_f1": f1_score(result.initial_answers, truth),
    }
