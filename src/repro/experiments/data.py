"""Cached dataset + distribution builders shared by the experiment runners.

The Bayesian-network preprocessing is the most expensive fixed cost of a
run, and comparisons (e.g. FBS vs UBS vs HHS on the same data) must share
it anyway for fairness -- so datasets and their learned distributions are
memoized by their construction parameters.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple


from ..core import BayesCrowdConfig
from ..core.framework import learn_distributions
from ..datasets import (
    attribute_mask,
    from_complete,
    generate_nba,
    generate_synthetic,
)
from ..datasets.dataset import IncompleteDataset

#: Paper defaults per dataset (Section 7), scaled for a Python laptop run.
#: alpha is scaled so the pruning threshold alpha*|O| stays comparable to
#: the paper's (0.003 * 10k = 30 dominators on NBA): with |O| in the
#: hundreds here, alpha must be ~0.05, not 0.003.
NBA_DEFAULTS = dict(alpha=0.05, budget=50, latency=5, m=15)
SYNTHETIC_DEFAULTS = dict(alpha=0.05, budget=120, latency=10, m=50)


@lru_cache(maxsize=32)
def nba_dataset(n: int, missing_rate: float = 0.1, seed: int = 7) -> IncompleteDataset:
    return generate_nba(n_objects=n, missing_rate=missing_rate, seed=seed)


@lru_cache(maxsize=32)
def synthetic_dataset(
    n: int, missing_rate: float = 0.1, seed: int = 13
) -> IncompleteDataset:
    return generate_synthetic(n_objects=n, missing_rate=missing_rate, seed=seed)


@lru_cache(maxsize=16)
def crowdsky_nba(n: int, crowd_attrs: Tuple[int, ...] = (2, 4), seed: int = 7) -> IncompleteDataset:
    """NBA with whole attributes missing: the Figure 4 comparison setting."""
    base = generate_nba(n_objects=n, missing_rate=0.0, seed=seed)
    mask = attribute_mask(base.n_objects, base.n_attributes, list(crowd_attrs))
    return from_complete(
        base.complete,
        mask,
        base.domain_sizes,
        name="nba-crowdattrs-%d" % n,
        attribute_names=base.attribute_names,
    )


@lru_cache(maxsize=32)
def _distribution_cache_entry(kind: str, n: int, missing_rate: float, seed: int):
    if kind == "nba":
        dataset = nba_dataset(n, missing_rate, seed)
    elif kind == "synthetic":
        dataset = synthetic_dataset(n, missing_rate, seed)
    elif kind == "crowdsky":
        dataset = crowdsky_nba(n, seed=seed)
    else:
        raise ValueError("unknown dataset kind %r" % kind)
    config = BayesCrowdConfig(distribution_source="bayesnet")
    return learn_distributions(dataset, config)


def dataset_with_distributions(
    kind: str, n: int, missing_rate: float = 0.1, seed: int = 7
) -> "tuple[IncompleteDataset, Dict[Variable, np.ndarray]]":
    """A dataset plus its (cached) learned missing-value distributions."""
    if kind == "nba":
        dataset = nba_dataset(n, missing_rate, seed)
    elif kind == "synthetic":
        dataset = synthetic_dataset(n, missing_rate, seed)
    elif kind == "crowdsky":
        dataset = crowdsky_nba(n, seed=seed)
    else:
        raise ValueError("unknown dataset kind %r" % kind)
    distributions = _distribution_cache_entry(kind, n, missing_rate, seed)
    # Copies: runs must not share mutable pmf arrays.
    return dataset, {v: pmf.copy() for v, pmf in distributions.items()}
