"""Figure 4: BayesCrowd vs CrowdSky over NBA cardinality.

The comparable setting of Section 7.3: two NBA attributes fully missing
(CrowdSky's crowd attributes), 20 tasks per round for both systems, a
large BayesCrowd budget (effectively unconstrained).  Reports

* (a) algorithm execution time (excluding worker answering),
* (b) total posted tasks (monetary cost),
* (c) task-selection rounds (latency),

for BayesCrowd-FBS/UBS/HHS and CrowdSky.  Expected shape: CrowdSky needs
at least an order of magnitude more tasks and rounds; its costs grow
faster with cardinality.
"""

from __future__ import annotations

from typing import Dict

from ..baselines import CrowdSky
from ..core import BayesCrowd, BayesCrowdConfig
from ..metrics.accuracy import f1_score
from ..skyline.algorithms import skyline
from .base import ExperimentResult, scaled
from .data import dataset_with_distributions

CARDINALITIES = (80, 140, 200, 260)
TASKS_PER_ROUND = 20


def bayescrowd_point(n: int, strategy: str) -> Dict[str, object]:
    dataset, distributions = dataset_with_distributions("crowdsky", n)
    budget = 4 * n  # effectively unconstrained: BayesCrowd stops early
    config = BayesCrowdConfig(
        alpha=0.05,
        budget=budget,
        latency=max(1, budget // TASKS_PER_ROUND),
        strategy=strategy,
        m=15,
        seed=0,
    )
    bc = BayesCrowd(dataset, config, distributions=distributions)
    result = bc.run()
    truth = skyline(dataset.complete)
    return {
        "system": "bayescrowd-%s" % strategy,
        "n": n,
        "time_s": result.seconds,
        "tasks": result.tasks_posted,
        "rounds": result.rounds,
        "f1": f1_score(result.answers, truth),
    }


def crowdsky_point(n: int) -> Dict[str, object]:
    dataset, __ = dataset_with_distributions("crowdsky", n)
    result = CrowdSky(dataset, tasks_per_round=TASKS_PER_ROUND, seed=0).run()
    truth = skyline(dataset.complete)
    return {
        "system": "crowdsky",
        "n": n,
        "time_s": result.seconds,
        "tasks": result.tasks_posted,
        "rounds": result.rounds,
        "f1": f1_score(result.answers, truth),
    }


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4",
        title="BayesCrowd vs CrowdSky on NBA with 2 crowd attributes",
        columns=["system", "n", "time_s", "tasks", "rounds", "f1"],
    )
    strategies = ("fbs", "hhs") if quick else ("fbs", "ubs", "hhs")
    for base_n in CARDINALITIES:
        n = scaled(base_n, quick)
        for strategy in strategies:
            result.add(**bayescrowd_point(n, strategy))
        result.add(**crowdsky_point(n))
    result.note(
        "paper shape: CrowdSky posts >=10x more tasks and rounds; note the "
        "paper's 100x time advantage reflects its Java implementation -- "
        "here the relative task/round gap is the portable signal"
    )
    result.plot_spec(x="n", y="tasks", series="system",
                     title="posted tasks vs cardinality")
    result.plot_spec(x="n", y="rounds", series="system",
                     title="rounds vs cardinality")
    return result
