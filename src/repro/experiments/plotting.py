"""ASCII charts for experiment series.

matplotlib is unavailable in the offline environment, so the experiment
CLI renders figures as terminal charts: multi-series scatter plots with
per-series markers, axis scales (linear or log-y) and a legend.  Good
enough to eyeball every trend the paper's figures show.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: Markers assigned to series in order.
MARKERS = "ox+*#@%&"

Point = Tuple[float, float]


def _nice_number(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return "%.2g" % value
    return "%.3g" % value


def ascii_line_chart(
    series: Dict[str, Sequence[Point]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    log_y: bool = False,
) -> str:
    """Render named point series as a fixed-size ASCII chart.

    Points are plotted with one marker per series; overlapping cells keep
    the earliest series' marker.  Returns the chart as a newline-joined
    string (no trailing newline).
    """
    if not series or all(not points for points in series.values()):
        return "(no data to plot)"
    if width < 10 or height < 4:
        raise ValueError("chart too small")

    def transform(y: float) -> float:
        if not log_y:
            return y
        return math.log10(max(y, 1e-12))

    xs = [x for points in series.values() for x, __ in points]
    ys = [transform(y) for points in series.values() for __, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid: List[List[str]] = [[" "] * width for __ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in points:
            column = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((transform(y) - y_lo) / (y_hi - y_lo) * (height - 1)))
            row = height - 1 - row  # origin bottom-left
            if grid[row][column] == " ":
                grid[row][column] = marker

    y_top = _nice_number(10 ** y_hi if log_y else y_hi)
    y_bottom = _nice_number(10 ** y_lo if log_y else y_lo)
    label_width = max(len(y_top), len(y_bottom))

    lines: List[str] = []
    if title:
        lines.append(title)
    axis_note = " (log scale)" if log_y else ""
    if y_label:
        lines.append("y: %s%s" % (y_label, axis_note))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_top.rjust(label_width)
        elif row_index == height - 1:
            label = y_bottom.rjust(label_width)
        else:
            label = " " * label_width
        lines.append("%s |%s" % (label, "".join(row)))
    lines.append("%s +%s" % (" " * label_width, "-" * width))
    x_axis = "%s  %s%s%s" % (
        " " * label_width,
        _nice_number(x_lo),
        " " * max(1, width - len(_nice_number(x_lo)) - len(_nice_number(x_hi))),
        _nice_number(x_hi),
    )
    lines.append(x_axis)
    if x_label:
        lines.append("%s  x: %s" % (" " * label_width, x_label))
    legend = "   ".join(
        "%s %s" % (MARKERS[i % len(MARKERS)], name)
        for i, name in enumerate(series)
    )
    lines.append("%s  %s" % (" " * label_width, legend))
    return "\n".join(lines)


def chart_from_rows(
    rows: Sequence[dict],
    x: str,
    y: str,
    series_key: Optional[str] = None,
    title: str = "",
    log_y: bool = False,
) -> str:
    """Build a chart from experiment result rows.

    Rows missing the x/y columns, or with non-numeric values there, are
    skipped.  ``series_key`` groups rows into named series (e.g. one line
    per strategy); without it everything lands in one series.
    """
    series: Dict[str, List[Point]] = {}
    for row in rows:
        try:
            x_value = float(row[x])
            y_value = float(row[y])
        except (KeyError, TypeError, ValueError):
            continue
        name = str(row.get(series_key, "all")) if series_key else "all"
        series.setdefault(name, []).append((x_value, y_value))
    return ascii_line_chart(
        series, title=title, x_label=x, y_label=y, log_y=log_y
    )
