"""Figure 10: effect of the latency constraint (number of rounds).

Synthetic dataset, fixed budget, varying L.  Expected shape: both time
and accuracy roughly flat -- the budget fixes the number of affordable
tasks, so the latency knob only controls batching.
"""

from __future__ import annotations

from .base import ExperimentResult, scaled
from .sweep import sweep_point

LATENCIES = (2, 5, 10, 20)
SIZE = 900
STRATEGIES = ("fbs", "ubs", "hhs")


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig10",
        title="BayesCrowd cost/accuracy vs latency (rounds), Synthetic",
        columns=["strategy", "latency", "time_s", "f1", "rounds"],
    )
    n = scaled(SIZE, quick)
    for strategy in STRATEGIES:
        for latency in LATENCIES:
            point = sweep_point("synthetic", n, strategy, latency=latency)
            result.add(
                strategy=strategy, latency=latency, time_s=point["time_s"],
                f1=point["f1"], rounds=point["rounds"],
            )
    result.note(
        "paper shape: time and accuracy not very sensitive to latency at a "
        "fixed budget; rounds never exceed L"
    )
    return result
