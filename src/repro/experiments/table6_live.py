"""Table 6: "live" crowd experiment on the NBA dataset.

The paper posts the default NBA workload to Amazon Mechanical Turk and
reports F1 = 0.956 / 0.979 / 0.978 for FBS / UBS / HHS.  No live market
is reachable here, so the AMT crowd is simulated by a *heterogeneous*
worker pool: per-worker accuracies drawn from a clipped normal around
0.95 (the paper notes AMT supports recruiting workers above an accuracy
bar, and observes "excellent performance especially for high-accuracy
workers").  Majority voting over three assignments, as in the live run.
"""

from __future__ import annotations

import numpy as np

from ..core import BayesCrowd, BayesCrowdConfig
from ..crowd import SimulatedCrowdPlatform, WorkerPool
from ..metrics.accuracy import f1_score
from ..skyline.algorithms import skyline
from .base import ExperimentResult, scaled
from .data import NBA_DEFAULTS, dataset_with_distributions

SIZE = 500
POOL_SIZE = 40
POOL_MEAN_ACCURACY = 0.95
POOL_ACCURACY_SD = 0.04
STRATEGIES = ("fbs", "ubs", "hhs")
PAPER_F1 = {"fbs": 0.956, "ubs": 0.979, "hhs": 0.978}


def amt_like_pool(rng: np.random.Generator) -> WorkerPool:
    """A heterogeneous pool imitating pre-screened AMT workers."""
    accuracies = np.clip(
        rng.normal(POOL_MEAN_ACCURACY, POOL_ACCURACY_SD, size=POOL_SIZE), 0.75, 1.0
    )
    return WorkerPool(list(accuracies), rng=rng)


def live_point(strategy: str, n: int, seed: int = 0) -> float:
    dataset, distributions = dataset_with_distributions("nba", n)
    rng = np.random.default_rng(seed)
    platform = SimulatedCrowdPlatform(dataset, worker_pool=amt_like_pool(rng), rng=rng)
    config = BayesCrowdConfig(strategy=strategy, seed=seed, **NBA_DEFAULTS)
    result = BayesCrowd(dataset, config, platform=platform, distributions=distributions).run()
    return f1_score(result.answers, skyline(dataset.complete))


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table6",
        title="simulated live-crowd F1 on NBA (paper: AMT workers)",
        columns=["strategy", "f1", "paper_f1"],
    )
    n = scaled(SIZE, quick)
    for strategy in STRATEGIES:
        result.add(
            strategy=strategy,
            f1=live_point(strategy, n),
            paper_f1=PAPER_F1[strategy],
        )
    result.note(
        "AMT replaced by a heterogeneous simulated pool (mean accuracy 0.95); "
        "paper shape: all strategies reach high F1, UBS/HHS above FBS"
    )
    return result
