"""Ablations of the design choices called out in DESIGN.md.

Not a paper figure; quantifies the contribution of

* ADPLL's connected-component decomposition + memoization,
* the utility-function evaluation mode (paper's syntactic substitution vs
  proper conditioning),
* answer propagation through the variable-constraint store (versus caches
  invalidated wholesale).
"""

from __future__ import annotations

from ..bayesnet.posteriors import empirical_distributions
from ..ctable import build_ctable
from ..probability import ADPLL, DistributionStore
from .base import ExperimentResult, scaled, timed_run
from .data import nba_dataset
from .sweep import sweep_point

SIZE = 400


def adpll_flag_point(
    n: int,
    use_components: bool,
    use_memo: bool,
    branch_heuristic: str = "frequency",
    use_absorption: bool = False,
) -> float:
    dataset = nba_dataset(n, 0.15)
    ctable = build_ctable(dataset, alpha=0.02)
    store = DistributionStore(empirical_distributions(dataset), ctable.constraints)
    solver = ADPLL(
        store,
        use_components=use_components,
        use_memo=use_memo,
        branch_heuristic=branch_heuristic,
        use_absorption=use_absorption,
    )
    conditions = [ctable.condition(o) for o in ctable.undecided()]
    __, seconds = timed_run(lambda: [solver.probability(c) for c in conditions])
    return seconds


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ablations",
        title="design-choice ablations (not a paper figure)",
        columns=["ablation", "variant", "time_s", "f1"],
    )
    n = scaled(SIZE, quick)

    for components in (True, False):
        for memo in (True, False):
            seconds = adpll_flag_point(n, components, memo)
            result.add(
                ablation="adpll-refinements",
                variant="components=%s memo=%s" % (components, memo),
                time_s=seconds,
                f1="-",
            )

    for heuristic in ("frequency", "min_domain", "first"):
        for absorption in (False, True):
            seconds = adpll_flag_point(
                n, True, True, branch_heuristic=heuristic, use_absorption=absorption
            )
            result.add(
                ablation="adpll-branching",
                variant="%s absorption=%s" % (heuristic, absorption),
                time_s=seconds,
                f1="-",
            )

    for mode in ("syntactic", "conditional"):
        point = sweep_point("nba", n, "hhs", utility_mode=mode)
        result.add(
            ablation="utility-mode",
            variant=mode,
            time_s=point["time_s"],
            f1=point["f1"],
        )

    # Answer propagation levels (applied to the crowd-attribute setting,
    # where var-var answers make ordering inference matter most).
    from ..core import BayesCrowd, BayesCrowdConfig
    from ..metrics.accuracy import f1_score
    from ..skyline.algorithms import skyline
    from .data import dataset_with_distributions

    # Two sizes: the effect is configuration-dependent (it needs var-var
    # answers whose orderings actually connect), so one point can mislead.
    for inf_n in (max(80, n // 3), max(120, n // 2)):
        budget = inf_n // 3  # scarce: differences show only when tasks are scarce
        dataset, distributions = dataset_with_distributions("crowdsky", inf_n)
        truth = skyline(dataset.complete)
        for mode in ("direct", "intervals", "full"):
            config = BayesCrowdConfig(
                alpha=0.05,
                budget=budget,
                latency=max(1, budget // 20),
                strategy="hhs",
                inference_mode=mode,
                seed=0,
            )
            run_result = BayesCrowd(
                dataset,
                config,
                distributions={v: p.copy() for v, p in distributions.items()},
            ).run()
            result.add(
                ablation="answer-inference",
                variant="%s n=%d" % (mode, inf_n),
                time_s=run_result.seconds,
                f1=f1_score(run_result.answers, truth),
            )

    result.note(
        "components=False memo=False is the paper's plain Algorithm 3; "
        "'conditional' replaces Eq. 5's syntactic substitution with exact "
        "conditioning Pr(phi^e)/Pr(e)"
    )
    return result
