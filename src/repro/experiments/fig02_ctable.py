"""Figure 2: efficiency of c-table construction vs missing rate.

Compares Get-CTable (sorted / bitwise dominator derivation) against the
Baseline (pairwise comparisons) on both datasets, for missing rates
0.05-0.2.  Expected shape: Get-CTable faster everywhere, both growing
with the missing rate (larger dominator sets).
"""

from __future__ import annotations

from ..ctable import build_ctable
from .base import ExperimentResult, scaled, timed_run
from .data import nba_dataset, synthetic_dataset

MISSING_RATES = (0.05, 0.10, 0.15, 0.20)

#: Per-dataset default cardinality (paper: 10k / 100k).
SIZES = {"nba": 600, "synthetic": 1200}


def ctable_point(kind: str, n: int, missing_rate: float, method: str) -> float:
    """Seconds to build the c-table with the given dominator method."""
    if kind == "nba":
        dataset = nba_dataset(n, missing_rate)
    else:
        dataset = synthetic_dataset(n, missing_rate)
    # alpha=0.05 keeps enough unpruned conditions for the growth of the
    # condition-generation cost with the missing rate to be visible.
    __, seconds = timed_run(
        lambda: build_ctable(dataset, alpha=0.05, dominator_method=method)
    )
    return seconds


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig2",
        title="c-table construction time vs missing rate (Get-CTable vs Baseline)",
        columns=["dataset", "n", "missing_rate", "get_ctable_s", "baseline_s", "speedup"],
    )
    for kind, base_n in SIZES.items():
        n = scaled(base_n, quick)
        for rate in MISSING_RATES:
            fast = ctable_point(kind, n, rate, "fast")
            slow = ctable_point(kind, n, rate, "baseline")
            result.add(
                dataset=kind,
                n=n,
                missing_rate=rate,
                get_ctable_s=fast,
                baseline_s=slow,
                speedup=slow / fast if fast > 0 else float("inf"),
            )
    result.note(
        "paper shape: Get-CTable < Baseline at every rate; both increase "
        "with the missing rate"
    )
    result.plot_spec(x="missing_rate", y="get_ctable_s", series="dataset",
                     title="Get-CTable time vs missing rate")
    result.plot_spec(x="missing_rate", y="baseline_s", series="dataset",
                     title="Baseline time vs missing rate")
    return result
