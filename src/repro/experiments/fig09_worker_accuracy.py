"""Figure 9: effect of worker accuracy (0.7 - 1.0).

Expected shape: time roughly insensitive to worker accuracy; F1 climbs
with more reliable workers (about +10-20% from 0.7 to 1.0 in the paper).
"""

from __future__ import annotations

from .base import ExperimentResult, scaled
from .sweep import sweep_point

ACCURACIES = (0.7, 0.8, 0.9, 1.0)
SIZES = {"nba": 500, "synthetic": 900}
STRATEGIES = ("fbs", "ubs", "hhs")


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig9",
        title="BayesCrowd cost/accuracy vs worker accuracy",
        columns=["dataset", "strategy", "worker_accuracy", "time_s", "f1"],
    )
    for kind, base_n in SIZES.items():
        n = scaled(base_n, quick)
        for strategy in STRATEGIES:
            for accuracy in ACCURACIES:
                point = sweep_point(kind, n, strategy, worker_accuracy=accuracy)
                result.add(
                    dataset=kind, strategy=strategy, worker_accuracy=accuracy,
                    time_s=point["time_s"], f1=point["f1"],
                )
    result.note(
        "paper shape: execution time insensitive to worker accuracy; F1 "
        "increases with worker accuracy"
    )
    result.plot_spec(x="worker_accuracy", y="f1", series="strategy",
                     title="F1 vs worker accuracy")
    return result
