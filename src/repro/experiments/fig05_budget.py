"""Figure 5: effect of the budget on time and accuracy.

Sweeps the number of affordable tasks B for FBS / UBS / HHS on both
datasets.  Expected shape: F1 climbs with budget while time grows; FBS is
fastest / least accurate, UBS slowest / most accurate, HHS in between.
"""

from __future__ import annotations

from .base import ExperimentResult, scaled
from .sweep import sweep_point

BUDGETS = {"nba": (10, 25, 50, 100), "synthetic": (30, 60, 120, 240)}
SIZES = {"nba": 500, "synthetic": 900}
STRATEGIES = ("fbs", "ubs", "hhs")


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig5",
        title="BayesCrowd cost/accuracy vs budget",
        columns=["dataset", "strategy", "budget", "time_s", "f1", "tasks", "rounds"],
    )
    for kind, budgets in BUDGETS.items():
        n = scaled(SIZES[kind], quick)
        for strategy in STRATEGIES:
            for budget in budgets:
                point = sweep_point(kind, n, strategy, budget=budget)
                result.add(
                    dataset=kind,
                    strategy=strategy,
                    budget=budget,
                    time_s=point["time_s"],
                    f1=point["f1"],
                    tasks=point["tasks"],
                    rounds=point["rounds"],
                )
    result.note(
        "paper shape: accuracy climbs and time grows with budget; "
        "FBS fastest/worst, UBS slowest/best, HHS between"
    )
    result.plot_spec(x="budget", y="f1", series="strategy",
                     title="F1 vs budget (both datasets pooled)")
    return result
