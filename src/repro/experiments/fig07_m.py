"""Figure 7: effect of HHS's early-stop parameter m.

Expected shape: growing m raises HHS accuracy toward UBS while raising
its time cost; FBS and UBS appear as flat reference lines.
"""

from __future__ import annotations

from .base import ExperimentResult, scaled
from .sweep import sweep_point

M_VALUES = (1, 3, 8, 15, 30)
SIZES = {"nba": 500, "synthetic": 900}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig7",
        title="HHS accuracy/time vs parameter m (FBS/UBS reference lines)",
        columns=["dataset", "strategy", "m", "time_s", "f1"],
    )
    for kind, base_n in SIZES.items():
        n = scaled(base_n, quick)
        for reference in ("fbs", "ubs"):
            point = sweep_point(kind, n, reference)
            result.add(
                dataset=kind, strategy=reference, m="-", time_s=point["time_s"],
                f1=point["f1"],
            )
        for m in M_VALUES:
            point = sweep_point(kind, n, "hhs", m=m)
            result.add(
                dataset=kind, strategy="hhs", m=m, time_s=point["time_s"],
                f1=point["f1"],
            )
    result.note(
        "paper shape: with growing m, HHS accuracy approaches UBS and its "
        "time cost rises; large m makes HHS equal UBS"
    )
    return result
