"""Conditions: CNF formulas over expressions, per the c-table model.

The condition ``phi(o)`` of an object is a conjunction of clauses, one per
potential dominator ``p`` in ``D(o)``; each clause is the disjunction of at
most ``d`` expressions stating "o strictly beats p on some attribute"
(Section 4.1).  A condition can also be the constant ``true`` (``o`` is
certainly a skyline answer) or ``false`` (certainly not).

Conditions are immutable; every simplification returns a new object, which
makes them safe to use as cache keys for probability computation.  Because
ADPLL materializes very many intermediate conditions, the hash, variable
set and occurrence counts are computed once and cached.
"""

from __future__ import annotations

from collections import Counter
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..datasets.dataset import Variable
from .expression import Expression

Clause = Tuple[Expression, ...]

#: Resolver callback: maps an expression to True / False / None (unknown).
ExpressionResolver = Callable[[Expression], Optional[bool]]


class Condition:
    """A CNF condition, or one of the constants ``true`` / ``false``.

    ``value`` is ``True``/``False`` for constant conditions (with empty
    ``clauses``) and ``None`` for symbolic ones.  Use :meth:`of` to build
    (it normalizes for canonical hashing); the raw constructor trusts its
    input to already be normalized.
    """

    __slots__ = ("clauses", "value", "_hash", "_vars", "_counts", "_expr_counts")

    def __init__(
        self, clauses: Tuple[Clause, ...] = (), value: Optional[bool] = None
    ) -> None:
        if value is not None and clauses:
            raise ValueError("constant conditions must carry no clauses")
        if value is None and not clauses:
            raise ValueError("symbolic conditions need at least one clause")
        self.clauses = clauses
        self.value = value
        self._hash = hash((value, clauses))
        self._vars: Optional[FrozenSet[Variable]] = None
        self._counts: Optional[Counter] = None
        self._expr_counts: Optional[Counter] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def true() -> "Condition":
        return _TRUE

    @staticmethod
    def false() -> "Condition":
        return _FALSE

    @staticmethod
    def of(clauses: Iterable[Iterable[Expression]]) -> "Condition":
        """Build and normalize a condition from clause iterables.

        Normalization dedupes expressions within a clause, dedupes clauses,
        and sorts both levels canonically so logically identical conditions
        compare (and hash) equal.
        """
        normalized = []
        seen_clauses = set()
        for clause in clauses:
            unique = sorted(set(clause), key=Expression.sort_key)
            if not unique:
                return _FALSE
            key = tuple(unique)
            if key not in seen_clauses:
                seen_clauses.add(key)
                normalized.append(key)
        if not normalized:
            return _TRUE
        normalized.sort(key=_clause_sort_key)
        return Condition(clauses=tuple(normalized))

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Condition)
            and other._hash == self._hash
            and other.value == self.value
            and other.clauses == self.clauses
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild via the raw constructor (clauses are already normalized)
        # so the cached hash is recomputed in the unpickling process, where
        # string hash randomization may differ.
        return (Condition, (self.clauses, self.value))

    # ------------------------------------------------------------------
    # predicates / structure
    # ------------------------------------------------------------------
    @property
    def is_true(self) -> bool:
        return self.value is True

    @property
    def is_false(self) -> bool:
        return self.value is False

    @property
    def is_constant(self) -> bool:
        return self.value is not None

    def expressions(self) -> Iterator[Expression]:
        """All expression occurrences, clause by clause (with repeats)."""
        for clause in self.clauses:
            yield from clause

    def distinct_expressions(self) -> FrozenSet[Expression]:
        return frozenset(self.expressions())

    def variables(self) -> FrozenSet[Variable]:
        """Variables mentioned anywhere in the condition (memoized)."""
        if self._vars is None:
            out = set()
            for clause in self.clauses:
                for expression in clause:
                    out.update(expression.variables())
            self._vars = frozenset(out)
        return self._vars

    def variable_counts(self) -> Counter:
        """Occurrence count of each variable (ADPLL's branching heuristic)."""
        if self._counts is None:
            counts: Counter = Counter()
            for clause in self.clauses:
                for expression in clause:
                    for variable in expression.variables():
                        counts[variable] += 1
            self._counts = counts
        return self._counts

    def expression_counts(self) -> Counter:
        """Occurrence count of each expression (memoized; do not mutate).

        Backs the c-table's incremental expression-frequency index and the
        per-round frequency counting of the selection strategies.
        """
        if self._expr_counts is None:
            counts: Counter = Counter()
            for clause in self.clauses:
                for expression in clause:
                    counts[expression] += 1
            self._expr_counts = counts
        return self._expr_counts

    def n_clauses(self) -> int:
        return len(self.clauses)

    def n_expression_occurrences(self) -> int:
        return sum(len(clause) for clause in self.clauses)

    def is_variable_disjoint(self) -> bool:
        """True when no variable occurs in more than one expression.

        This is the "independent" normal form shared by ADPLL and the
        circuit compiler: with every expression over distinct variables,
        the probability follows from product/complement rules alone, so
        neither solver needs to branch.  Constants are trivially disjoint.
        """
        return all(count == 1 for count in self.variable_counts().values())

    def connected_components(self) -> List["Condition"]:
        """Partition the clauses into variable-connected sub-conditions.

        Two clauses are connected when they share a variable; maximal
        groups are probabilistically independent, so both ADPLL and the
        circuit compiler solve them separately and multiply.  Returns
        ``[self]`` for constants and single-component conditions (callers
        check ``len() > 1`` before recursing, which also guards against
        infinite recursion).  Union-find over clause indices.
        """
        if self.is_constant or len(self.clauses) < 2:
            return [self]
        parent = list(range(len(self.clauses)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        owner: Dict[Variable, int] = {}
        for index, clause in enumerate(self.clauses):
            for expression in clause:
                for variable in expression.variables():
                    if variable in owner:
                        root_a, root_b = find(owner[variable]), find(index)
                        if root_a != root_b:
                            parent[root_b] = root_a
                    else:
                        owner[variable] = index
        groups: Dict[int, List[Clause]] = {}
        for index, clause in enumerate(self.clauses):
            groups.setdefault(find(index), []).append(clause)
        if len(groups) == 1:
            return [self]
        return [Condition.of(clauses) for clauses in groups.values()]

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[Variable, int]) -> bool:
        """Truth under a total assignment of the condition's variables."""
        if self.is_constant:
            return bool(self.value)
        return all(
            any(expression.evaluate(assignment) for expression in clause)
            for clause in self.clauses
        )

    def substitute(self, variable: Variable, value: int) -> "Condition":
        """Fix one variable to a value and simplify (ADPLL's branching step)."""
        if self.is_constant:
            return self
        new_clauses = []
        for clause in self.clauses:
            new_clause = []
            satisfied = False
            changed = False
            for expression in clause:
                if not expression.involves(variable):
                    new_clause.append(expression)
                    continue
                changed = True
                result = expression.substitute(variable, value)
                if result is True:
                    satisfied = True
                    break
                if result is False:
                    continue
                new_clause.append(result)
            if satisfied:
                continue
            if not new_clause:
                return _FALSE
            if changed:
                new_clause.sort(key=Expression.sort_key)
            new_clauses.append(tuple(new_clause))
        if not new_clauses:
            return _TRUE
        new_clauses.sort(key=_clause_sort_key)
        deduped = []
        previous = None
        for clause in new_clauses:
            if clause != previous:
                deduped.append(clause)
                previous = clause
        return Condition(clauses=tuple(deduped))

    def assign_expression(self, target: Expression, truth: bool) -> "Condition":
        """Replace every occurrence of one expression with a truth value.

        This is the paper's syntactic simplification used by the marginal
        utility function ("when an expression is determined, the
        corresponding condition can be simplified").
        """
        return self.simplify_with(lambda e: truth if e == target else None)

    def simplify_with(self, resolver: ExpressionResolver) -> "Condition":
        """Simplify under partial knowledge.

        ``resolver`` returns the known truth of an expression, or ``None``
        when still undetermined (e.g. constraints gathered from crowd
        answers).  Clauses with a true expression drop out; false
        expressions are removed; an emptied clause makes the condition
        ``false``; no remaining clause makes it ``true``.
        """
        if self.is_constant:
            return self
        new_clauses = []
        changed = False
        for clause in self.clauses:
            new_clause = []
            satisfied = False
            for expression in clause:
                truth = resolver(expression)
                if truth is True:
                    satisfied = True
                    changed = True
                    break
                if truth is False:
                    changed = True
                    continue
                new_clause.append(expression)
            if satisfied:
                continue
            if not new_clause:
                return _FALSE
            new_clauses.append(new_clause)
        if not changed:
            return self
        return Condition.of(new_clauses)

    def absorbed(self) -> "Condition":
        """Apply clause absorption: drop clauses that are supersets of others.

        ``(x) AND (x OR y)`` simplifies to ``(x)`` -- the superset clause is
        implied.  Not applied automatically (the paper's conditions are kept
        verbatim); ADPLL can opt in to shrink residual conditions.
        """
        if self.is_constant or len(self.clauses) < 2:
            return self
        clause_sets = [frozenset(clause) for clause in self.clauses]
        keep = []
        for i, candidate in enumerate(clause_sets):
            subsumed = False
            for j, other in enumerate(clause_sets):
                if i == j:
                    continue
                if other < candidate or (other == candidate and j < i):
                    subsumed = True
                    break
            if not subsumed:
                keep.append(self.clauses[i])
        if len(keep) == len(self.clauses):
            return self
        return Condition.of(keep)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        if self.is_constant:
            return "Condition(%s)" % self.value
        return "Condition(clauses=%d)" % len(self.clauses)

    def __str__(self) -> str:
        if self.is_true:
            return "true"
        if self.is_false:
            return "false"
        parts = []
        for clause in self.clauses:
            inner = " ∨ ".join("(%s)" % e for e in clause)
            parts.append("[%s]" % inner)
        return " ∧ ".join(parts)


def _clause_sort_key(clause: Clause) -> Tuple:
    return tuple(e.sort_key() for e in clause)


_TRUE = Condition(clauses=(), value=True)
_FALSE = Condition(clauses=(), value=False)
