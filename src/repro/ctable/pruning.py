"""Sub-quadratic dominance pruning for c-table construction.

The possible-dominator relation (Eq. 1) is exactly a component-wise
order between two *filled* matrices: ``p`` possibly dominates ``o`` iff

    hi(p) >= lo(o)  on every attribute,

where ``hi`` fills missing cells with the attribute's domain maximum
(a missing ``p``-cell never constrains) and ``lo`` keeps the raw values
matrix (missing cells hold the ``-1`` sentinel, below every observed
value, so a missing ``o``-cell never constrains).  That equivalence
unlocks the classical sort-filter-skyline toolbox:

* **row dedup** -- objects sharing a ``hi`` row are interchangeable as
  dominators, objects sharing a ``lo`` (= values) row have identical
  dominator sets; one comparison of distinct rows decides whole groups
  of object pairs at once;
* **presorting** -- distinct ``hi`` rows are lexicographically sorted
  (most-selective attribute first, descending), so fixed-size blocks are
  homogeneous in their leading attributes and likely dominators come
  first;
* **block bounds** -- each block keeps per-attribute min/max and a
  max attribute-sum; a block whose max falls below ``lo(o)`` anywhere is
  *bulk-rejected* (no member, nothing tested), a block whose min clears
  ``lo(o)`` everywhere is *bulk-accepted* (all members, counted without
  testing);
* **alpha early exit** -- counting runs in stages over the sorted
  blocks; a group whose running dominator count crosses the
  ``alpha * n`` threshold is alpha-pruned and scans no further block.

Skipped pairs provably produce no clauses: bulk-rejected blocks contain
no dominator of ``o`` (so no clause source), and pairs behind an alpha
early exit belong to objects whose condition is the constant *false*
(``phi(o)`` never materializes their clauses).  The scan is therefore a
pure pre-pass: surviving objects get exactly the dominator sets of
:func:`repro.ctable.dominators.dominator_sets`, and clause emission is
byte-identical to the unpruned backends.

The per-group scan is embarrassingly parallel; with ``n_jobs > 1`` group
ranges are sharded over :mod:`repro.parallel` workers that attach the
index arrays from shared memory.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..datasets.dataset import IncompleteDataset
from ..parallel import (
    SharedArrayBundle,
    attach_arrays,
    decide_workers,
    detach_all,
    run_sharded,
)

__all__ = ["PruneScan", "pruned_dominator_scan", "PRUNE_MODES"]

#: ``build_ctable(prune=...)`` modes: ``auto`` turns the pre-pass on for
#: the vectorized backend, ``on``/``off`` force it.
PRUNE_MODES = ("auto", "on", "off")

#: Distinct ``hi`` rows per bound block.  Small blocks mean tight
#: min/max bounds (more bulk accept/reject); 32 rows keeps the
#: membership kernels wide enough to stay vectorization-bound.
DEFAULT_BLOCK_SIZE = 32

#: Early-exit stages per scan: alpha-decided groups stop scanning at the
#: next stage boundary.
DEFAULT_STAGES = 8

#: Below this many distinct value-row groups a pool cannot amortize its
#: startup; the scan runs in-process.
MIN_GROUPS_PER_WORKER = 512


class PruneScan:
    """Outcome of the pruning pre-pass, in object (not group) terms."""

    def __init__(
        self,
        dominator_counts: np.ndarray,
        open_sets: Dict[int, np.ndarray],
        stats: Dict[str, object],
    ) -> None:
        #: ``|D(o)|`` per object (exact for open objects; a lower bound
        #: above the alpha limit for early-exited ones)
        self.dominator_counts = dominator_counts
        #: object -> sorted dominator indices, for objects with
        #: ``0 < |D(o)| <= limit`` only
        self.open_sets = open_sets
        self.stats = stats


# ----------------------------------------------------------------------
# index construction
# ----------------------------------------------------------------------
def _build_index(dataset: IncompleteDataset, block_size: int):
    """Dedup, presort and bound the filled matrices; all plain arrays."""
    values = dataset.values
    mask = dataset.mask
    dmax = np.asarray(dataset.domain_sizes, dtype=np.int64) - 1
    hi = np.where(mask, dmax[None, :], values)

    rhi, hi_inv, hi_cnt = np.unique(hi, axis=0, return_inverse=True, return_counts=True)
    rlo, lo_inv, lo_cnt = np.unique(
        values, axis=0, return_inverse=True, return_counts=True
    )
    hi_inv = hi_inv.ravel()
    lo_inv = lo_inv.ravel()

    # Lexicographic descending sort, most-selective (largest-domain)
    # attribute as the primary key: blocks become homogeneous in their
    # leading attributes, which is what makes the bounds bite.
    col_order = np.argsort(-dmax, kind="stable")
    order = np.lexsort(tuple(rhi[:, c] for c in reversed(col_order)))[::-1]
    rank = np.empty(len(order), dtype=np.int64)
    rank[order] = np.arange(len(order))

    rhi_s = np.ascontiguousarray(rhi[order])
    rcnt_s = hi_cnt[order].astype(np.int64)
    s_hi_s = rhi_s.sum(axis=1)

    h = len(rhi_s)
    nb = -(-h // block_size)
    starts = np.arange(nb, dtype=np.int64) * block_size
    ends = np.minimum(starts + block_size, h)
    bmax = np.stack([rhi_s[s:e].max(axis=0) for s, e in zip(starts, ends)])
    bmin = np.stack([rhi_s[s:e].min(axis=0) for s, e in zip(starts, ends)])
    bsmax = np.array([s_hi_s[s:e].max() for s, e in zip(starts, ends)])
    cum = np.concatenate(([0], np.cumsum(rcnt_s)))
    bcnt = cum[ends] - cum[starts]

    # objects of each sorted distinct-hi row, as one packed array
    sorted_row_of_obj = rank[hi_inv]
    obj_by_row = np.argsort(sorted_row_of_obj, kind="stable").astype(np.int64)
    row_obj_offsets = np.concatenate(([0], np.cumsum(rcnt_s)))

    arrays = {
        "rhi_s": rhi_s,
        "rcnt_s": rcnt_s,
        "bmax": bmax,
        "bmin": bmin,
        "bsmax": bsmax,
        "bcnt": bcnt.astype(np.int64),
        "rlo": np.ascontiguousarray(rlo),
        "slo": rlo.sum(axis=1).astype(np.int64),
    }
    meta = {
        "lo_inv": lo_inv,
        "lo_cnt": lo_cnt.astype(np.int64),
        "obj_by_row": obj_by_row,
        "row_obj_offsets": row_obj_offsets,
        "block_of_obj": sorted_row_of_obj // block_size,
        "n_blocks": nb,
        "block_size": block_size,
    }
    return arrays, meta


# ----------------------------------------------------------------------
# the scan kernel (runs in-process or inside pool workers)
# ----------------------------------------------------------------------
#: admissibility is computed in group chunks to bound the broadcast
#: intermediates to ``chunk * n_blocks * d`` bools
_ADMISSIBILITY_CHUNK = 2048


def _scan_groups(
    arrays, g0: int, g1: int, limit: float, n_stages: int, block_size: int
):
    """Counts, coverage and open-group members for lo-groups ``[g0, g1)``.

    Pure function of the index arrays: deterministic and side-effect
    free, so sharding it over processes cannot change any decision.
    """
    rhi_s = arrays["rhi_s"]
    rcnt_s = arrays["rcnt_s"]
    bmax, bmin, bsmax, bcnt = (
        arrays["bmax"], arrays["bmin"], arrays["bsmax"], arrays["bcnt"],
    )
    rlo = arrays["rlo"][g0:g1]
    slo = arrays["slo"][g0:g1]
    m = g1 - g0
    nb = len(bcnt)

    accept = np.zeros((m, nb), dtype=bool)
    test = np.zeros((m, nb), dtype=bool)
    for c0 in range(0, m, _ADMISSIBILITY_CHUNK):
        c1 = min(c0 + _ADMISSIBILITY_CHUNK, m)
        chunk = rlo[c0:c1]
        reject = (chunk[:, None, :] > bmax[None, :, :]).any(axis=2)
        reject |= slo[c0:c1, None] > bsmax[None, :]
        acc = ~reject & (chunk[:, None, :] <= bmin[None, :, :]).all(axis=2)
        accept[c0:c1] = acc
        test[c0:c1] = ~reject & ~acc

    counts = accept @ bcnt
    covered = np.zeros(m, dtype=np.int64)
    tested = np.zeros((m, nb), dtype=bool)
    alive = np.ones(m, dtype=bool)
    stage_bounds = np.linspace(0, nb, min(n_stages, nb) + 1).astype(np.int64)
    for si in range(len(stage_bounds) - 1):
        for b in range(stage_bounds[si], stage_bounds[si + 1]):
            gsel = np.nonzero(test[:, b] & alive)[0]
            if gsel.size == 0:
                continue
            s, e = b * block_size, min((b + 1) * block_size, len(rhi_s))
            block = rhi_s[s:e]
            memb = (block[None, :, :] >= rlo[gsel, None, :]).all(axis=2)
            counts[gsel] += memb @ rcnt_s[s:e]
            covered[gsel] += bcnt[b]
            tested[gsel, b] = True
        alive &= (counts - 1) <= limit

    # Second pass: distinct-row member lists, only for groups whose
    # objects keep a symbolic condition (0 < |D| <= limit).  Re-tests
    # already-counted pairs, so it adds nothing to the coverage stats.
    open_groups = np.nonzero((counts - 1 > 0) & (counts - 1 <= limit))[0]
    member_rows: List[np.ndarray] = []
    member_offsets = np.zeros(len(open_groups) + 1, dtype=np.int64)
    for i, g in enumerate(open_groups.tolist()):
        L = rlo[g]
        rows: List[np.ndarray] = []
        for b in np.nonzero(accept[g] | test[g])[0].tolist():
            s, e = b * block_size, min((b + 1) * block_size, len(rhi_s))
            if accept[g, b]:
                rows.append(np.arange(s, e, dtype=np.int64))
            else:
                hit = np.nonzero((rhi_s[s:e] >= L).all(axis=1))[0]
                if hit.size:
                    rows.append(hit.astype(np.int64) + s)
        group_rows = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        )
        member_rows.append(group_rows)
        member_offsets[i + 1] = member_offsets[i] + group_rows.size
    members = (
        np.concatenate(member_rows) if member_rows else np.empty(0, dtype=np.int64)
    )
    return counts, covered, tested, open_groups + g0, members, member_offsets


def _scan_shard(payload):
    """Pool worker: attach the shared index and scan one group range."""
    handle, g0, g1, limit, n_stages, block_size = payload
    arrays = attach_arrays(handle)
    return _scan_groups(arrays, g0, g1, limit, n_stages, block_size)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def pruned_dominator_scan(
    dataset: IncompleteDataset,
    limit: float,
    block_size: Optional[int] = None,
    n_stages: Optional[int] = None,
    n_jobs: int = 1,
    cancel_check=None,
) -> PruneScan:
    """Run the pruning pre-pass and return per-object decisions.

    ``limit`` is the alpha threshold ``alpha * n``: objects whose
    dominator count exceeds it are alpha-pruned without an exact count.
    ``block_size``/``n_stages`` default by cardinality: larger datasets
    take bigger blocks (amortize per-block dispatch) and more early-exit
    stages (alpha decisions come faster relative to the block count).
    """
    start = time.perf_counter()
    n = dataset.n_objects
    if block_size is None:
        block_size = DEFAULT_BLOCK_SIZE if n < 50_000 else 2 * DEFAULT_BLOCK_SIZE
    if n_stages is None:
        n_stages = DEFAULT_STAGES if n < 50_000 else DEFAULT_STAGES + 4
    if n == 0:
        return PruneScan(
            np.zeros(0, dtype=np.int64),
            {},
            {
                "prune_enabled": True,
                "pairs_tested": 0,
                "pairs_pruned": 0,
                "pair_universe": 0,
                "blocks_sharded": 0,
                "scan_workers": 1,
                "scan_decision": "sequential: empty dataset",
                "scan_seconds": 0.0,
                "scan_worker_seconds": [],
                "scan_worker_seconds_max": 0.0,
            },
        )
    arrays, meta = _build_index(dataset, max(1, int(block_size)))
    lo_inv = meta["lo_inv"]
    lo_cnt = meta["lo_cnt"]
    n_groups = len(lo_cnt)
    if cancel_check is not None:
        cancel_check()

    decision = decide_workers(n_jobs, n_groups, MIN_GROUPS_PER_WORKER)
    if decision.parallel:
        bundle = SharedArrayBundle.publish(arrays)
        try:
            bounds = np.linspace(
                0, n_groups, decision.n_workers * 4 + 1
            ).astype(np.int64)
            shards = [
                (
                    bundle.handle,
                    int(g0),
                    int(g1),
                    float(limit),
                    int(n_stages),
                    int(meta["block_size"]),
                )
                for g0, g1 in zip(bounds[:-1], bounds[1:])
                if g1 > g0
            ]
            run = run_sharded(_scan_shard, shards, decision.n_workers)
        finally:
            bundle.unlink()
            # the in-process fallback path attaches in *this* process;
            # results are copies, so dropping the mappings is safe
            detach_all()
        blocks_sharded = len(shards)
        worker_seconds = run.worker_seconds
        parts = run.results
    else:
        if cancel_check is not None:
            cancel_check()
        t0 = time.perf_counter()
        parts = [
            _scan_groups(
                arrays, 0, n_groups, float(limit), int(n_stages),
                int(meta["block_size"]),
            )
        ]
        blocks_sharded = 1
        worker_seconds = [time.perf_counter() - t0]

    counts = np.concatenate([part[0] for part in parts])
    covered = np.concatenate([part[1] for part in parts])
    tested = np.vstack([part[2] for part in parts])

    # Exact pair accounting: coverage counts objects per tested block,
    # so subtract each object whose own hi-row block was tested by its
    # own group (the (o, o) cell of the relation is not a pair).
    self_hits = int(tested[lo_inv, meta["block_of_obj"]].sum())
    pairs_tested = int((covered * lo_cnt).sum()) - self_hits
    pair_universe = n * (n - 1)

    # Distinct-row member lists -> per-object dominator sets.  All
    # objects of one lo-group share the member objects; each drops only
    # itself (every object is a member of its own group's relation).
    obj_by_row = meta["obj_by_row"]
    row_off = meta["row_obj_offsets"]
    open_sets: Dict[int, np.ndarray] = {}
    group_objects = np.argsort(lo_inv, kind="stable")
    group_off = np.concatenate(([0], np.cumsum(lo_cnt)))
    for part in parts:
        __, __, __, open_groups, members, offsets = part
        for i, g in enumerate(open_groups.tolist()):
            rows = members[offsets[i]:offsets[i + 1]]
            objs = np.sort(
                np.concatenate(
                    [obj_by_row[row_off[r]:row_off[r + 1]] for r in rows.tolist()]
                )
            )
            for o in group_objects[group_off[g]:group_off[g + 1]].tolist():
                pos = np.searchsorted(objs, o)
                open_sets[o] = np.delete(objs, pos)

    per_object_counts = (counts - 1)[lo_inv]
    stats = {
        "prune_enabled": True,
        "pairs_tested": pairs_tested,
        "pairs_pruned": pair_universe - pairs_tested,
        "pair_universe": pair_universe,
        "prune_blocks": int(meta["n_blocks"]),
        "prune_block_size": int(meta["block_size"]),
        "distinct_hi_rows": int(len(arrays["rhi_s"])),
        "distinct_lo_rows": int(n_groups),
        "blocks_sharded": int(blocks_sharded),
        "scan_workers": int(decision.n_workers),
        "scan_decision": decision.reason,
        "scan_seconds": time.perf_counter() - start,
        "scan_worker_seconds": [float(s) for s in worker_seconds],
        "scan_worker_seconds_max": float(max(worker_seconds, default=0.0)),
    }
    return PruneScan(per_object_counts, open_sets, stats)
