"""C-table model: expressions, CNF conditions, dominator sets, Get-CTable."""

from .condition import Clause, Condition, ExpressionResolver
from .constraints import INFERENCE_MODES, VariableConstraints
from .construction import BACKENDS, build_ctable
from .ctable import CTable
from .dominators import (
    DOMINATOR_METHODS,
    dominator_sets,
    dominator_sets_baseline,
    dominator_sets_fast,
    dominator_sets_numpy,
)
from .pruning import PRUNE_MODES, PruneScan, pruned_dominator_scan
from .expression import (
    Const,
    Expression,
    Operand,
    Relation,
    Var,
    const_greater_var,
    var_greater_const,
    var_greater_var,
)

__all__ = [
    "Clause",
    "Condition",
    "ExpressionResolver",
    "VariableConstraints",
    "INFERENCE_MODES",
    "build_ctable",
    "BACKENDS",
    "CTable",
    "DOMINATOR_METHODS",
    "dominator_sets",
    "dominator_sets_baseline",
    "dominator_sets_fast",
    "dominator_sets_numpy",
    "PRUNE_MODES",
    "PruneScan",
    "pruned_dominator_scan",
    "Const",
    "Expression",
    "Operand",
    "Relation",
    "Var",
    "const_greater_var",
    "var_greater_const",
    "var_greater_var",
]
