"""C-table model: expressions, CNF conditions, dominator sets, Get-CTable."""

from .condition import Clause, Condition, ExpressionResolver
from .constraints import INFERENCE_MODES, VariableConstraints
from .construction import build_ctable
from .ctable import CTable
from .dominators import (
    dominator_sets,
    dominator_sets_baseline,
    dominator_sets_fast,
)
from .expression import (
    Const,
    Expression,
    Operand,
    Relation,
    Var,
    const_greater_var,
    var_greater_const,
    var_greater_var,
)

__all__ = [
    "Clause",
    "Condition",
    "ExpressionResolver",
    "VariableConstraints",
    "INFERENCE_MODES",
    "build_ctable",
    "CTable",
    "dominator_sets",
    "dominator_sets_baseline",
    "dominator_sets_fast",
    "Const",
    "Expression",
    "Operand",
    "Relation",
    "Var",
    "const_greater_var",
    "var_greater_const",
    "var_greater_var",
]
