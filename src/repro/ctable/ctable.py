"""The c-table: object -> condition mapping plus the answer knowledge base.

Definition 3 of the paper: a c-table is a set of ``<object, phi(object)>``
pairs.  This class additionally owns the :class:`VariableConstraints`
gathered from crowd answers and keeps conditions simplified against them,
which is how "some conditions will turn true or false, some shall be
simplified or remain the same" after each round (Algorithm 4, line 25).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..datasets.dataset import IncompleteDataset, Variable
from .condition import Condition
from .constraints import VariableConstraints
from .expression import Expression, Relation


@dataclass
class CTable:
    """Conditions for every object of one skyline query."""

    dataset: IncompleteDataset
    conditions: Dict[int, Condition]
    pruned: FrozenSet[int] = frozenset()
    #: answer-inference level: "direct", "intervals" or "full"
    inference_mode: str = "full"
    #: construction perf counters (backend, seconds, pairs/sec, ...)
    build_stats: Dict[str, float] = field(default_factory=dict)
    constraints: VariableConstraints = field(init=False)
    _var_index: Dict[Variable, Set[int]] = field(init=False)
    #: occurrences of each open expression across all conditions, kept in
    #: sync by the answer-application deltas (no per-round recounting)
    _expr_index: Counter = field(init=False)

    def __post_init__(self) -> None:
        if set(self.conditions) != set(range(self.dataset.n_objects)):
            raise ValueError("c-table must cover every object exactly once")
        self.constraints = VariableConstraints(
            self.dataset.domain_sizes, mode=self.inference_mode
        )
        self._var_index = {}
        self._expr_index = Counter()
        for obj, condition in self.conditions.items():
            for variable in condition.variables():
                self._var_index.setdefault(variable, set()).add(obj)
            self._expr_index.update(condition.expression_counts())

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def condition(self, obj: int) -> Condition:
        return self.conditions[obj]

    def certain_answers(self) -> List[int]:
        """Objects whose condition is the constant ``true``."""
        return sorted(o for o, c in self.conditions.items() if c.is_true)

    def certain_non_answers(self) -> List[int]:
        return sorted(o for o, c in self.conditions.items() if c.is_false)

    def undecided(self) -> List[int]:
        """Objects with a symbolic condition (candidates for crowdsourcing)."""
        return sorted(o for o, c in self.conditions.items() if not c.is_constant)

    def has_open_expressions(self) -> bool:
        """True while any condition still contains an expression."""
        return any(not c.is_constant for c in self.conditions.values())

    def open_expressions(self) -> Iterator[Tuple[int, Expression]]:
        """All ``(object, expression)`` pairs still present in conditions."""
        for obj in self.undecided():
            for expression in self.conditions[obj].distinct_expressions():
                yield obj, expression

    def objects_mentioning(self, variable: Variable) -> FrozenSet[int]:
        return frozenset(self._var_index.get(variable, ()))

    def expression_frequency(self, expression: Expression) -> int:
        """Occurrences of one expression across all conditions (O(1))."""
        return self._expr_index.get(expression, 0)

    def expression_frequencies(self) -> Counter:
        """Occurrences of every open expression across all conditions.

        A copy of the incrementally maintained index; equal to recounting
        every condition's :meth:`Condition.expression_counts` from scratch.
        """
        return Counter(self._expr_index)

    def n_open_expressions(self) -> int:
        return sum(
            len(c.distinct_expressions())
            for c in self.conditions.values()
            if not c.is_constant
        )

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def apply_answer(
        self, expression: Expression, relation: Relation
    ) -> FrozenSet[int]:
        """Fold one crowd answer into the constraints and re-simplify.

        Only conditions mentioning a potentially-affected variable are
        touched (the answered variables, plus -- for variable-vs-variable
        answers -- their whole ordering component, since transitive
        inference can resolve expressions anywhere inside it).  Returns
        those objects so callers can re-rank incrementally: every other
        condition's probability is unchanged by this answer.
        """
        variables = self.constraints.apply_answer(expression, relation)
        affected: Set[int] = set()
        for variable in variables:
            affected |= self._var_index.get(variable, set())
        for obj in affected:
            self._resimplify(obj)
        return frozenset(affected)

    def resimplify_all(self) -> None:
        """Re-simplify every symbolic condition against current constraints."""
        for obj in self.undecided():
            self._resimplify(obj)

    def _resimplify(self, obj: int) -> None:
        old = self.conditions[obj]
        if old.is_constant:
            return
        new = old.simplify_with(self.constraints.resolve)
        if new is old:
            return
        self.conditions[obj] = new
        self._update_expr_index(old, new)
        old_vars = old.variables()
        new_vars = new.variables()
        for variable in old_vars - new_vars:
            bucket = self._var_index.get(variable)
            if bucket is not None:
                bucket.discard(obj)
                if not bucket:
                    del self._var_index[variable]

    def _update_expr_index(self, old: Condition, new: Condition) -> None:
        """Apply one condition replacement to the expression-frequency index."""
        old_counts = old.expression_counts()
        self._expr_index.subtract(old_counts)
        self._expr_index.update(new.expression_counts())
        # Counter.subtract keeps zeroed keys; drop them so iteration and
        # copies stay proportional to the *open* expression set.
        for expression in old_counts:
            if self._expr_index[expression] <= 0:
                del self._expr_index[expression]

    def set_condition(self, obj: int, condition: Condition) -> None:
        """Replace one object's condition (used by tests and extensions)."""
        old = self.conditions[obj]
        self.conditions[obj] = condition
        self._update_expr_index(old, condition)
        for variable in old.variables() - condition.variables():
            bucket = self._var_index.get(variable)
            if bucket is not None:
                bucket.discard(obj)
                if not bucket:
                    del self._var_index[variable]
        for variable in condition.variables() - old.variables():
            self._var_index.setdefault(variable, set()).add(obj)

    # ------------------------------------------------------------------
    # result inference
    # ------------------------------------------------------------------
    def result_set(
        self,
        probability: Optional["ProbabilityFn"] = None,
        threshold: float = 0.5,
    ) -> List[int]:
        """Infer the current answer set (Section 7: ``true`` or ``Pr > 0.5``).

        ``probability`` maps a symbolic condition to ``Pr(phi)``; when it is
        omitted only certainly-true objects are returned.
        """
        answers = [o for o, c in self.conditions.items() if c.is_true]
        if probability is not None:
            for obj in self.undecided():
                if probability(self.conditions[obj]) > threshold:
                    answers.append(obj)
        return sorted(answers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CTable(objects=%d, true=%d, false=%d, open=%d)" % (
            len(self.conditions),
            len(self.certain_answers()),
            len(self.certain_non_answers()),
            len(self.undecided()),
        )


# typing helper (kept at module end to avoid a circular import with
# probability.engine, which depends on Condition)
from typing import Callable  # noqa: E402

ProbabilityFn = Callable[[Condition], float]
