"""Dominator sets (Definition 5 / Eq. 1).

``D(o)`` contains every object that *possibly* dominates ``o``:

    D(o)   = intersection over attributes i of D_i(o)
    D_i(o) = { p != o : p misses attribute i or p.[i] >= o.[i] }   if o.[i] observed
           = all other objects                                      if o.[i] missing

Two derivations are provided, matching the paper's Figure 2 comparison:

Three derivations are provided:

* :func:`dominator_sets_baseline` -- "simple pairwise comparisons between
  objects", pure Python, quadratic with per-pair attribute scans.
* :func:`dominator_sets_fast` -- the Get-CTable derivation, which orders
  attributes by selectivity and intersects candidate sets with vectorized
  (bitwise) boolean operations over numpy arrays, shrinking the candidate
  index set attribute by attribute (one Python iteration per object).
* :func:`dominator_sets_numpy` -- full NumPy broadcasting over the
  ``(n, d)`` value matrix and missing-value mask: the possible-dominator
  relation of a whole block of objects is materialized as one boolean
  ``(block, n)`` matrix, so dominance tests, membership counts and
  alpha-pruning all become bulk array operations.  This is the engine
  behind ``build_ctable(backend="numpy")``.

All three produce identical (sorted) dominator sets.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..datasets.dataset import IncompleteDataset

#: Target element count of one broadcast block (block * n * d bools);
#: keeps peak intermediate memory around tens of megabytes.
_BLOCK_ELEMENTS = 1 << 24


def dominator_sets_baseline(dataset: IncompleteDataset) -> List[np.ndarray]:
    """Pairwise-comparison derivation of every dominator set (reference)."""
    n = dataset.n_objects
    d = dataset.n_attributes
    values = dataset.values
    mask = dataset.mask
    result: List[np.ndarray] = []
    for o in range(n):
        members = []
        for p in range(n):
            if p == o:
                continue
            possible = True
            for i in range(d):
                if mask[o, i]:
                    continue  # D_i(o) is the superset: no constraint
                if mask[p, i]:
                    continue  # p in O_i: allowed
                if values[p, i] < values[o, i]:
                    possible = False
                    break
            if possible:
                members.append(p)
        result.append(np.array(members, dtype=np.int64))
    return result


def dominator_sets_fast(dataset: IncompleteDataset) -> List[np.ndarray]:
    """Vectorized derivation used by Get-CTable.

    For each object the candidate set starts as "everyone else" and is
    intersected per observed attribute with ``missing_i | (column_i >= o_i)``
    using numpy boolean kernels.  Attributes are visited most-selective
    first (highest value of ``o`` relative to the column), so the candidate
    index array collapses quickly and later attributes touch few rows.
    """
    n = dataset.n_objects
    values = dataset.values
    mask = dataset.mask

    # Selectivity estimate per cell: fraction of the column that is >= the
    # cell's value or missing.  Precomputed from per-column value counts.
    column_counts = []
    for j, size in enumerate(dataset.domain_sizes):
        observed = values[~mask[:, j], j]
        counts = np.bincount(observed, minlength=size)
        # at_least[v] = number of observed entries >= v
        at_least = np.cumsum(counts[::-1])[::-1]
        column_counts.append(at_least + int(mask[:, j].sum()))
    column_counts = [np.asarray(c, dtype=np.int64) for c in column_counts]

    result: List[np.ndarray] = []
    all_indices = np.arange(n)
    for o in range(n):
        observed_attrs = [j for j in range(dataset.n_attributes) if not mask[o, j]]
        # Most selective attribute first: fewest objects can match it.
        observed_attrs.sort(key=lambda j: int(column_counts[j][values[o, j]]))
        candidates = all_indices
        for j in observed_attrs:
            column = values[candidates, j]
            missing = mask[candidates, j]
            keep = missing | (column >= values[o, j])
            candidates = candidates[keep]
            if candidates.size == 0:
                break
        candidates = candidates[candidates != o]
        result.append(np.sort(candidates).astype(np.int64))
    return result


def _block_size(n: int, d: int, block_size: Optional[int]) -> int:
    if block_size is not None:
        return max(1, int(block_size))
    return max(1, _BLOCK_ELEMENTS // max(1, n * max(1, d)))


def possible_dominator_blocks(
    dataset: IncompleteDataset, block_size: Optional[int] = None
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(start, possible)`` blocks of the possible-dominator relation.

    ``possible[b, p]`` is True when object ``p`` possibly dominates object
    ``start + b`` (Eq. 1), with the diagonal (``p == start + b``) cleared.
    Blocks are sized so one broadcast intermediate stays small enough to
    live in cache-friendly memory regardless of ``n``.
    """
    values = dataset.values
    mask = dataset.mask
    n = dataset.n_objects
    step = _block_size(n, dataset.n_attributes, block_size)
    for start in range(0, n, step):
        stop = min(start + step, n)
        vo = values[start:stop, None, :]  # (B, 1, d)
        mo = mask[start:stop, None, :]
        # D_i membership per cell: o misses i (no constraint), p misses i,
        # or p is at least as good on i.
        ok = mo | mask[None, :, :] | (values[None, :, :] >= vo)
        possible = ok.all(axis=2)
        possible[np.arange(stop - start), np.arange(start, stop)] = False
        yield start, possible


def dominator_sets_numpy(
    dataset: IncompleteDataset, block_size: Optional[int] = None
) -> List[np.ndarray]:
    """Bulk NumPy-broadcast derivation of every dominator set."""
    result: List[np.ndarray] = []
    for __, possible in possible_dominator_blocks(dataset, block_size):
        for row in possible:
            result.append(np.nonzero(row)[0].astype(np.int64))
    return result


#: Available derivations, in preference order.
DOMINATOR_METHODS = ("numpy", "fast", "baseline")


def dominator_sets(
    dataset: IncompleteDataset, method: str = "fast"
) -> List[np.ndarray]:
    """Dispatch between the derivations (all produce identical sets)."""
    if method == "numpy":
        return dominator_sets_numpy(dataset)
    if method == "fast":
        return dominator_sets_fast(dataset)
    if method == "baseline":
        return dominator_sets_baseline(dataset)
    raise ValueError("unknown dominator-set method %r" % method)
