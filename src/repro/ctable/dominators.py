"""Dominator sets (Definition 5 / Eq. 1).

``D(o)`` contains every object that *possibly* dominates ``o``:

    D(o)   = intersection over attributes i of D_i(o)
    D_i(o) = { p != o : p misses attribute i or p.[i] >= o.[i] }   if o.[i] observed
           = all other objects                                      if o.[i] missing

Two derivations are provided, matching the paper's Figure 2 comparison:

* :func:`dominator_sets_baseline` -- "simple pairwise comparisons between
  objects", pure Python, quadratic with per-pair attribute scans.
* :func:`dominator_sets_fast` -- the Get-CTable derivation, which orders
  attributes by selectivity and intersects candidate sets with vectorized
  (bitwise) boolean operations over numpy arrays, shrinking the candidate
  index set attribute by attribute.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..datasets.dataset import IncompleteDataset


def dominator_sets_baseline(dataset: IncompleteDataset) -> List[np.ndarray]:
    """Pairwise-comparison derivation of every dominator set (reference)."""
    n = dataset.n_objects
    d = dataset.n_attributes
    values = dataset.values
    mask = dataset.mask
    result: List[np.ndarray] = []
    for o in range(n):
        members = []
        for p in range(n):
            if p == o:
                continue
            possible = True
            for i in range(d):
                if mask[o, i]:
                    continue  # D_i(o) is the superset: no constraint
                if mask[p, i]:
                    continue  # p in O_i: allowed
                if values[p, i] < values[o, i]:
                    possible = False
                    break
            if possible:
                members.append(p)
        result.append(np.array(members, dtype=np.int64))
    return result


def dominator_sets_fast(dataset: IncompleteDataset) -> List[np.ndarray]:
    """Vectorized derivation used by Get-CTable.

    For each object the candidate set starts as "everyone else" and is
    intersected per observed attribute with ``missing_i | (column_i >= o_i)``
    using numpy boolean kernels.  Attributes are visited most-selective
    first (highest value of ``o`` relative to the column), so the candidate
    index array collapses quickly and later attributes touch few rows.
    """
    n = dataset.n_objects
    values = dataset.values
    mask = dataset.mask

    # Selectivity estimate per cell: fraction of the column that is >= the
    # cell's value or missing.  Precomputed from per-column value counts.
    column_counts = []
    for j, size in enumerate(dataset.domain_sizes):
        observed = values[~mask[:, j], j]
        counts = np.bincount(observed, minlength=size)
        # at_least[v] = number of observed entries >= v
        at_least = np.cumsum(counts[::-1])[::-1]
        column_counts.append(at_least + int(mask[:, j].sum()))
    column_counts = [np.asarray(c, dtype=np.int64) for c in column_counts]

    result: List[np.ndarray] = []
    all_indices = np.arange(n)
    for o in range(n):
        observed_attrs = [j for j in range(dataset.n_attributes) if not mask[o, j]]
        # Most selective attribute first: fewest objects can match it.
        observed_attrs.sort(key=lambda j: int(column_counts[j][values[o, j]]))
        candidates = all_indices
        for j in observed_attrs:
            column = values[candidates, j]
            missing = mask[candidates, j]
            keep = missing | (column >= values[o, j])
            candidates = candidates[keep]
            if candidates.size == 0:
                break
        candidates = candidates[candidates != o]
        result.append(np.sort(candidates).astype(np.int64))
    return result


def dominator_sets(
    dataset: IncompleteDataset, method: str = "fast"
) -> List[np.ndarray]:
    """Dispatch between the two derivations."""
    if method == "fast":
        return dominator_sets_fast(dataset)
    if method == "baseline":
        return dominator_sets_baseline(dataset)
    raise ValueError("unknown dominator-set method %r" % method)
