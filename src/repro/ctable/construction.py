"""Get-CTable (Algorithm 2): building the c-table for a skyline query.

For every object ``o``:

1. derive the dominator set ``D(o)`` (Eq. 1);
2. ``D(o)`` empty            -> ``phi(o) = true``  (certain answer);
3. ``|D(o)| > alpha * |O|``  -> ``phi(o) = false`` (alpha-pruned: too many
   potential dominators, near-zero answer probability, huge condition);
4. some fully-observed ``o'`` in ``D(o)`` dominates a fully-observed ``o``
   under Definition 1 -> ``phi(o) = false``;
5. otherwise ``phi(o)`` is the CNF "no dominator candidate actually
   dominates o": one clause per ``p`` in ``D(o)``, with disjuncts
   ``o.[k] > p.[k]`` per attribute, where cells that are missing become
   variables.

Both-observed disjuncts evaluate immediately; like the paper's CNF we
ignore the measure-zero "all remaining attributes tie exactly" case for
pairs involving missing values, but fully-observed pairs are decided
exactly under Definition 1 (so exact duplicates never eliminate each
other).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..datasets.dataset import IncompleteDataset
from .condition import Condition
from .ctable import CTable
from .dominators import dominator_sets
from .expression import Const, Expression, Var


def _clause_for_pair(
    dataset: IncompleteDataset, o: int, p: int
) -> Optional[List[Expression]]:
    """The disjunction encoding ``p`` does not dominate ``o``.

    Returns ``None`` when the clause is trivially true (droppable) and an
    empty list when it is trivially false (``p`` certainly dominates ``o``).
    """
    values = dataset.values
    mask = dataset.mask
    clause: List[Expression] = []
    strictly_better_somewhere = False  # p > o on some fully-observed attribute
    for k in range(dataset.n_attributes):
        o_missing = bool(mask[o, k])
        p_missing = bool(mask[p, k])
        if not o_missing and not p_missing:
            if values[o, k] > values[p, k]:
                return None  # o certainly beats p here: p can never dominate
            if values[p, k] > values[o, k]:
                strictly_better_somewhere = True
            continue  # false disjunct: drop it
        if o_missing and p_missing:
            clause.append(Expression(Var(o, k), Var(p, k)))
        elif o_missing:
            clause.append(Expression(Var(o, k), Const(int(values[p, k]))))
        else:
            clause.append(Expression(Const(int(values[o, k])), Var(p, k)))
    if not clause:
        # Fully comparable pair with p >= o everywhere (a strict o-win would
        # have returned early): p dominates o iff it is strictly better
        # somewhere (Definition 1).  All-equal rows do not dominate.
        if strictly_better_somewhere:
            return []
        return None
    return clause


def build_ctable(
    dataset: IncompleteDataset,
    alpha: float = 1.0,
    dominator_method: str = "fast",
    inference_mode: str = "full",
) -> CTable:
    """Run Algorithm 2 and return the populated :class:`CTable`.

    Parameters
    ----------
    alpha:
        Pruning threshold: objects with more than ``alpha * |O|`` potential
        dominators are deemed non-answers outright (their true answer
        probability is near zero and their conditions would be huge).
        ``alpha >= 1`` disables pruning.
    dominator_method:
        ``"fast"`` (Get-CTable's sorted/bitwise derivation) or
        ``"baseline"`` (pairwise comparisons), per Figure 2.
    inference_mode:
        how aggressively crowd answers are propagated afterwards
        (see :data:`repro.ctable.constraints.INFERENCE_MODES`).
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    sets = dominator_sets(dataset, method=dominator_method)
    n = dataset.n_objects
    limit = alpha * n
    conditions = {}
    pruned = set()

    values = dataset.values
    mask = dataset.mask
    complete_object = ~mask.any(axis=1)

    for o in range(n):
        dominators = sets[o]
        if dominators.size == 0:
            conditions[o] = Condition.true()
            continue
        if dominators.size > limit:
            conditions[o] = Condition.false()
            pruned.add(o)
            continue
        condition = _build_condition(
            dataset, o, dominators, values, mask, complete_object
        )
        conditions[o] = condition
    return CTable(
        dataset=dataset,
        conditions=conditions,
        pruned=frozenset(pruned),
        inference_mode=inference_mode,
    )


def _build_condition(
    dataset: IncompleteDataset,
    o: int,
    dominators: np.ndarray,
    values: np.ndarray,
    mask: np.ndarray,
    complete_object: np.ndarray,
) -> Condition:
    """Steps 4-5 of Algorithm 2 for one object."""
    # Line 8: a fully-observed dominator beating a fully-observed o decides
    # the condition immediately, without building any clause.
    if complete_object[o]:
        for p in dominators.tolist():
            if not complete_object[p]:
                continue
            if (values[p] >= values[o]).all() and (values[p] > values[o]).any():
                return Condition.false()

    clauses: List[List[Expression]] = []
    for p in dominators.tolist():
        clause = _clause_for_pair(dataset, o, p)
        if clause is None:
            continue  # p can never dominate o
        if not clause:
            return Condition.false()  # p certainly dominates o
        clauses.append(clause)
    if not clauses:
        return Condition.true()
    return Condition.of(clauses)
