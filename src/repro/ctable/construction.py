"""Get-CTable (Algorithm 2): building the c-table for a skyline query.

For every object ``o``:

1. derive the dominator set ``D(o)`` (Eq. 1);
2. ``D(o)`` empty            -> ``phi(o) = true``  (certain answer);
3. ``|D(o)| > alpha * |O|``  -> ``phi(o) = false`` (alpha-pruned: too many
   potential dominators, near-zero answer probability, huge condition);
4. some fully-observed ``o'`` in ``D(o)`` dominates a fully-observed ``o``
   under Definition 1 -> ``phi(o) = false``;
5. otherwise ``phi(o)`` is the CNF "no dominator candidate actually
   dominates o": one clause per ``p`` in ``D(o)``, with disjuncts
   ``o.[k] > p.[k]`` per attribute, where cells that are missing become
   variables.

Both-observed disjuncts evaluate immediately; like the paper's CNF we
ignore the measure-zero "all remaining attributes tie exactly" case for
pairs involving missing values, but fully-observed pairs are decided
exactly under Definition 1 (so exact duplicates never eliminate each
other).
"""

from __future__ import annotations

import time
from operator import itemgetter
from typing import Dict, List, Optional

import numpy as np

from ..datasets.dataset import IncompleteDataset
from .condition import Condition
from .ctable import CTable
from .dominators import dominator_sets, possible_dominator_blocks
from .expression import Const, Expression, Var
from .pruning import PRUNE_MODES, pruned_dominator_scan

#: Construction backends: ``numpy`` runs dominance tests, alpha-pruning
#: and clause layout as bulk array operations; ``python`` is the scalar
#: per-object/per-pair loop kept for ablation and correctness
#: cross-checks; ``auto`` picks numpy unless the Figure-2 ``baseline``
#: dominator derivation was explicitly requested.
BACKENDS = ("auto", "numpy", "python")


def _clause_for_pair(
    dataset: IncompleteDataset, o: int, p: int
) -> Optional[List[Expression]]:
    """The disjunction encoding ``p`` does not dominate ``o``.

    Returns ``None`` when the clause is trivially true (droppable) and an
    empty list when it is trivially false (``p`` certainly dominates ``o``).
    """
    values = dataset.values
    mask = dataset.mask
    clause: List[Expression] = []
    strictly_better_somewhere = False  # p > o on some fully-observed attribute
    for k in range(dataset.n_attributes):
        o_missing = bool(mask[o, k])
        p_missing = bool(mask[p, k])
        if not o_missing and not p_missing:
            if values[o, k] > values[p, k]:
                return None  # o certainly beats p here: p can never dominate
            if values[p, k] > values[o, k]:
                strictly_better_somewhere = True
            continue  # false disjunct: drop it
        if o_missing and p_missing:
            clause.append(Expression(Var(o, k), Var(p, k)))
        elif o_missing:
            clause.append(Expression(Var(o, k), Const(int(values[p, k]))))
        else:
            clause.append(Expression(Const(int(values[o, k])), Var(p, k)))
    if not clause:
        # Fully comparable pair with p >= o everywhere (a strict o-win would
        # have returned early): p dominates o iff it is strictly better
        # somewhere (Definition 1).  All-equal rows do not dominate.
        if strictly_better_somewhere:
            return []
        return None
    return clause


def build_ctable(
    dataset: IncompleteDataset,
    alpha: float = 1.0,
    dominator_method: str = "fast",
    inference_mode: str = "full",
    backend: str = "auto",
    prune: str = "auto",
    n_jobs: int = 1,
    cancel_check=None,
) -> CTable:
    """Run Algorithm 2 and return the populated :class:`CTable`.

    Parameters
    ----------
    alpha:
        Pruning threshold: objects with more than ``alpha * |O|`` potential
        dominators are deemed non-answers outright (their true answer
        probability is near zero and their conditions would be huge).
        ``alpha >= 1`` disables pruning.
    dominator_method:
        dominator derivation: ``"fast"`` (Get-CTable's selectivity-sorted
        filters), ``"baseline"`` (pairwise comparisons, per Figure 2) or
        ``"numpy"`` (blocked full-relation broadcasting).  Honored by
        both backends.
    inference_mode:
        how aggressively crowd answers are propagated afterwards
        (see :data:`repro.ctable.constraints.INFERENCE_MODES`).
    backend:
        ``"numpy"`` (bulk broadcast kernels), ``"python"`` (scalar loops)
        or ``"auto"`` (numpy, unless ``dominator_method="baseline"`` asks
        for the Figure-2 scalar comparison).  Both backends produce
        identical c-tables; construction statistics land in
        :attr:`CTable.build_stats`.
    prune:
        ``"on"`` runs the sub-quadratic dominance pruning pre-pass of
        :mod:`repro.ctable.pruning` before clause emission, ``"off"``
        keeps the exhaustive pair scan, ``"auto"`` enables it for the
        numpy backend.  The pre-pass is exact: the resulting c-table is
        identical clause for clause, only ``pairs_tested`` shrinks.
    n_jobs:
        process-pool width for the pruning scan (engine convention:
        1 = sequential, 0 = one worker per usable core).  Sharding the
        scan never changes its decisions; single-core hosts and small
        inputs automatically fall back to the sequential scan.
    cancel_check:
        optional zero-argument callable invoked at per-object boundaries;
        raising from it (e.g. a session ``CancellationToken.check``)
        aborts construction cooperatively.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if backend not in BACKENDS:
        raise ValueError("unknown backend %r; expected one of %r" % (backend, BACKENDS))
    if prune not in PRUNE_MODES:
        raise ValueError(
            "unknown prune mode %r; expected one of %r" % (prune, PRUNE_MODES)
        )
    if backend == "auto":
        backend = "python" if dominator_method == "baseline" else "numpy"
    use_prune = prune == "on" or (prune == "auto" and backend == "numpy")
    start = time.perf_counter()
    if use_prune:
        ctable = _build_ctable_pruned(
            dataset, alpha, inference_mode, backend, n_jobs, cancel_check
        )
    elif backend == "numpy":
        ctable = _build_ctable_numpy(
            dataset, alpha, inference_mode, dominator_method, cancel_check
        )
    else:
        ctable = _build_ctable_python(
            dataset, alpha, dominator_method, inference_mode, cancel_check
        )
    stats = ctable.build_stats
    stats["backend"] = backend
    stats["seconds"] = time.perf_counter() - start
    stats["n_objects"] = dataset.n_objects
    stats["builds"] = 1
    pairs = dataset.n_objects * (dataset.n_objects - 1)
    stats.setdefault("prune_enabled", False)
    stats.setdefault("pairs_tested", pairs)
    stats.setdefault("pairs_pruned", 0)
    stats.setdefault("pair_universe", pairs)
    stats["pairs_per_sec"] = (
        stats["pairs_tested"] / stats["seconds"] if stats["seconds"] > 0 else 0.0
    )
    return ctable


def _build_ctable_python(
    dataset: IncompleteDataset,
    alpha: float,
    dominator_method: str,
    inference_mode: str,
    cancel_check=None,
) -> CTable:
    """The scalar reference path: per-object loops over dominator sets."""
    sets = dominator_sets(dataset, method=dominator_method)
    n = dataset.n_objects
    limit = alpha * n
    conditions = {}
    pruned = set()

    values = dataset.values
    mask = dataset.mask
    complete_object = ~mask.any(axis=1)

    for o in range(n):
        if cancel_check is not None:
            cancel_check()
        dominators = sets[o]
        if dominators.size == 0:
            conditions[o] = Condition.true()
            continue
        if dominators.size > limit:
            conditions[o] = Condition.false()
            pruned.add(o)
            continue
        condition = _build_condition(
            dataset, o, dominators, values, mask, complete_object
        )
        conditions[o] = condition
    return CTable(
        dataset=dataset,
        conditions=conditions,
        pruned=frozenset(pruned),
        inference_mode=inference_mode,
        build_stats=_count_stats(conditions, pruned),
    )


def _build_ctable_pruned(
    dataset: IncompleteDataset,
    alpha: float,
    inference_mode: str,
    backend: str,
    n_jobs: int,
    cancel_check=None,
) -> CTable:
    """Sub-quadratic path: dominance pruning pre-pass, then clause emission.

    :func:`repro.ctable.pruning.pruned_dominator_scan` decides every
    object (certain answer / alpha-pruned / open with its exact
    dominator set) while testing only the pairs that survive the
    sort-filter bounds.  Emission then reuses the per-object machinery
    of the requested backend verbatim, so the resulting conditions are
    identical to the unpruned build -- including the Algorithm 2 line-8
    certain-false check for fully-observed objects.
    """
    n = dataset.n_objects
    limit = alpha * n
    scan = pruned_dominator_scan(
        dataset, limit, n_jobs=n_jobs, cancel_check=cancel_check
    )
    counts = scan.dominator_counts.tolist()
    values = dataset.values
    mask = dataset.mask
    complete_object = ~mask.any(axis=1)
    conditions: Dict[int, Condition] = {}
    pruned = set()
    interned: Dict[tuple, Expression] = {}

    for o in range(n):
        if cancel_check is not None:
            cancel_check()
        count = counts[o]
        if count == 0:
            conditions[o] = Condition.true()
            continue
        if count > limit:
            conditions[o] = Condition.false()
            pruned.add(o)
            continue
        dominators = scan.open_sets[o]
        if backend == "numpy":
            if complete_object[o]:
                complete_doms = dominators[complete_object[dominators]]
                if complete_doms.size and bool(
                    (values[complete_doms] != values[o]).any()
                ):
                    conditions[o] = Condition.false()
                    continue
            conditions[o] = _build_condition_bulk(o, dominators, values, mask, interned)
        else:
            conditions[o] = _build_condition(
                dataset, o, dominators, values, mask, complete_object
            )
    stats = _count_stats(conditions, pruned)
    stats.update(scan.stats)
    return CTable(
        dataset=dataset,
        conditions=conditions,
        pruned=frozenset(pruned),
        inference_mode=inference_mode,
        build_stats=stats,
    )


def _build_ctable_numpy(
    dataset: IncompleteDataset,
    alpha: float,
    inference_mode: str,
    dominator_method: str = "fast",
    cancel_check=None,
) -> CTable:
    """Bulk path: dominance, alpha-pruning and clause layout via arrays.

    Dominator discovery follows ``dominator_method``: the default
    ``"fast"`` derivation (selectivity-sorted per-object filters) is
    usually the cheapest, while ``"numpy"`` materializes the whole
    possible-dominator relation block by block as a boolean ``(block, n)``
    matrix.  Either way, membership counts (alpha-pruning, certain
    answers) and the fully-observed-dominance check (Algorithm 2, line 8)
    are array reductions, and Python objects are only created for the
    expressions that actually survive into clauses.
    """
    n = dataset.n_objects
    limit = alpha * n
    values = dataset.values
    mask = dataset.mask
    complete_object = ~mask.any(axis=1)
    conditions: Dict[int, Condition] = {}
    pruned = set()
    #: expression intern table shared across the whole build; disjuncts
    #: repeat heavily (small domains, shared dominators), so reusing the
    #: instance skips hash/key recomputation and speeds clause sorting.
    interned: Dict[tuple, Expression] = {}

    if dominator_method != "numpy":
        sets = dominator_sets(dataset, method=dominator_method)
        for o in range(n):
            if cancel_check is not None:
                cancel_check()
            dominators = sets[o]
            if dominators.size == 0:
                conditions[o] = Condition.true()
                continue
            if dominators.size > limit:
                conditions[o] = Condition.false()
                pruned.add(o)
                continue
            if complete_object[o]:
                # Line 8, vectorized over D(o): membership guarantees
                # p >= o on every attribute for complete pairs, so any
                # difference means strict domination.
                complete_doms = dominators[complete_object[dominators]]
                if complete_doms.size and bool(
                    (values[complete_doms] != values[o]).any()
                ):
                    conditions[o] = Condition.false()
                    continue
            conditions[o] = _build_condition_bulk(o, dominators, values, mask, interned)
        return CTable(
            dataset=dataset,
            conditions=conditions,
            pruned=frozenset(pruned),
            inference_mode=inference_mode,
            build_stats=_count_stats(conditions, pruned),
        )

    for start, possible in possible_dominator_blocks(dataset):
        if cancel_check is not None:
            cancel_check()
        counts = possible.sum(axis=1)
        block_rows = np.arange(possible.shape[0])
        block_objs = block_rows + start

        # Bulk line 8: a fully-observed o is certainly dominated when some
        # fully-observed possible dominator differs from it somewhere
        # (membership already guarantees >= on every attribute).
        block_complete = complete_object[block_objs]
        certain_false = np.zeros(possible.shape[0], dtype=bool)
        if block_complete.any():
            rows = block_rows[block_complete]
            eq_all = (
                values[None, :, :] == values[block_objs[rows], None, :]
            ).all(axis=2)
            strict = possible[rows] & complete_object[None, :] & ~eq_all
            certain_false[rows] = strict.any(axis=1)

        for b in block_rows.tolist():
            o = start + b
            if counts[b] == 0:
                conditions[o] = Condition.true()
                continue
            if counts[b] > limit:
                conditions[o] = Condition.false()
                pruned.add(o)
                continue
            if certain_false[b]:
                conditions[o] = Condition.false()
                continue
            dominators = np.nonzero(possible[b])[0]
            conditions[o] = _build_condition_bulk(o, dominators, values, mask, interned)
    return CTable(
        dataset=dataset,
        conditions=conditions,
        pruned=frozenset(pruned),
        inference_mode=inference_mode,
        build_stats=_count_stats(conditions, pruned),
    )


def _build_condition_bulk(
    o: int,
    dominators: np.ndarray,
    values: np.ndarray,
    mask: np.ndarray,
    interned: Dict[tuple, Expression],
) -> Condition:
    """Clause construction with the disjunct layout computed as arrays.

    For every ``(pair, attribute)`` cell the disjunct kind follows from
    the two missing bits alone, so Python objects are only created for
    the expressions that survive into clauses -- and through ``interned``
    only once per distinct disjunct of the whole build.  Both-observed
    cells never contribute (dominator membership guarantees ``p >= o``
    there), and a pair with no disjunct is a fully-observed exact
    duplicate, which does not dominate under Definition 1.

    Expressions are emitted directly in canonical order -- const-left
    disjuncts sorted by ``(value, attribute)`` via one column
    permutation, then var-left disjuncts by attribute -- so no per-clause
    sort is needed, and clause dedup/ordering runs on the expressions'
    precomputed sort keys.  The clauses come out exactly as
    :meth:`Condition.of` would normalize them, so the raw constructor
    applies.
    """
    mo = mask[o]  # (d,)
    mp = mask[dominators]  # (m, d)
    vp = values[dominators]
    vo = values[o]
    m = len(dominators)
    doms = dominators.tolist()

    miss = np.nonzero(mo)[0]
    obs = np.nonzero(~mo)[0]

    clauses: List[List[Expression]] = [[] for __ in range(m)]
    keys: List[List[tuple]] = [[] for __ in range(m)]

    # Const(vo[k]) > Var(p, k): canonical order is (value, attribute), and
    # within one clause p is fixed -- permuting the observed columns by
    # (value, attribute) makes row-major nonzero yield that order.
    if obs.size:
        const_order = obs[np.lexsort((obs, vo[obs]))]
        sub = mp[:, const_order]
        order_ks = const_order.tolist()
        vo_l = vo.tolist()
        nz_i, nz_j = np.nonzero(sub)
        for i, j in zip(nz_i.tolist(), nz_j.tolist()):
            k = order_ks[j]
            key = (vo_l[k], doms[i], k)  # shared across objects
            expression = interned.get(key)
            if expression is None:
                expression = Expression(Const(key[0]), Var(key[1], k))
                interned[key] = expression
            clauses[i].append(expression)
            keys[i].append(expression._key)

    # Var(o, k) > ...: canonical order is ascending k, and every pair has
    # exactly one var-left disjunct per missing attribute of o (variable
    # right operand when p misses k too, constant otherwise).
    if miss.size:
        miss_l = miss.tolist()
        mp_miss = mp[:, miss].tolist()
        vp_miss = vp[:, miss].tolist()
        local: Dict[tuple, Expression] = {}  # Var(o, .) > c: scoped to o
        for i in range(m):
            row_missing = mp_miss[i]
            row_values = vp_miss[i]
            clause = clauses[i]
            key_list = keys[i]
            p = doms[i]
            for j, k in enumerate(miss_l):
                if row_missing[j]:
                    # unique to this pair, nothing to intern
                    expression = Expression(Var(o, k), Var(p, k))
                else:
                    lk = (k, row_values[j])
                    expression = local.get(lk)
                    if expression is None:
                        expression = Expression(Var(o, k), Const(lk[1]))
                        local[lk] = expression
                clause.append(expression)
                key_list.append(expression._key)

    normalized = []
    seen = set()
    for clause, key_list in zip(clauses, keys):
        if not clause:
            continue
        ktup = tuple(key_list)
        if ktup in seen:
            continue
        seen.add(ktup)
        normalized.append((ktup, tuple(clause)))
    if not normalized:
        return Condition.true()
    normalized.sort(key=itemgetter(0))
    condition = Condition(clauses=tuple(c for __, c in normalized))
    # The variable set is known from the masks alone: every missing attr
    # of o appears in every kept clause, and every missing cell of a
    # dominator appears in that dominator's (never-deduped) clause.
    # Seeding the memo makes CTable's variable-index build cheap.
    variables = set((o, k) for k in miss.tolist())
    nz_p, nz_k = np.nonzero(mp)
    for i, k in zip(nz_p.tolist(), nz_k.tolist()):
        variables.add((doms[i], k))
    condition._vars = frozenset(variables)
    return condition


def _count_stats(conditions: Dict[int, Condition], pruned) -> Dict[str, float]:
    return {
        "certain_true": sum(1 for c in conditions.values() if c.is_true),
        "certain_false": sum(1 for c in conditions.values() if c.is_false),
        "alpha_pruned": len(pruned),
        "open_conditions": sum(1 for c in conditions.values() if not c.is_constant),
    }


def _build_condition(
    dataset: IncompleteDataset,
    o: int,
    dominators: np.ndarray,
    values: np.ndarray,
    mask: np.ndarray,
    complete_object: np.ndarray,
) -> Condition:
    """Steps 4-5 of Algorithm 2 for one object."""
    # Line 8: a fully-observed dominator beating a fully-observed o decides
    # the condition immediately, without building any clause.
    if complete_object[o]:
        for p in dominators.tolist():
            if not complete_object[p]:
                continue
            if (values[p] >= values[o]).all() and (values[p] > values[o]).any():
                return Condition.false()

    clauses: List[List[Expression]] = []
    for p in dominators.tolist():
        clause = _clause_for_pair(dataset, o, p)
        if clause is None:
            continue  # p can never dominate o
        if not clause:
            return Condition.false()  # p certainly dominates o
        clauses.append(clause)
    if not clauses:
        return Condition.true()
    return Condition.of(clauses)
