"""Variable constraint store: what crowd answers have taught us so far.

A triple-choice answer about ``Var(o, a)`` vs a constant ``c`` does not
reveal the missing value, only its relation to ``c``.  BayesCrowd "is able
to infer some preference information ... using returned answers per
iteration" (Section 7.3): we keep, per variable, the set of still-possible
domain values, and for variable-vs-variable tasks the answered ordering
facts.  The store then

* resolves expressions that became certain (used to simplify conditions),
* restricts the posterior distribution of each variable to its remaining
  allowed values (used by probability computation).

Crowd answers can be wrong (worker accuracy < 1), so contradictory
constraints are possible across rounds; when an update would empty a
variable's allowed set we keep only the newest answer, trusting recency.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence, Tuple

import numpy as np

from ..datasets.dataset import Variable
from .expression import Const, Expression, Relation, Var


#: How much inference the store performs on top of recorded answers:
#: ``direct``    -- only the exact answered expressions resolve;
#: ``intervals`` -- + per-variable interval narrowing and bound-based
#:                  resolution of unseen expressions;
#: ``full``      -- + transitive ordering inference and bound propagation
#:                  along answered '>' facts (the default).
INFERENCE_MODES = ("direct", "intervals", "full")


class VariableConstraints:
    """Mutable knowledge base over the variables of one dataset."""

    def __init__(self, domain_sizes: Sequence[int], mode: str = "full") -> None:
        if mode not in INFERENCE_MODES:
            raise ValueError(
                "unknown inference mode %r; expected one of %r" % (mode, INFERENCE_MODES)
            )
        self.mode = mode
        self._domain_sizes = list(int(s) for s in domain_sizes)
        #: exact answers, keyed by the answered expression
        self._answered: Dict[Expression, bool] = {}
        self._allowed: Dict[Variable, np.ndarray] = {}
        self._relations: Dict[Tuple[Variable, Variable], Relation] = {}
        # Ordering knowledge for transitive inference: strict ">" edges
        # between equality-class representatives (union-find parents).
        self._greater_edges: Dict[Variable, set] = {}
        self._lesser_edges: Dict[Variable, set] = {}
        self._equal_parent: Dict[Variable, Variable] = {}
        self._class_members: Dict[Variable, set] = {}
        #: variables touched during the current apply_answer call
        self._touched: set = set()
        #: bumped on every state change; lets probability caches invalidate
        self.version = 0
        #: store version at which each variable last changed (for selective
        #: cache invalidation: untouched variables keep their cached results)
        self._var_versions: Dict[Variable, int] = {}

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _domain_size(self, variable: Variable) -> int:
        __, attr = variable
        return self._domain_sizes[attr]

    def _mask(self, variable: Variable) -> np.ndarray:
        mask = self._allowed.get(variable)
        if mask is None:
            mask = np.ones(self._domain_size(variable), dtype=bool)
            self._allowed[variable] = mask
        return mask

    def allowed_values(self, variable: Variable) -> np.ndarray:
        """Sorted array of domain values still possible for the variable."""
        mask = self._allowed.get(variable)
        if mask is None:
            return np.arange(self._domain_size(variable))
        return np.nonzero(mask)[0]

    def is_pinned(self, variable: Variable) -> bool:
        values = self.allowed_values(variable)
        return len(values) == 1

    def pinned_value(self, variable: Variable) -> Optional[int]:
        values = self.allowed_values(variable)
        return int(values[0]) if len(values) == 1 else None

    def known_relations(self) -> Dict[Tuple[Variable, Variable], Relation]:
        return dict(self._relations)

    # ------------------------------------------------------------------
    # updates from crowd answers
    # ------------------------------------------------------------------
    def apply_answer(self, expression: Expression, relation: Relation) -> FrozenSet[Variable]:
        """Record the answered relation between an expression's operands.

        Returns every variable whose resolutions may have changed.  For
        var-vs-constant answers that is just the variable itself; for
        var-vs-var answers transitive inference can newly decide orderings
        anywhere in the connected ordering component, so the whole
        component is reported (and version-bumped for cache invalidation).
        """
        left, right = expression.left, expression.right
        self._touched = set(expression.variables())
        self._answered[expression] = expression.truth_under(relation)
        if self.mode == "direct":
            pass  # nothing beyond the literal answer
        elif isinstance(left, Var) and isinstance(right, Const):
            self._constrain_vs_const(left.variable, relation, right.value)
            self._propagate_bounds(left.variable)
        elif isinstance(left, Const) and isinstance(right, Var):
            self._constrain_vs_const(right.variable, relation.flipped(), left.value)
            self._propagate_bounds(right.variable)
        elif isinstance(left, Var) and isinstance(right, Var):
            self._record_relation(left.variable, right.variable, relation)
            self._propagate_bounds(left.variable)
            self._propagate_bounds(right.variable)
            if self.mode == "full":
                self._touched |= self._ordering_component(left.variable)
        else:  # pragma: no cover - Expression forbids const-const
            raise ValueError("expression without variables")
        affected = self._touched
        self._touched = set()
        self.version += 1
        for variable in affected:
            self._var_versions[variable] = self.version
        return frozenset(affected)

    def _constrain_vs_const(self, variable: Variable, relation: Relation, c: int) -> None:
        """Narrow the allowed set given ``variable REL c``."""
        size = self._domain_size(variable)
        values = np.arange(size)
        if relation is Relation.GREATER:
            new = values > c
        elif relation is Relation.LESS:
            new = values < c
        else:
            new = values == c
        mask = self._mask(variable)
        combined = mask & new
        if not combined.any():
            # Contradiction from noisy workers: keep the newest answer only.
            combined = new
            if not combined.any():
                # Relation impossible within the domain (e.g. "> max value"):
                # degenerate to the closest value so the store stays usable.
                combined = np.zeros(size, dtype=bool)
                combined[size - 1 if relation is Relation.GREATER else 0] = True
        self._allowed[variable] = combined
        self._touched.add(variable)

    def _record_relation(self, a: Variable, b: Variable, relation: Relation) -> None:
        """Store an ordering fact between two variables, canonically keyed."""
        if b < a:
            a, b = b, a
            relation = relation.flipped()
        self._relations[(a, b)] = relation
        if relation is Relation.EQUAL:
            # Equality lets the two variables share allowed sets.
            shared = self._mask(a) & self._mask(b)
            if shared.any():
                self._allowed[a] = shared.copy()
                self._allowed[b] = shared.copy()
                self._touched.update((a, b))
        if self.mode != "full":
            return
        if relation is Relation.EQUAL:
            self._union(a, b)
        elif relation is Relation.GREATER:
            self._add_strict_edge(a, b)
        else:
            self._add_strict_edge(b, a)

    # ------------------------------------------------------------------
    # transitive ordering inference ("BayesCrowd is able to infer some
    # preference information in tasks, using returned answers")
    # ------------------------------------------------------------------
    def _find(self, variable: Variable) -> Variable:
        parent = self._equal_parent
        root = variable
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(variable, variable) != root:
            parent[variable], variable = root, parent[variable]
        return root

    def _members(self, representative: Variable) -> set:
        return self._class_members.setdefault(representative, {representative})

    def _union(self, a: Variable, b: Variable) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        self._equal_parent[rb] = ra
        self._members(ra).update(self._members(rb))
        self._class_members.pop(rb, None)
        # Re-point rb's strict edges (both directions) at ra.
        for forward, backward in (
            (self._greater_edges, self._lesser_edges),
            (self._lesser_edges, self._greater_edges),
        ):
            edges = forward.pop(rb, None)
            if edges:
                forward.setdefault(ra, set()).update(edges)
            for targets in forward.values():
                if rb in targets:
                    targets.discard(rb)
                    targets.add(ra)
        for mapping in (self._greater_edges, self._lesser_edges):
            targets = mapping.get(ra)
            if targets:
                targets.discard(ra)  # drop self-loops from noisy answers

    def _add_strict_edge(self, greater: Variable, smaller: Variable) -> None:
        rg, rs = self._find(greater), self._find(smaller)
        if rg == rs:
            return  # contradicts an equality from a noisy answer; ignore
        self._members(rg)
        self._members(rs)
        self._greater_edges.setdefault(rg, set()).add(rs)
        self._lesser_edges.setdefault(rs, set()).add(rg)

    def _ordering_component(self, variable: Variable) -> set:
        """All variables connected to ``variable`` through ordering facts."""
        start = self._find(variable)
        stack = [start]
        seen_reps = {start}
        while stack:
            node = stack.pop()
            neighbours = self._greater_edges.get(node, set()) | self._lesser_edges.get(
                node, set()
            )
            for neighbour in neighbours:
                if neighbour not in seen_reps:
                    seen_reps.add(neighbour)
                    stack.append(neighbour)
        out = set()
        for rep in seen_reps:
            out |= self._members(rep)
        return out

    # ------------------------------------------------------------------
    # interval propagation along ordering facts
    # ------------------------------------------------------------------
    def _class_bounds(self, rep: Variable) -> Optional[Tuple[int, int]]:
        """(min, max) still allowed for an equality class, or None if odd."""
        lo = None
        hi = None
        for member in self._members(rep):
            values = self.allowed_values(member)
            if len(values) == 0:  # pragma: no cover - store never empties
                continue
            member_lo, member_hi = int(values[0]), int(values[-1])
            lo = member_lo if lo is None else max(lo, member_lo)
            hi = member_hi if hi is None else min(hi, member_hi)
        if lo is None or hi is None or lo > hi:
            return None
        return lo, hi

    def _narrow_class(
        self, rep: Variable, lo: Optional[int] = None, hi: Optional[int] = None
    ) -> bool:
        """Clip every member of a class to ``[lo, hi]``; True if narrowed.

        A clip that would empty a member's allowed set is refused (it can
        only arise from contradictory noisy answers).
        """
        changed = False
        for member in self._members(rep):
            mask = self._mask(member)
            new = mask.copy()
            if lo is not None and lo > 0:
                new[: min(lo, len(new))] = False
            if hi is not None and hi + 1 < len(new):
                new[hi + 1 :] = False
            if not new.any():
                continue
            if (new != mask).any():
                self._allowed[member] = new
                self._touched.add(member)
                changed = True
        return changed

    def _propagate_bounds(self, variable: Variable) -> None:
        """Push interval bounds along '>' facts: ``X > Y`` forces
        ``min(X) > min(Y)`` upward and ``max(Y) < max(X)`` downward."""
        if self.mode != "full":
            return
        queue = [self._find(variable)]
        steps = 0
        while queue and steps < 10_000:
            steps += 1
            rep = queue.pop()
            bounds = self._class_bounds(rep)
            if bounds is None:
                continue
            lo, hi = bounds
            for smaller in self._greater_edges.get(rep, ()):
                if self._narrow_class(smaller, hi=hi - 1):
                    queue.append(smaller)
            for larger in self._lesser_edges.get(rep, ()):
                if self._narrow_class(larger, lo=lo + 1):
                    queue.append(larger)

    def _strictly_above(self, a: Variable, b: Variable) -> bool:
        """True when answered facts imply ``a > b`` transitively."""
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return False
        stack = [ra]
        seen = {ra}
        while stack:
            node = stack.pop()
            for target in self._greater_edges.get(node, ()):
                if target == rb:
                    return True
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return False

    # ------------------------------------------------------------------
    # contradiction detection (the answer-integrity check)
    # ------------------------------------------------------------------
    def conflict(self, expression: Expression, relation: Relation) -> Optional[str]:
        """Why the answered relation contradicts accepted knowledge, or ``None``.

        Called *before* an aggregated crowd answer is applied: the store
        holds only accepted answers, so a non-``None`` return means this
        answer cannot be true together with them.  Reasons:

        * ``"direct"`` -- the accepted answers already decide the
          expression's truth (directly or through transitive inference /
          interval bounds) and this answer flips it;
        * ``"cycle"`` -- a var-vs-var answer closes a cycle in the strict
          partial order implied by accepted ``<``/``=``/``>`` answers
          (e.g. ``a > b``, ``b > c`` accepted, then ``c >= a`` arrives);
        * ``"empty-domain"`` -- a var-vs-const (or equality) answer would
          leave some variable with no possible value at all;
        * ``"bounds"`` -- a strict var-vs-var ordering is impossible
          under the interval bounds accepted answers propagated.

        Detection is sound but deliberately conservative: a consistent
        answer set (one drawn from any fixed total order per attribute)
        is never flagged (property-tested), while every flagged answer is
        genuinely incompatible with what was accepted before it.
        """
        implied = expression.truth_under(relation)
        resolved = self.resolve(expression)
        if resolved is not None and resolved != implied:
            return "direct"
        if self.mode == "direct":
            return None  # no masks or ordering facts to contradict
        left, right = expression.left, expression.right
        if isinstance(left, Var) and isinstance(right, Const):
            return self._conflict_vs_const(left.variable, relation, right.value)
        if isinstance(left, Const) and isinstance(right, Var):
            return self._conflict_vs_const(
                right.variable, relation.flipped(), left.value
            )
        if isinstance(left, Var) and isinstance(right, Var):
            return self._conflict_var_var(left.variable, right.variable, relation)
        return None  # pragma: no cover - Expression forbids const-const

    def _conflict_vs_const(
        self, variable: Variable, relation: Relation, c: int
    ) -> Optional[str]:
        """Would ``variable REL c`` empty the variable's allowed set?"""
        size = self._domain_size(variable)
        values = np.arange(size)
        if relation is Relation.GREATER:
            new = values > c
        elif relation is Relation.LESS:
            new = values < c
        else:
            new = values == c
        if not new.any():
            return "empty-domain"  # e.g. "> max domain value"
        mask = self._allowed.get(variable)
        if mask is not None and not (mask & new).any():
            return "empty-domain"
        return None

    def _conflict_var_var(
        self, a: Variable, b: Variable, relation: Relation
    ) -> Optional[str]:
        """Does ``a REL b`` close a cycle or contradict interval bounds?

        The binary ``resolve`` check upstream cannot see every three-way
        contradiction: ``a < b`` accepted and ``a = b`` arriving both
        falsify the expression ``a > b``, yet contradict each other.
        """
        if self.mode != "full":
            # Without the ordering graph only the mask overlap is known.
            if relation is Relation.EQUAL:
                shared = self._mask(a) & self._mask(b)
                if not shared.any():
                    return "empty-domain"
            return None
        same_class = self._find(a) == self._find(b)
        a_values = self.allowed_values(a)
        b_values = self.allowed_values(b)
        if relation is Relation.EQUAL:
            if same_class:
                return None
            if self._strictly_above(a, b) or self._strictly_above(b, a):
                return "cycle"
            if not (self._mask(a) & self._mask(b)).any():
                return "empty-domain"
            return None
        if relation is Relation.GREATER:
            if same_class or self._strictly_above(b, a):
                return "cycle"
            if int(a_values[-1]) <= int(b_values[0]):
                return "bounds"  # max(a) <= min(b): a > b impossible
            return None
        # LESS: a < b
        if same_class or self._strictly_above(a, b):
            return "cycle"
        if int(a_values[0]) >= int(b_values[-1]):
            return "bounds"  # min(a) >= max(b): a < b impossible
        return None

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, expression: Expression) -> Optional[bool]:
        """Truth of an expression if the constraints decide it, else ``None``."""
        answered = self._answered.get(expression)
        if answered is not None:
            return answered
        if self.mode == "direct":
            return None
        left, right = expression.left, expression.right
        if isinstance(left, Var) and isinstance(right, Const):
            return self._resolve_var_vs_const(left.variable, right.value)
        if isinstance(left, Const) and isinstance(right, Var):
            # c > Var  <=>  Var < c
            flipped = self._resolve_var_vs_const(right.variable, left.value, less=True)
            return flipped
        if isinstance(left, Var) and isinstance(right, Var):
            return self._resolve_var_vs_var(left.variable, right.variable)
        return None  # pragma: no cover

    def _resolve_var_vs_const(
        self, variable: Variable, c: int, less: bool = False
    ) -> Optional[bool]:
        values = self.allowed_values(variable)
        if len(values) == 0:  # pragma: no cover - store never empties
            return None
        lo, hi = int(values[0]), int(values[-1])
        if less:
            if hi < c:
                return True
            if lo >= c:
                return False
            return None
        if lo > c:
            return True
        if hi <= c:
            return False
        return None

    def _resolve_var_vs_var(self, a: Variable, b: Variable) -> Optional[bool]:
        """Resolve ``a > b`` via recorded facts (transitively), then bounds."""
        key_relation = self._lookup_relation(a, b)
        if key_relation is not None:
            return key_relation is Relation.GREATER
        if self._find(a) == self._find(b):
            return False  # known equal through an equality chain
        if self._strictly_above(a, b):
            return True
        if self._strictly_above(b, a):
            return False
        a_values = self.allowed_values(a)
        b_values = self.allowed_values(b)
        if len(a_values) == 0 or len(b_values) == 0:  # pragma: no cover
            return None
        if int(a_values[0]) > int(b_values[-1]):
            return True
        if int(a_values[-1]) <= int(b_values[0]):
            return False
        return None

    def _lookup_relation(self, a: Variable, b: Variable) -> Optional[Relation]:
        if (a, b) in self._relations:
            return self._relations[(a, b)]
        if (b, a) in self._relations:
            return self._relations[(b, a)].flipped()
        return None

    # ------------------------------------------------------------------
    # distribution restriction
    # ------------------------------------------------------------------
    def constrain_pmf(self, variable: Variable, pmf: np.ndarray) -> np.ndarray:
        """Renormalize a pmf onto the variable's allowed values.

        If the allowed set carries zero prior mass (possible only with
        degenerate inputs), falls back to uniform over the allowed values.
        """
        mask = self._allowed.get(variable)
        if mask is None:
            return np.asarray(pmf, dtype=np.float64)
        restricted = np.where(mask, np.asarray(pmf, dtype=np.float64), 0.0)
        total = restricted.sum()
        if total <= 0.0:
            restricted = mask.astype(np.float64)
            total = restricted.sum()
        return restricted / total

    def variables_unchanged_since(self, variables, version: int) -> bool:
        """True when none of ``variables`` changed after store ``version``.

        Lets probability caches keep results for conditions whose variables
        were untouched by later crowd answers.
        """
        var_versions = self._var_versions
        return all(var_versions.get(v, 0) <= version for v in variables)

    def constrained_variables(self) -> FrozenSet[Variable]:
        """Variables whose allowed set is narrower than the full domain."""
        out = set()
        for variable, mask in self._allowed.items():
            if not mask.all():
                out.add(variable)
        return frozenset(out)
