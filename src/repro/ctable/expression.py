"""Expressions: the atoms of c-table conditions and the unit of crowd tasks.

An *expression* (Section 4.1) is a strict inequality between two operands,
at least one of which is a variable ``Var(o, a)``:

* ``Var(o, a) > c``       (object ``o`` must beat an observed constant),
* ``c > Var(o, a)``       (an observed constant beats a missing value),
* ``Var(o, a) > Var(p, a)`` (two missing values of the same attribute).

A *crowd task* asks the three-way relation (less / equal / greater) of the
two operands of an expression; the expression itself is satisfied exactly
when the relation is ``GREATER`` (strictly better), matching Definition 1's
strict-improvement disjuncts.

Expressions are immutable and interned-style cheap to hash: probability
computation hashes millions of them, so hash, sort key and variable tuple
are precomputed at construction.
"""

from __future__ import annotations

import enum
from typing import Mapping, Tuple, Union

from ..datasets.dataset import Variable


class Relation(enum.Enum):
    """Three-way comparison outcome of a crowd task: ``left REL right``."""

    LESS = "<"
    EQUAL = "="
    GREATER = ">"

    def flipped(self) -> "Relation":
        """The relation seen from the right operand's point of view."""
        if self is Relation.LESS:
            return Relation.GREATER
        if self is Relation.GREATER:
            return Relation.LESS
        return Relation.EQUAL

    @staticmethod
    def of(left_value: int, right_value: int) -> "Relation":
        if left_value > right_value:
            return Relation.GREATER
        if left_value < right_value:
            return Relation.LESS
        return Relation.EQUAL


class Const:
    """A constant operand (an observed attribute value)."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __reduce__(self):
        # Rebuild through the constructor: hashes involve interned strings,
        # whose hash is randomized per process, so a pickled instance must
        # not carry state into a pool worker -- it recomputes there.
        return (Const, (self.value,))

    def __repr__(self) -> str:
        return "Const(%d)" % self.value

    def __str__(self) -> str:
        return str(self.value)


class Var:
    """A variable operand: the missing cell ``Var(o, a)``."""

    __slots__ = ("obj", "attr")

    def __init__(self, obj: int, attr: int) -> None:
        self.obj = int(obj)
        self.attr = int(attr)

    @property
    def variable(self) -> Variable:
        return (self.obj, self.attr)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.obj == self.obj and other.attr == self.attr

    def __hash__(self) -> int:
        return hash(("var", self.obj, self.attr))

    def __reduce__(self):
        return (Var, (self.obj, self.attr))

    def __repr__(self) -> str:
        return "Var(%d, %d)" % (self.obj, self.attr)

    def __str__(self) -> str:
        return "Var(o%d, a%d)" % (self.obj + 1, self.attr + 1)


Operand = Union[Const, Var]


def _operand_sort_key(operand: Operand) -> Tuple[int, int, int]:
    if isinstance(operand, Const):
        return (0, operand.value, -1)
    return (1, operand.obj, operand.attr)


class Expression:
    """The strict inequality ``left > right``.

    Immutable and hashable so expressions can be dictionary keys (frequency
    counting in FBS, probability caching, conflict detection in batches).
    """

    __slots__ = ("left", "right", "_vars", "_key", "_hash")

    def __init__(self, left: Operand, right: Operand) -> None:
        if isinstance(left, Const) and isinstance(right, Const):
            raise ValueError("an expression needs at least one variable")
        self.left = left
        self.right = right
        variables = []
        if isinstance(left, Var):
            variables.append(left.variable)
        if isinstance(right, Var):
            variables.append(right.variable)
        self._vars: Tuple[Variable, ...] = tuple(variables)
        self._key = (_operand_sort_key(left), _operand_sort_key(right))
        self._hash = hash(self._key)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Expression)
            and other._hash == self._hash
            and other._key == self._key
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Reconstruct (instead of copying slots) so the precomputed hash is
        # recomputed under the unpickling process's hash seed.
        return (Expression, (self.left, self.right))

    def sort_key(self) -> Tuple:
        return self._key

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def variables(self) -> Tuple[Variable, ...]:
        """The variables mentioned, left first (one or two)."""
        return self._vars

    def involves(self, variable: Variable) -> bool:
        return variable in self._vars

    def is_var_var(self) -> bool:
        return len(self._vars) == 2

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[Variable, int]) -> bool:
        """Truth value under a (total enough) variable assignment."""
        return self._operand_value(self.left, assignment) > self._operand_value(
            self.right, assignment
        )

    @staticmethod
    def _operand_value(operand: Operand, assignment: Mapping[Variable, int]) -> int:
        if isinstance(operand, Const):
            return operand.value
        try:
            return assignment[operand.variable]
        except KeyError:
            raise KeyError("assignment misses variable %s" % (operand,)) from None

    def substitute(self, variable: Variable, value: int) -> Union["Expression", bool]:
        """Replace one variable with a concrete value.

        Returns a boolean once both sides are constant, otherwise a new
        (smaller) expression.
        """
        left = self.left
        right = self.right
        if isinstance(left, Var) and left.variable == variable:
            left = Const(value)
        if isinstance(right, Var) and right.variable == variable:
            right = Const(value)
        if isinstance(left, Const) and isinstance(right, Const):
            return left.value > right.value
        return Expression(left, right)

    def true_values(self, domain_size: int) -> Tuple[int, ...]:
        """Domain values of the single variable for which this holds.

        The normalization hook for the circuit compiler: a var-vs-const
        expression is exactly the event "the variable falls in this value
        set", so it compiles to a set-literal leaf instead of a decision
        node.  ``Var > c`` holds on ``{c+1, ..., D-1}``; ``c > Var`` holds
        on ``{0, ..., c-1}``.  Out-of-domain constants clamp to the empty
        or full set.  Raises :class:`ValueError` for var-vs-var
        expressions -- a two-variable atom has no single-variable truth
        set.
        """
        if len(self._vars) != 1:
            raise ValueError("true_values needs a single-variable expression")
        if isinstance(self.left, Var):
            # Var > c
            low = max(self.right.value + 1, 0)
            return tuple(range(low, domain_size))
        # c > Var
        high = min(self.left.value, domain_size)
        return tuple(range(0, high))

    def truth_under(self, relation: Relation) -> bool:
        """Truth of the expression given the answered operand relation."""
        return relation is Relation.GREATER

    def true_relation(self, complete_values) -> Relation:
        """The ground-truth relation, resolved against a complete matrix."""

        def resolve(operand: Operand) -> int:
            if isinstance(operand, Const):
                return operand.value
            return int(complete_values[operand.obj, operand.attr])

        return Relation.of(resolve(self.left), resolve(self.right))

    # ------------------------------------------------------------------
    def question(self) -> str:
        """The triple-choice question text posted to crowd workers."""
        return "Is %s larger than, smaller than, or equal to %s?" % (
            self.left,
            self.right,
        )

    def __repr__(self) -> str:
        return "Expression(%r, %r)" % (self.left, self.right)

    def __str__(self) -> str:
        return "%s > %s" % (self.left, self.right)


def var_greater_const(obj: int, attr: int, value: int) -> Expression:
    """``Var(o, a) > c``."""
    return Expression(Var(obj, attr), Const(value))


def const_greater_var(value: int, obj: int, attr: int) -> Expression:
    """``c > Var(o, a)`` -- i.e. the variable must be *smaller* than ``c``."""
    return Expression(Const(value), Var(obj, attr))


def var_greater_var(obj_a: int, obj_b: int, attr: int) -> Expression:
    """``Var(o_a, attr) > Var(o_b, attr)``."""
    return Expression(Var(obj_a, attr), Var(obj_b, attr))
