"""Per-variable value distributions used by probability computation.

Each variable ``Var(o, a)`` carries a pmf over its attribute domain --
either the Bayesian-network posterior from preprocessing, an empirical
column marginal, or the zero-knowledge uniform.  Following the paper's
ADPLL (which multiplies ``prob * p(v_a)`` per assigned variable),
variables are treated as mutually independent with these marginals.

The store optionally observes a :class:`VariableConstraints` knowledge
base: crowd answers narrow a variable's allowed values and its pmf is
renormalized onto what remains, so later probability computations
incorporate everything the crowd has said.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..ctable.constraints import VariableConstraints
from ..ctable.expression import Const, Expression, Var
from ..datasets.dataset import Variable


class DistributionStore:
    """Maps variables to (possibly constraint-restricted) pmfs."""

    def __init__(
        self,
        base: Mapping[Variable, np.ndarray],
        constraints: Optional[VariableConstraints] = None,
    ) -> None:
        self._base: Dict[Variable, np.ndarray] = {}
        for variable, pmf in base.items():
            pmf = np.asarray(pmf, dtype=np.float64)
            if pmf.ndim != 1 or pmf.size == 0:
                raise ValueError("pmf of %s must be a non-empty vector" % (variable,))
            if (pmf < 0).any():
                raise ValueError("pmf of %s has negative entries" % (variable,))
            total = pmf.sum()
            if not np.isclose(total, 1.0, atol=1e-6):
                raise ValueError("pmf of %s sums to %r, not 1" % (variable, total))
            self._base[variable] = pmf / total
        self._constraints = constraints
        # Hot-path caches, validated against per-variable constraint versions:
        # leaf expressions repeat heavily across ADPLL branches.
        self._pmf_cache: Dict[Variable, "tuple[np.ndarray, int]"] = {}
        self._expr_cache: Dict[Expression, "tuple[float, int]"] = {}

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Changes whenever constraint updates may alter any pmf."""
        return self._constraints.version if self._constraints is not None else 0

    def variables_unchanged_since(self, variables, version: int) -> bool:
        """True if the pmfs of ``variables`` are identical to store ``version``.

        Used for selective cache invalidation: a cached ``Pr(phi)`` stays
        valid as long as no variable of ``phi`` was constrained afterwards.
        """
        if self._constraints is None:
            return True
        return self._constraints.variables_unchanged_since(variables, version)

    def has_variable(self, variable: Variable) -> bool:
        return variable in self._base

    def variables(self):
        return self._base.keys()

    def pmf(self, variable: Variable) -> np.ndarray:
        """Current pmf: base distribution restricted by constraints."""
        base = self._base.get(variable)
        if base is None:
            raise KeyError("no distribution for variable %s" % (variable,))
        constraints = self._constraints
        if constraints is None:
            return base
        cached = self._pmf_cache.get(variable)
        if cached is not None:
            pmf, version = cached
            if constraints.variables_unchanged_since((variable,), version):
                return pmf
        pmf = constraints.constrain_pmf(variable, base)
        self._pmf_cache[variable] = (pmf, constraints.version)
        return pmf

    def support(self, variable: Variable) -> np.ndarray:
        """Domain values with strictly positive current probability."""
        return np.nonzero(self.pmf(variable) > 0.0)[0]

    # ------------------------------------------------------------------
    # expression probabilities (exact, under variable independence)
    # ------------------------------------------------------------------
    def prob_expression(self, expression: Expression) -> float:
        """``Pr(expression)`` under the current distributions (cached)."""
        cached = self._expr_cache.get(expression)
        if cached is not None:
            value, version = cached
            if self.variables_unchanged_since(expression.variables(), version):
                return value
        value = self._prob_expression_uncached(expression)
        self._expr_cache[expression] = (value, self.version)
        return value

    def _prob_expression_uncached(self, expression: Expression) -> float:
        left, right = expression.left, expression.right
        if isinstance(left, Var) and isinstance(right, Const):
            pmf = self.pmf(left.variable)
            return float(pmf[right.value + 1 :].sum()) if right.value + 1 < len(pmf) else 0.0
        if isinstance(left, Const) and isinstance(right, Var):
            pmf = self.pmf(right.variable)
            return float(pmf[: left.value].sum()) if left.value > 0 else 0.0
        if isinstance(left, Var) and isinstance(right, Var):
            return self._prob_var_greater_var(left.variable, right.variable)
        raise ValueError("expression without variables")  # pragma: no cover

    def _prob_var_greater_var(self, a: Variable, b: Variable) -> float:
        """``Pr(A > B)`` for independent discrete A, B."""
        pmf_a = self.pmf(a)
        pmf_b = self.pmf(b)
        # cdf_b[x] = Pr(B < x) for x in 0..len-1
        cdf_below = np.concatenate(([0.0], np.cumsum(pmf_b)))[: len(pmf_b)]
        limit = min(len(pmf_a), len(cdf_below))
        total = float((pmf_a[:limit] * cdf_below[:limit]).sum())
        # values of A above B's domain always win
        if len(pmf_a) > len(pmf_b):
            total += float(pmf_a[len(pmf_b) :].sum())
        return total

    # ------------------------------------------------------------------
    def sample_assignment(
        self, variables, rng: np.random.Generator
    ) -> Dict[Variable, int]:
        """Independent sample of the given variables (ApproxCount)."""
        out: Dict[Variable, int] = {}
        for variable in variables:
            pmf = self.pmf(variable)
            out[variable] = int(rng.choice(len(pmf), p=pmf))
        return out
