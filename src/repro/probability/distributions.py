"""Per-variable value distributions used by probability computation.

Each variable ``Var(o, a)`` carries a pmf over its attribute domain --
either the Bayesian-network posterior from preprocessing, an empirical
column marginal, or the zero-knowledge uniform.  Following the paper's
ADPLL (which multiplies ``prob * p(v_a)`` per assigned variable),
variables are treated as mutually independent with these marginals.

The store optionally observes a :class:`VariableConstraints` knowledge
base: crowd answers narrow a variable's allowed values and its pmf is
renormalized onto what remains, so later probability computations
incorporate everything the crowd has said.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..ctable.constraints import VariableConstraints
from ..ctable.expression import Const, Expression, Var
from ..datasets.dataset import Variable


#: Smallest per-variable expression group worth a vectorized gather in
#: :meth:`DistributionStore.prob_expressions_bulk`.
_BULK_GATHER_MIN = 8


class DistributionStore:
    """Maps variables to (possibly constraint-restricted) pmfs."""

    def __init__(
        self,
        base: Mapping[Variable, np.ndarray],
        constraints: Optional[VariableConstraints] = None,
    ) -> None:
        self._base: Dict[Variable, np.ndarray] = {}
        for variable, pmf in base.items():
            pmf = np.asarray(pmf, dtype=np.float64)
            if pmf.ndim != 1 or pmf.size == 0:
                raise ValueError("pmf of %s must be a non-empty vector" % (variable,))
            if (pmf < 0).any():
                raise ValueError("pmf of %s has negative entries" % (variable,))
            total = pmf.sum()
            if not np.isclose(total, 1.0, atol=1e-6):
                raise ValueError("pmf of %s sums to %r, not 1" % (variable, total))
            self._base[variable] = pmf / total
        self._constraints = constraints
        # Hot-path caches, validated against per-variable constraint versions:
        # leaf expressions repeat heavily across ADPLL branches.
        self._pmf_cache: Dict[Variable, "tuple[np.ndarray, int]"] = {}
        self._expr_cache: Dict[Expression, "tuple[float, int]"] = {}
        # Per-variable cumulative arrays: tails[0][c] = Pr(X > c) and
        # tails[1][c] = Pr(X < c), both length |domain|.  Every expression
        # probability is one lookup (or one dot product) against these.
        self._tail_cache: Dict[Variable, "tuple[np.ndarray, np.ndarray, int]"] = {}

    # ------------------------------------------------------------------
    @property
    def constraints(self) -> Optional[VariableConstraints]:
        """The bound knowledge base, if any (``None`` for frozen snapshots)."""
        return self._constraints

    @property
    def version(self) -> int:
        """Changes whenever constraint updates may alter any pmf."""
        return self._constraints.version if self._constraints is not None else 0

    def variables_unchanged_since(self, variables, version: int) -> bool:
        """True if the pmfs of ``variables`` are identical to store ``version``.

        Used for selective cache invalidation: a cached ``Pr(phi)`` stays
        valid as long as no variable of ``phi`` was constrained afterwards.
        """
        if self._constraints is None:
            return True
        return self._constraints.variables_unchanged_since(variables, version)

    def has_variable(self, variable: Variable) -> bool:
        return variable in self._base

    def variables(self):
        return self._base.keys()

    def domain_size(self, variable: Variable) -> int:
        """Size of the variable's *base* domain (constraint-independent).

        The circuit compiler branches over the full base domain -- not the
        current support -- so a compiled circuit stays valid when answers
        narrow (or, after a contradiction overwrite, re-expand) the
        allowed value set: only leaf weights move.
        """
        base = self._base.get(variable)
        if base is None:
            raise KeyError("no distribution for variable %s" % (variable,))
        return len(base)

    def pmf(self, variable: Variable) -> np.ndarray:
        """Current pmf: base distribution restricted by constraints."""
        base = self._base.get(variable)
        if base is None:
            raise KeyError("no distribution for variable %s" % (variable,))
        constraints = self._constraints
        if constraints is None:
            return base
        current = constraints.version
        cached = self._pmf_cache.get(variable)
        if cached is not None:
            pmf, version = cached
            if version == current:
                return pmf
            if constraints.variables_unchanged_since((variable,), version):
                # Refresh the stored version after a successful
                # revalidation so later hits at this version short-circuit
                # on equality instead of re-scanning.
                self._pmf_cache[variable] = (pmf, current)
                return pmf
        pmf = constraints.constrain_pmf(variable, base)
        self._pmf_cache[variable] = (pmf, current)
        return pmf

    def support(self, variable: Variable) -> np.ndarray:
        """Domain values with strictly positive current probability."""
        return np.nonzero(self.pmf(variable) > 0.0)[0]

    # ------------------------------------------------------------------
    # frozen snapshots (for process-pool workers)
    # ------------------------------------------------------------------
    def snapshot(self) -> "DistributionStore":
        """A frozen, picklable copy with constraints baked into the pmfs.

        Pool workers compute against the snapshot: it carries no mutable
        knowledge base (``version`` is pinned at 0), so results shipped
        back are valid exactly for the version the snapshot was taken at.
        """
        return DistributionStore(
            {variable: self.pmf(variable).copy() for variable in self._base},
            constraints=None,
        )

    def pack_snapshot(self) -> Dict[str, np.ndarray]:
        """The constraint-baked pmfs as three flat arrays.

        The shared-memory layout for pool workers: variables as an
        ``(n_vars, 2)`` int64 matrix, all pmfs concatenated into one
        float64 vector with an offsets index.  Publishing these once per
        batch replaces pickling a full :meth:`snapshot` into every chunk
        payload.  Rebuild with :meth:`from_packed`.
        """
        variables = sorted(self._base)
        pmfs = [self.pmf(variable) for variable in variables]
        offsets = np.zeros(len(pmfs) + 1, dtype=np.int64)
        if pmfs:
            np.cumsum([len(pmf) for pmf in pmfs], out=offsets[1:])
        return {
            "pmf_variables": np.array(
                variables if variables else [], dtype=np.int64
            ).reshape(len(variables), 2),
            "pmf_offsets": offsets,
            "pmf_flat": (
                np.concatenate(pmfs) if pmfs else np.empty(0, dtype=np.float64)
            ),
        }

    @classmethod
    def from_packed(cls, arrays: Mapping[str, np.ndarray]) -> "DistributionStore":
        """Rebuild a frozen snapshot from :meth:`pack_snapshot` arrays.

        Trusted path: the pmfs were validated and normalized when the
        source store was built, so the validating ``__init__`` is
        bypassed.  The pmfs are copied out of the (possibly shared,
        soon-to-be-unmapped) buffer; the result is constraint-free like
        :meth:`snapshot`.
        """
        variables = arrays["pmf_variables"]
        offsets = arrays["pmf_offsets"]
        flat = arrays["pmf_flat"]
        store = cls.__new__(cls)
        store._base = {
            (int(variables[i, 0]), int(variables[i, 1])): np.array(
                flat[offsets[i]:offsets[i + 1]], dtype=np.float64
            )
            for i in range(len(variables))
        }
        store._constraints = None
        store._pmf_cache = {}
        store._expr_cache = {}
        store._tail_cache = {}
        return store

    # ------------------------------------------------------------------
    # expression probabilities (exact, under variable independence)
    # ------------------------------------------------------------------
    def _tails(self, variable: Variable) -> "tuple[np.ndarray, np.ndarray]":
        """``(gt, lt)`` with ``gt[c] = Pr(X > c)`` and ``lt[c] = Pr(X < c)``."""
        constraints = self._constraints
        cached = self._tail_cache.get(variable)
        if cached is not None:
            gt, lt, version = cached
            if constraints is None or version == constraints.version:
                return gt, lt
            if constraints.variables_unchanged_since((variable,), version):
                self._tail_cache[variable] = (gt, lt, constraints.version)
                return gt, lt
        pmf = self.pmf(variable)
        # Suffix/prefix sums (not 1 - cdf) keep the entries exact sums of
        # pmf cells: nonnegative and identical to per-value summation.
        suffix = np.cumsum(pmf[::-1])[::-1]  # Pr(X >= c)
        gt = np.concatenate((suffix[1:], (0.0,)))  # Pr(X > c)
        lt = np.concatenate(((0.0,), np.cumsum(pmf)[:-1]))  # Pr(X < c)
        self._tail_cache[variable] = (gt, lt, self.version)
        return gt, lt

    def prob_expression(self, expression: Expression) -> float:
        """``Pr(expression)`` under the current distributions (cached)."""
        current = self.version
        cached = self._expr_cache.get(expression)
        if cached is not None:
            value, version = cached
            if version == current:
                return value
            if self.variables_unchanged_since(expression.variables(), version):
                self._expr_cache[expression] = (value, current)
                return value
        value = self._prob_expression_uncached(expression)
        self._expr_cache[expression] = (value, current)
        return value

    def _prob_expression_uncached(self, expression: Expression) -> float:
        left, right = expression.left, expression.right
        if isinstance(left, Var) and isinstance(right, Const):
            gt, __ = self._tails(left.variable)
            c = right.value
            if c >= len(gt):
                return 0.0
            return float(gt[c]) if c >= 0 else 1.0
        if isinstance(left, Const) and isinstance(right, Var):
            __, lt = self._tails(right.variable)
            c = left.value
            if c <= 0:
                return 0.0
            return float(lt[c]) if c < len(lt) else 1.0
        if isinstance(left, Var) and isinstance(right, Var):
            return self._prob_var_greater_var(left.variable, right.variable)
        raise ValueError("expression without variables")  # pragma: no cover

    def _prob_var_greater_var(self, a: Variable, b: Variable) -> float:
        """``Pr(A > B)`` for independent discrete A, B."""
        pmf_a = self.pmf(a)
        __, lt_b = self._tails(b)  # lt_b[x] = Pr(B < x)
        limit = min(len(pmf_a), len(lt_b))
        total = float(pmf_a[:limit] @ lt_b[:limit])
        # values of A above B's domain always win
        if len(pmf_a) > len(lt_b):
            total += float(pmf_a[len(lt_b) :].sum())
        return total

    def prob_expressions_bulk(
        self, expressions: Iterable[Expression]
    ) -> Dict[Expression, float]:
        """Probabilities of many expressions at once, vectorized per variable.

        Variable-vs-constant expressions over the same variable collapse
        into one gather against the variable's cumulative arrays instead
        of per-expression Python arithmetic.  All results are folded into
        the expression cache, so a subsequent ADPLL/naive pass over the
        conditions that produced these leaves starts fully warm.
        """
        out: Dict[Expression, float] = {}
        version = self.version
        var_const: "defaultdict[Variable, List[Tuple[Expression, int]]]" = defaultdict(list)
        const_var: "defaultdict[Variable, List[Tuple[Expression, int]]]" = defaultdict(list)
        var_var: List[Expression] = []
        for expression in expressions:
            if expression in out:
                continue
            cached = self._expr_cache.get(expression)
            if cached is not None:
                if cached[1] == version:
                    out[expression] = cached[0]
                    continue
                if self.variables_unchanged_since(expression.variables(), cached[1]):
                    self._expr_cache[expression] = (cached[0], version)
                    out[expression] = cached[0]
                    continue
            left, right = expression.left, expression.right
            if isinstance(left, Var) and isinstance(right, Const):
                var_const[left.variable].append((expression, right.value))
            elif isinstance(left, Const) and isinstance(right, Var):
                const_var[right.variable].append((expression, left.value))
            else:
                var_var.append(expression)

        for variable, pairs in var_const.items():
            gt, __ = self._tails(variable)
            size = len(gt)
            if len(pairs) < _BULK_GATHER_MIN:
                # ndarray setup costs more than it saves on tiny groups
                for expression, c in pairs:
                    value = 0.0 if c >= size else (float(gt[c]) if c >= 0 else 1.0)
                    out[expression] = value
                    self._expr_cache[expression] = (value, version)
                continue
            cs = np.fromiter((c for __, c in pairs), dtype=np.int64, count=len(pairs))
            values = np.where(
                cs >= size, 0.0, np.where(cs < 0, 1.0, gt[np.clip(cs, 0, size - 1)])
            )
            for (expression, __c), value in zip(pairs, values.tolist()):
                out[expression] = value
                self._expr_cache[expression] = (value, version)
        for variable, pairs in const_var.items():
            __, lt = self._tails(variable)
            size = len(lt)
            if len(pairs) < _BULK_GATHER_MIN:
                for expression, c in pairs:
                    value = 0.0 if c <= 0 else (float(lt[c]) if c < size else 1.0)
                    out[expression] = value
                    self._expr_cache[expression] = (value, version)
                continue
            cs = np.fromiter((c for __, c in pairs), dtype=np.int64, count=len(pairs))
            values = np.where(
                cs <= 0, 0.0, np.where(cs >= size, 1.0, lt[np.clip(cs, 0, size - 1)])
            )
            for (expression, __c), value in zip(pairs, values.tolist()):
                out[expression] = value
                self._expr_cache[expression] = (value, version)
        for expression in var_var:
            out[expression] = self.prob_expression(expression)
        return out

    # ------------------------------------------------------------------
    def sample_assignment(
        self, variables, rng: np.random.Generator
    ) -> Dict[Variable, int]:
        """Independent sample of the given variables (ApproxCount)."""
        out: Dict[Variable, int] = {}
        for variable in variables:
            pmf = self.pmf(variable)
            out[variable] = int(rng.choice(len(pmf), p=pmf))
        return out
