"""ApproxCount-style Monte Carlo probability estimation.

The paper generalizes the approximate weighted ApproxCount algorithm
(Wei & Selman, SAT 2005) to multi-value variables and reports that it
"performs worse than ADPLL in terms of both efficiency and accuracy"
because sampling satisfying assignments over multi-value variables is
expensive.  This module provides the generalized sampler so the claim can
be reproduced: assignments are drawn from the (independent) variable
distributions and the satisfaction frequency estimates ``Pr(phi)``.

Two modes are provided:

* :func:`approx_probability` -- fixed sample budget;
* :func:`adaptive_approx_probability` -- keeps sampling in batches until a
  Wilson-score confidence half-width drops below ``tolerance``.

Interval widths use the Wilson score interval rather than the normal
(Wald) approximation: at ``hits == 0`` the Wald half-width degenerates to
~0, which made the adaptive loop stop after its first batch and
confidently report ``Pr = 0`` for any rare event.  The Wilson half-width
stays honest (about ``z^2 / (z^2 + n)`` wide) at the boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..ctable.condition import Condition
from .distributions import DistributionStore

#: Deprecated process-global fallback for callers that do not pass an
#: rng.  A module-level generator advances across calls, so repeated
#: no-rng estimates are independent -- but it is shared mutable state:
#: concurrent sessions interleave draws on it.  Inside an activated
#: session the fallback resolves to a per-session stream instead; this
#: global only serves library-mode callers outside any session.
_fallback_rng = np.random.default_rng(0)


def _resolve_fallback_rng() -> np.random.Generator:
    """Session-local fallback stream, or the deprecated process global."""
    from ..session.context import session_rng

    rng = session_rng("probability.approxcount")
    if rng is not None:
        return rng
    return _fallback_rng


def _wilson_half_width(hits: int, n: int, z: float) -> float:
    """Half-width of the Wilson score interval for ``hits`` out of ``n``."""
    p = hits / n
    z2 = z * z
    return (z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))) / (1.0 + z2 / n)


@dataclass(frozen=True)
class ApproxEstimate:
    """A Monte Carlo estimate with its sampling metadata."""

    probability: float
    n_samples: int
    half_width: float

    def interval(self) -> "tuple[float, float]":
        return (
            max(0.0, self.probability - self.half_width),
            min(1.0, self.probability + self.half_width),
        )


def _estimate(
    condition: Condition,
    store: DistributionStore,
    n_samples: int,
    rng: np.random.Generator,
    z: float,
) -> ApproxEstimate:
    variables = sorted(condition.variables())
    hits = 0
    for _ in range(n_samples):
        assignment = store.sample_assignment(variables, rng)
        if condition.evaluate(assignment):
            hits += 1
    return ApproxEstimate(
        probability=hits / n_samples,
        n_samples=n_samples,
        half_width=_wilson_half_width(hits, n_samples, z),
    )


def approx_probability(
    condition: Condition,
    store: DistributionStore,
    n_samples: int = 2000,
    rng: Optional[np.random.Generator] = None,
    z: float = 1.96,
) -> ApproxEstimate:
    """Fixed-budget Monte Carlo estimate of ``Pr(condition)``."""
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if condition.is_true:
        return ApproxEstimate(1.0, 0, 0.0)
    if condition.is_false:
        return ApproxEstimate(0.0, 0, 0.0)
    if rng is None:
        rng = _resolve_fallback_rng()
    return _estimate(condition, store, n_samples, rng, z)


def adaptive_approx_probability(
    condition: Condition,
    store: DistributionStore,
    tolerance: float = 0.02,
    batch_size: int = 500,
    max_samples: int = 50_000,
    rng: Optional[np.random.Generator] = None,
    z: float = 1.96,
) -> ApproxEstimate:
    """Sample until the Wilson confidence half-width is below ``tolerance``."""
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if condition.is_true:
        return ApproxEstimate(1.0, 0, 0.0)
    if condition.is_false:
        return ApproxEstimate(0.0, 0, 0.0)
    if rng is None:
        rng = _resolve_fallback_rng()
    variables = sorted(condition.variables())
    hits = 0
    n = 0
    while n < max_samples:
        for _ in range(batch_size):
            assignment = store.sample_assignment(variables, rng)
            if condition.evaluate(assignment):
                hits += 1
        n += batch_size
        half_width = _wilson_half_width(hits, n, z)
        if half_width < tolerance:
            break
    return ApproxEstimate(
        probability=hits / n,
        n_samples=n,
        half_width=_wilson_half_width(hits, n, z),
    )
