"""Resource-guarded probability computation.

Exact ADPLL is worst-case exponential in the condition's variable
overlap; one pathological condition can stall a whole crowdsourcing
round.  The guard bounds the damage:

* :class:`GuardedProbability` -- a probability together with *how* it was
  obtained: exact (error bound 0) or degraded to adaptive Monte Carlo
  sampling with a finite Wilson-interval error bound, so results can
  report exactly which objects are approximate;
* :class:`CircuitBreaker` -- after ``failure_threshold`` consecutive
  exact-path blowups the breaker opens and the engine goes
  approximate-first, probing the exact path again every
  ``probe_interval`` calls (half-open) instead of paying a full budget
  exhaustion per condition.

The breaker is deliberately count-based (not wall-clock) so its behavior
is deterministic under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["GuardedProbability", "CircuitBreaker"]


@dataclass(frozen=True)
class GuardedProbability:
    """A probability labelled with its computation provenance."""

    value: float
    #: True when exact ADPLL produced the value (error_bound is then 0)
    exact: bool
    #: half-width of the estimate's confidence interval (finite and
    #: positive for approximate values, 0.0 for exact ones)
    error_bound: float = 0.0
    #: Monte Carlo samples drawn (0 for exact values)
    n_samples: int = 0

    def __post_init__(self) -> None:
        if self.exact and self.error_bound != 0.0:
            raise ValueError("an exact probability cannot carry an error bound")

    def interval(self) -> "tuple[float, float]":
        return (
            max(0.0, self.value - self.error_bound),
            min(1.0, self.value + self.error_bound),
        )


class CircuitBreaker:
    """Closed / open / half-open breaker over the exact ADPLL path.

    *Closed*: every call may go exact; ``failure_threshold`` consecutive
    failures trip it open.  *Open*: calls are told to skip the exact path
    (approximate-first); every ``probe_interval``-th call is let through
    as a half-open probe.  A successful probe closes the breaker, a
    failed one re-opens it.
    """

    STATES = ("closed", "open", "half-open")

    def __init__(self, failure_threshold: int = 3, probe_interval: int = 32) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if probe_interval < 1:
            raise ValueError("probe_interval must be at least 1")
        self.failure_threshold = failure_threshold
        self.probe_interval = probe_interval
        self._state = "closed"
        self._consecutive_failures = 0
        self._calls_while_open = 0
        #: times the breaker tripped closed -> open
        self.trips = 0
        #: exact attempts skipped because the breaker was open
        self.skipped = 0
        self.failures = 0
        self.successes = 0

    @property
    def state(self) -> str:
        return self._state

    def allow_exact(self) -> bool:
        """Should this call attempt the exact path?

        Also advances the open-state probe schedule, so call it exactly
        once per probability computation.
        """
        if self._state == "closed":
            return True
        self._calls_while_open += 1
        if self._calls_while_open >= self.probe_interval:
            self._calls_while_open = 0
            self._state = "half-open"
            return True
        self.skipped += 1
        return False

    def record_success(self) -> None:
        self.successes += 1
        self._consecutive_failures = 0
        self._state = "closed"

    def record_failure(self) -> None:
        self.failures += 1
        if self._state == "half-open":
            self._state = "open"
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._state = "open"
            self._consecutive_failures = 0
            self._calls_while_open = 0
            self.trips += 1

    def stats(self) -> Dict[str, object]:
        return {
            "breaker_state": self._state,
            "breaker_trips": self.trips,
            "breaker_failures": self.failures,
            "breaker_successes": self.successes,
            "breaker_skipped": self.skipped,
        }
