"""Array kernel for the circuit forest: one sweep evaluates every circuit.

The PR-8 interpreter walks each circuit's DAG node-by-node in Python --
fine for one circuit, but the forest (:mod:`repro.probability.forest`)
holds the union of *all* registered circuits as one shared DAG, and a
round needs all of their values at once.  This module lowers the live
forest into a :class:`ForestProgram`: a structure-of-arrays schedule
grouped by node *level* (1 + max child level), so every SUM/PROD of a
level is computed in one vectorized step:

* **set leaves** gather pmf cells through a CSR index into one
  concatenated pmf vector and segment-sum them with ``np.add.reduceat``;
* **pair leaves** (``Pr(A > B)`` theory atoms) reproduce the
  distribution store's prefix-sum formula exactly, bit for bit;
* **SUM levels** are segmented sums over child values (deterministic
  sums -- children are mutually exclusive, so plain addition is exact);
* **PROD levels** run in log space: ``exp(segment_sum(log(children)))``
  with zeros mapped through ``-inf`` back to exact ``0.0``.

Every node carries the forest's monotone creation sequence number, and
all per-block arrays are seq-sorted, so *suffix* re-sweeps -- "recompute
everything created or dirtied after sequence s" -- are a
``searchsorted`` plus contiguous tail slices (``propagate_many``); and a
*masked* sweep computes only the subgraph reachable from a chunk of
roots, which is what pool workers run after attaching the program's flat
arrays from shared memory (:meth:`to_arrays` / :meth:`from_arrays`).

An optional numba JIT of the forward pass hides behind
``REPRO_FOREST_JIT=1`` (kernel mode ``auto``); numpy is the
always-available fallback and the only mode exercised in CI, where
numba is not installed.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .compile import NODE_LEAF_PAIR, NODE_LEAF_SET, NODE_PROD, NODE_SUM, NODE_TRUE

__all__ = [
    "HAS_NUMBA",
    "KERNEL_MODES",
    "ForestProgram",
    "resolve_kernel",
    "validate_jit_gate",
]

#: Kernel mode knob: ``auto`` picks numba when installed *and* opted in
#: via ``REPRO_FOREST_JIT=1``, else numpy; ``python`` is the scalar
#: interpreter sweep (used to benchmark forest sharing in isolation).
KERNEL_MODES = ("auto", "numpy", "numba", "python")

#: True when the numba package is importable (never a hard dependency).
HAS_NUMBA = importlib.util.find_spec("numba") is not None

_JIT_ENV = "REPRO_FOREST_JIT"


def validate_jit_gate() -> None:
    """Fail fast when ``REPRO_FOREST_JIT`` opts in but numba is absent.

    Called at *config* time (``BayesCrowdConfig`` validation for the
    forest backend, and service settings validation) so a host that opted
    into the JIT without having numba installed gets one clear
    :class:`~repro.errors.ConfigError` up front instead of a confusing
    per-worker crash (or a silent numpy fallback the operator believes is
    jitted).  ``resolve_kernel('auto')`` itself keeps the numpy fallback:
    a worker must never crash even if the environment mutates after
    configuration.
    """
    if os.environ.get(_JIT_ENV, "0") in ("", "0"):
        return
    if not HAS_NUMBA:
        from ..errors import ConfigError

        raise ConfigError(
            "%s=1 requests the numba JIT kernel but numba is not "
            "installed; unset %s (the numpy kernel is the default and "
            "needs no extra packages) or install numba"
            % (_JIT_ENV, _JIT_ENV)
        )


def resolve_kernel(mode: str) -> str:
    """Normalize a kernel mode knob to a concrete, runnable mode."""
    if mode not in KERNEL_MODES:
        raise ValueError(
            "unknown kernel mode %r; expected one of %r" % (mode, KERNEL_MODES)
        )
    if mode == "auto":
        if HAS_NUMBA and os.environ.get(_JIT_ENV, "0") not in ("", "0"):
            return "numba"
        return "numpy"
    if mode == "numba" and not HAS_NUMBA:
        raise ValueError(
            "kernel mode 'numba' requested but numba is not installed; "
            "use 'numpy' (or 'auto', which falls back automatically)"
        )
    return mode


_NUMBA_SWEEP = None


def _numba_sweep():
    """Compile (once per process) the jitted per-node forward pass."""
    global _NUMBA_SWEEP
    if _NUMBA_SWEEP is None:  # pragma: no cover - numba not in CI image
        import numba

        @numba.njit(cache=False)
        def sweep(kinds, slots, child_ptr, child, values, start):
            for i in range(start, len(slots)):
                kind = kinds[i]
                if kind == NODE_PROD:
                    v = 1.0
                    for j in range(child_ptr[i], child_ptr[i + 1]):
                        v *= values[child[j]]
                        if v == 0.0:
                            break
                    values[slots[i]] = v
                elif kind == NODE_SUM:
                    v = 0.0
                    for j in range(child_ptr[i], child_ptr[i + 1]):
                        v += values[child[j]]
                    values[slots[i]] = v

        _NUMBA_SWEEP = sweep
    return _NUMBA_SWEEP


def _span_gather(ptr: np.ndarray, sel: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Indices of the CSR spans ``sel`` plus the gathered spans' own CSR.

    ``ptr`` is a CSR offset array (len n+1); ``sel`` selects rows.  The
    returned ``idx`` indexes the flat data array, ``new_ptr`` is the CSR
    of the gathered subset.  Used by masked sweeps to address only the
    children of reachable nodes without materializing per-row loops.
    """
    starts = ptr[sel]
    lens = ptr[sel + 1] - starts
    new_ptr = np.zeros(len(sel) + 1, dtype=np.int64)
    np.cumsum(lens, out=new_ptr[1:])
    total = int(new_ptr[-1])
    idx = np.repeat(starts - new_ptr[:-1], lens) + np.arange(total, dtype=np.int64)
    return idx, new_ptr


class _Block:
    """One level's SUM or PROD nodes: seq-sorted ids plus child CSR."""

    __slots__ = ("ids", "seqs", "ptr", "child")

    def __init__(
        self, ids: np.ndarray, seqs: np.ndarray, ptr: np.ndarray, child: np.ndarray
    ) -> None:
        self.ids = ids
        self.seqs = seqs
        self.ptr = ptr
        self.child = child


def _pack_rows(rows: List[Tuple[int, int, Sequence[int]]]) -> _Block:
    """Rows of ``(seq, slot, children)`` -> a seq-sorted :class:`_Block`."""
    rows.sort()
    ids = np.array([slot for __, slot, __k in rows], dtype=np.int64)
    seqs = np.array([seq for seq, __, __k in rows], dtype=np.int64)
    ptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum([len(kids) for __, __s, kids in rows], out=ptr[1:])
    child = (
        np.concatenate([np.asarray(kids, dtype=np.int64) for __, __s, kids in rows])
        if rows
        else np.empty(0, dtype=np.int64)
    )
    return _Block(ids, seqs, ptr, child)


class ForestProgram:
    """A frozen, vectorizable schedule of the forest's live DAG.

    Built once per forest epoch (any node creation or eviction bumps the
    epoch) and reused for every sweep until the structure changes again.
    Leaf weights are pure functions of one concatenated pmf vector, so a
    program plus ``pmf_flat`` fully determines every circuit value --
    which is exactly what ships to pool workers.
    """

    def __init__(self) -> None:
        self.n_slots = 0
        self.n_levels = 0
        #: host-side variable universe, index-aligned with var_sizes
        self.variables: List[Tuple[int, int]] = []
        self.var_sizes = np.empty(0, dtype=np.int64)
        self.var_offsets = np.zeros(1, dtype=np.int64)
        # constant-weight leaves (TRUE + full-domain smoothing literals
        # weigh exactly 1.0; FALSE weighs 0.0)
        self.const_ids = np.empty(0, dtype=np.int64)
        self.false_ids = np.empty(0, dtype=np.int64)
        # set leaves: CSR of global pmf_flat cell indices, seq-sorted
        self.set_ids = np.empty(0, dtype=np.int64)
        self.set_seqs = np.empty(0, dtype=np.int64)
        self.set_ptr = np.zeros(1, dtype=np.int64)
        self.set_cells = np.empty(0, dtype=np.int64)
        # pair leaves: Pr(left > right) with optional negation
        self.pair_ids = np.empty(0, dtype=np.int64)
        self.pair_seqs = np.empty(0, dtype=np.int64)
        self.pair_left = np.empty(0, dtype=np.int64)
        self.pair_right = np.empty(0, dtype=np.int64)
        self.pair_neg = np.empty(0, dtype=np.uint8)
        #: internal levels (index 0 = level 1): [(sum_block, prod_block)]
        self.levels: List[Tuple[_Block, _Block]] = []
        # host-only whole-order arrays for the scalar (python/numba)
        # sweeps; not shipped to workers
        self.order_slots = np.empty(0, dtype=np.int64)
        self.order_kinds = np.empty(0, dtype=np.int8)
        self.order_seqs = np.empty(0, dtype=np.int64)
        self.order_child_ptr = np.zeros(1, dtype=np.int64)
        self.order_child = np.empty(0, dtype=np.int64)
        #: host-only leaf payload rows for the python (store-backed) leaf
        #: pass: (seq, slot, variable, local value indices) / pair rows
        self.host_set_leaves: List[Tuple[int, int, Tuple[int, int], np.ndarray]] = []
        self.host_pair_leaves: List[Tuple[int, int, object, bool]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, forest) -> "ForestProgram":
        """Lower the forest's live nodes into level-blocked flat arrays.

        ``forest`` duck-types :class:`repro.probability.forest.CircuitForest`:
        columnar ``kinds``/``payloads``/``children``/``seqs`` lists, a
        ``live_slots()`` iterator and ``domain_size(variable)``.
        """
        self = cls()
        kinds = forest.kinds
        payloads = forest.payloads
        children = forest.children
        seqs = forest.seqs
        order = sorted(forest.live_slots(), key=lambda slot: seqs[slot])
        self.n_slots = len(kinds)

        # variable universe (deterministic: sorted), pmf_flat offsets
        variables = set()
        for slot in order:
            kind = kinds[slot]
            if kind == NODE_LEAF_SET:
                variables.add(payloads[slot][0])
            elif kind == NODE_LEAF_PAIR:
                variables.update(payloads[slot][0].variables())
        self.variables = sorted(variables)
        var_index = {variable: i for i, variable in enumerate(self.variables)}
        self.var_sizes = np.array(
            [forest.domain_size(variable) for variable in self.variables],
            dtype=np.int64,
        )
        self.var_offsets = np.zeros(len(self.variables) + 1, dtype=np.int64)
        np.cumsum(self.var_sizes, out=self.var_offsets[1:])

        level: Dict[int, int] = {}
        const_rows: List[int] = []
        false_rows: List[int] = []
        set_rows: List[Tuple[int, int, np.ndarray]] = []
        pair_rows: List[Tuple[int, int, int, int, int]] = []
        by_level: Dict[int, Tuple[list, list]] = {}
        for slot in order:
            kind = kinds[slot]
            if kind == NODE_SUM or kind == NODE_PROD:
                kids = children[slot]
                lev = 1 + max(level[child] for child in kids)
                level[slot] = lev
                sums, prods = by_level.setdefault(lev, ([], []))
                (sums if kind == NODE_SUM else prods).append(
                    (seqs[slot], slot, kids)
                )
                continue
            level[slot] = 0
            if kind == NODE_LEAF_SET:
                variable, values = payloads[slot]
                if values is None:
                    const_rows.append(slot)
                    continue
                cells = self.var_offsets[var_index[variable]] + np.asarray(
                    values, dtype=np.int64
                )
                set_rows.append((seqs[slot], slot, cells))
                self.host_set_leaves.append(
                    (seqs[slot], slot, variable, np.asarray(values, dtype=np.intp))
                )
            elif kind == NODE_LEAF_PAIR:
                expression, negated = payloads[slot]
                left = var_index[expression.left.variable]
                right = var_index[expression.right.variable]
                pair_rows.append((seqs[slot], slot, left, right, int(negated)))
                self.host_pair_leaves.append(
                    (seqs[slot], slot, expression, bool(negated))
                )
            elif kind == NODE_TRUE:
                const_rows.append(slot)
            else:  # NODE_FALSE
                false_rows.append(slot)

        self.const_ids = np.array(sorted(const_rows), dtype=np.int64)
        self.false_ids = np.array(sorted(false_rows), dtype=np.int64)

        set_rows.sort(key=lambda row: row[0])
        self.host_set_leaves.sort(key=lambda row: row[0])
        self.set_ids = np.array([slot for __, slot, __c in set_rows], dtype=np.int64)
        self.set_seqs = np.array([seq for seq, __, __c in set_rows], dtype=np.int64)
        self.set_ptr = np.zeros(len(set_rows) + 1, dtype=np.int64)
        np.cumsum([len(cells) for __, __s, cells in set_rows], out=self.set_ptr[1:])
        self.set_cells = (
            np.concatenate([cells for __, __s, cells in set_rows])
            if set_rows
            else np.empty(0, dtype=np.int64)
        )

        pair_rows.sort()
        self.host_pair_leaves.sort(key=lambda row: row[0])
        self.pair_ids = np.array([r[1] for r in pair_rows], dtype=np.int64)
        self.pair_seqs = np.array([r[0] for r in pair_rows], dtype=np.int64)
        self.pair_left = np.array([r[2] for r in pair_rows], dtype=np.int64)
        self.pair_right = np.array([r[3] for r in pair_rows], dtype=np.int64)
        self.pair_neg = np.array([r[4] for r in pair_rows], dtype=np.uint8)

        self.n_levels = max(by_level) if by_level else 0
        self.levels = [
            (
                _pack_rows(by_level.get(lev, ([], []))[0]),
                _pack_rows(by_level.get(lev, ([], []))[1]),
            )
            for lev in range(1, self.n_levels + 1)
        ]

        # whole-order arrays for the scalar sweeps
        self.order_slots = np.array(order, dtype=np.int64)
        self.order_kinds = np.array([kinds[slot] for slot in order], dtype=np.int8)
        self.order_seqs = np.array([seqs[slot] for slot in order], dtype=np.int64)
        self.order_child_ptr = np.zeros(len(order) + 1, dtype=np.int64)
        np.cumsum(
            [len(children[slot]) for slot in order], out=self.order_child_ptr[1:]
        )
        self.order_child = (
            np.concatenate(
                [np.asarray(children[slot], dtype=np.int64) for slot in order]
            )
            if order
            else np.empty(0, dtype=np.int64)
        )
        return self

    # ------------------------------------------------------------------
    # leaf weights
    # ------------------------------------------------------------------
    def gather_pmfs(self, store) -> np.ndarray:
        """The program's concatenated current pmf vector from a store."""
        if not self.variables:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(
            [np.asarray(store.pmf(variable), dtype=np.float64) for variable in self.variables]
        )

    def _pair_prob(
        self, pmf_flat: np.ndarray, left: int, right: int, lt_cache: Dict[int, np.ndarray]
    ) -> float:
        """``Pr(left > right)`` -- byte-compatible with the store formula."""
        offsets = self.var_offsets
        pmf_a = pmf_flat[offsets[left] : offsets[left + 1]]
        lt_b = lt_cache.get(right)
        if lt_b is None:
            pmf_b = pmf_flat[offsets[right] : offsets[right + 1]]
            lt_b = np.concatenate(((0.0,), np.cumsum(pmf_b)[:-1]))
            lt_cache[right] = lt_b
        limit = min(len(pmf_a), len(lt_b))
        total = float(pmf_a[:limit] @ lt_b[:limit])
        if len(pmf_a) > len(lt_b):
            total += float(pmf_a[len(lt_b) :].sum())
        return total

    def _leaf_pass(
        self,
        values: np.ndarray,
        pmf_flat: np.ndarray,
        min_seq: Optional[int],
        mask: Optional[np.ndarray],
    ) -> None:
        # constants are free to (re)write unconditionally
        values[self.const_ids] = 1.0
        values[self.false_ids] = 0.0
        # set leaves
        if len(self.set_ids):
            if mask is not None:
                sel = np.nonzero(mask[self.set_ids])[0]
                if len(sel):
                    idx, new_ptr = _span_gather(self.set_ptr, sel)
                    values[self.set_ids[sel]] = np.add.reduceat(
                        pmf_flat[self.set_cells[idx]], new_ptr[:-1]
                    )
            else:
                i0 = (
                    int(np.searchsorted(self.set_seqs, min_seq))
                    if min_seq is not None
                    else 0
                )
                if i0 < len(self.set_ids):
                    base = self.set_ptr[i0]
                    rel = self.set_ptr[i0:] - base
                    values[self.set_ids[i0:]] = np.add.reduceat(
                        pmf_flat[self.set_cells[base:]], rel[:-1]
                    )
        # pair leaves (few and scalar: the prefix-sum formula must match
        # the store's bit for bit, so no batching games here)
        if len(self.pair_ids):
            if mask is not None:
                sel = np.nonzero(mask[self.pair_ids])[0]
            else:
                i0 = (
                    int(np.searchsorted(self.pair_seqs, min_seq))
                    if min_seq is not None
                    else 0
                )
                sel = np.arange(i0, len(self.pair_ids))
            lt_cache: Dict[int, np.ndarray] = {}
            for j in sel:
                p = self._pair_prob(
                    pmf_flat, int(self.pair_left[j]), int(self.pair_right[j]), lt_cache
                )
                values[self.pair_ids[j]] = 1.0 - p if self.pair_neg[j] else p

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------
    def _sweep_numpy(
        self,
        values: np.ndarray,
        min_seq: Optional[int],
        mask: Optional[np.ndarray],
    ) -> None:
        for sum_block, prod_block in self.levels:
            for block, is_prod in ((sum_block, False), (prod_block, True)):
                ids = block.ids
                if not len(ids):
                    continue
                if mask is not None:
                    sel = np.nonzero(mask[ids])[0]
                    if not len(sel):
                        continue
                    idx, new_ptr = _span_gather(block.ptr, sel)
                    child_values = values[block.child[idx]]
                    out_ids = ids[sel]
                    offsets = new_ptr[:-1]
                else:
                    i0 = (
                        int(np.searchsorted(block.seqs, min_seq))
                        if min_seq is not None
                        else 0
                    )
                    if i0 >= len(ids):
                        continue
                    base = block.ptr[i0]
                    child_values = values[block.child[base:]]
                    out_ids = ids[i0:]
                    offsets = (block.ptr[i0:] - base)[:-1]
                if is_prod:
                    # log-space segmented product; zeros round-trip through
                    # -inf back to exact 0.0, and children never exceed 1
                    # by more than float noise, so exp never overflows
                    with np.errstate(divide="ignore"):
                        logs = np.log(child_values)
                    values[out_ids] = np.exp(np.add.reduceat(logs, offsets))
                else:
                    values[out_ids] = np.add.reduceat(child_values, offsets)

    def sweep_python(self, values: np.ndarray, min_seq: Optional[int] = None) -> None:
        """Scalar interpreter sweep over the whole-order arrays.

        Bit-identical arithmetic to :meth:`CompiledCircuit.evaluate`
        (sequential multiply with zero short-circuit, sequential add);
        leaves must already be written.
        """
        start = (
            int(np.searchsorted(self.order_seqs, min_seq)) if min_seq is not None else 0
        )
        kinds = self.order_kinds
        slots = self.order_slots
        ptr = self.order_child_ptr
        child = self.order_child
        for i in range(start, len(slots)):
            kind = kinds[i]
            if kind == NODE_PROD:
                v = 1.0
                for j in range(ptr[i], ptr[i + 1]):
                    v *= values[child[j]]
                    if v == 0.0:
                        break
                values[slots[i]] = v
            elif kind == NODE_SUM:
                v = 0.0
                for j in range(ptr[i], ptr[i + 1]):
                    v += values[child[j]]
                values[slots[i]] = v

    def evaluate(
        self,
        values: np.ndarray,
        pmf_flat: np.ndarray,
        min_seq: Optional[int] = None,
        mask: Optional[np.ndarray] = None,
        mode: str = "numpy",
    ) -> np.ndarray:
        """Forward pass: leaves from ``pmf_flat``, then internal levels.

        ``min_seq`` restricts to the suffix created/dirtied at or after
        that sequence number (``propagate_many`` semantics); ``mask``
        restricts to a reachable subset (worker chunks).  With neither,
        this is ``evaluate_many`` over every registered circuit at once.
        """
        self._leaf_pass(values, pmf_flat, min_seq, mask)
        if mode == "numba" and mask is None:  # pragma: no cover - optional JIT
            start = (
                int(np.searchsorted(self.order_seqs, min_seq))
                if min_seq is not None
                else 0
            )
            _numba_sweep()(
                self.order_kinds,
                self.order_slots,
                self.order_child_ptr,
                self.order_child,
                values,
                start,
            )
        else:
            self._sweep_numpy(values, min_seq, mask)
        return values

    def reach_mask(self, roots: Sequence[int]) -> np.ndarray:
        """Boolean mask of every node reachable from ``roots``."""
        mask = np.zeros(self.n_slots, dtype=bool)
        if not len(roots):
            return mask
        mask[np.asarray(roots, dtype=np.int64)] = True
        for sum_block, prod_block in reversed(self.levels):
            for block in (sum_block, prod_block):
                if not len(block.ids):
                    continue
                sel = np.nonzero(mask[block.ids])[0]
                if len(sel):
                    idx, __ = _span_gather(block.ptr, sel)
                    mask[block.child[idx]] = True
        return mask

    def evaluate_roots(
        self, roots: Sequence[int], pmf_flat: np.ndarray
    ) -> np.ndarray:
        """Fresh masked evaluation of the subgraph under ``roots``.

        The pool-worker entry point: no forest, no store -- just the
        program arrays and the published pmf vector.
        """
        values = np.zeros(self.n_slots, dtype=np.float64)
        self.evaluate(values, pmf_flat, mask=self.reach_mask(roots))
        return values

    # ------------------------------------------------------------------
    # shared-memory transport
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten to named arrays for :class:`SharedArrayBundle`.

        Ships only what the numpy masked sweep needs; the host-only
        order/payload mirrors (python + numba modes) stay behind.
        """
        sum_level_ptr = np.zeros(self.n_levels + 1, dtype=np.int64)
        prod_level_ptr = np.zeros(self.n_levels + 1, dtype=np.int64)
        np.cumsum([len(s.ids) for s, __ in self.levels], out=sum_level_ptr[1:])
        np.cumsum([len(p.ids) for __, p in self.levels], out=prod_level_ptr[1:])

        def _cat(parts, dtype):
            parts = [part for part in parts if len(part)]
            return np.concatenate(parts) if parts else np.empty(0, dtype=dtype)

        def _flatten(blocks):
            ids = _cat([b.ids for b in blocks], np.int64)
            seqs = _cat([b.seqs for b in blocks], np.int64)
            child = _cat([b.child for b in blocks], np.int64)
            ptr = np.zeros(len(ids) + 1, dtype=np.int64)
            lens = _cat([b.ptr[1:] - b.ptr[:-1] for b in blocks], np.int64)
            np.cumsum(lens, out=ptr[1:])
            return ids, seqs, ptr, child

        sum_ids, sum_seqs, sum_ptr, sum_child = _flatten([s for s, __ in self.levels])
        prod_ids, prod_seqs, prod_ptr, prod_child = _flatten(
            [p for __, p in self.levels]
        )
        return {
            "program_meta": np.array([self.n_slots, self.n_levels], dtype=np.int64),
            "program_var_sizes": self.var_sizes,
            "program_const_ids": self.const_ids,
            "program_false_ids": self.false_ids,
            "program_set_ids": self.set_ids,
            "program_set_seqs": self.set_seqs,
            "program_set_ptr": self.set_ptr,
            "program_set_cells": self.set_cells,
            "program_pair_ids": self.pair_ids,
            "program_pair_seqs": self.pair_seqs,
            "program_pair_left": self.pair_left,
            "program_pair_right": self.pair_right,
            "program_pair_neg": self.pair_neg,
            "program_sum_level_ptr": sum_level_ptr,
            "program_sum_ids": sum_ids,
            "program_sum_seqs": sum_seqs,
            "program_sum_ptr": sum_ptr,
            "program_sum_child": sum_child,
            "program_prod_level_ptr": prod_level_ptr,
            "program_prod_ids": prod_ids,
            "program_prod_seqs": prod_seqs,
            "program_prod_ptr": prod_ptr,
            "program_prod_child": prod_child,
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "ForestProgram":
        """Rebuild a sweep-capable program from :meth:`to_arrays` output.

        Copies out of the (possibly shared, soon-to-be-unmapped) buffers
        so the per-process cache outlives the bundle.  The result runs
        numpy sweeps only -- the host-side payload mirrors are absent.
        """
        def _own(name, dtype):
            return np.array(arrays[name], dtype=dtype)

        self = cls()
        meta = _own("program_meta", np.int64)
        self.n_slots = int(meta[0])
        self.n_levels = int(meta[1])
        self.var_sizes = _own("program_var_sizes", np.int64)
        self.var_offsets = np.zeros(len(self.var_sizes) + 1, dtype=np.int64)
        np.cumsum(self.var_sizes, out=self.var_offsets[1:])
        self.const_ids = _own("program_const_ids", np.int64)
        self.false_ids = _own("program_false_ids", np.int64)
        self.set_ids = _own("program_set_ids", np.int64)
        self.set_seqs = _own("program_set_seqs", np.int64)
        self.set_ptr = _own("program_set_ptr", np.int64)
        self.set_cells = _own("program_set_cells", np.int64)
        self.pair_ids = _own("program_pair_ids", np.int64)
        self.pair_seqs = _own("program_pair_seqs", np.int64)
        self.pair_left = _own("program_pair_left", np.int64)
        self.pair_right = _own("program_pair_right", np.int64)
        self.pair_neg = _own("program_pair_neg", np.uint8)

        def _blocks(prefix):
            level_ptr = _own("program_%s_level_ptr" % prefix, np.int64)
            ids = _own("program_%s_ids" % prefix, np.int64)
            seqs = _own("program_%s_seqs" % prefix, np.int64)
            ptr = _own("program_%s_ptr" % prefix, np.int64)
            child = _own("program_%s_child" % prefix, np.int64)
            blocks = []
            for lev in range(len(level_ptr) - 1):
                a, b = int(level_ptr[lev]), int(level_ptr[lev + 1])
                block_ptr = ptr[a : b + 1] - ptr[a]
                blocks.append(
                    _Block(
                        ids[a:b],
                        seqs[a:b],
                        block_ptr,
                        child[int(ptr[a]) : int(ptr[b])],
                    )
                )
            return blocks

        sums = _blocks("sum")
        prods = _blocks("prod")
        self.levels = list(zip(sums, prods))
        return self
