"""Naive probability computation: full assignment enumeration (Section 5).

"An intuitive solution (called Naive) ... is to evaluate all the variable
value combinations of the variables in phi(o), and to aggregate the
probabilities of those assignments with the value of true."  Complexity is
``O(N^(d * |D|))``; it exists as the exact reference for tests and as the
Figure 3 comparison baseline.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..ctable.condition import Condition
from ..datasets.dataset import Variable
from .distributions import DistributionStore


class EnumerationLimitExceeded(RuntimeError):
    """The assignment space is larger than the caller allowed."""


def naive_probability(
    condition: Condition,
    store: DistributionStore,
    max_assignments: Optional[int] = 10_000_000,
) -> float:
    """Exact ``Pr(condition)`` by summing over every variable assignment.

    ``max_assignments`` guards against accidentally enumerating an
    astronomically large space; pass ``None`` to disable the guard.
    """
    if condition.is_true:
        return 1.0
    if condition.is_false:
        return 0.0

    variables = sorted(condition.variables())
    supports = [store.support(v).tolist() for v in variables]
    pmfs = [store.pmf(v) for v in variables]

    if max_assignments is not None:
        space = 1
        for support in supports:
            space *= max(len(support), 1)
            if space > max_assignments:
                raise EnumerationLimitExceeded(
                    "assignment space exceeds %d" % max_assignments
                )

    total = 0.0
    assignment: Dict[Variable, int] = {}
    for values in itertools.product(*supports):
        weight = 1.0
        for pmf, value in zip(pmfs, values):
            weight *= float(pmf[value])
        if weight == 0.0:
            continue
        for variable, value in zip(variables, values):
            assignment[variable] = value
        if condition.evaluate(assignment):
            total += weight
    return total
