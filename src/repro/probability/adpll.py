"""ADPLL: adaptive DPLL search for condition probabilities (Algorithm 3).

Computing ``Pr(phi(o))`` is at least as hard as #SAT (weighted model
counting): variables range over multi-value discrete domains instead of
{0, 1}.  ADPLL adapts DPLL-style model counting:

* when the condition is constant the answer is immediate;
* when the clauses are *independent* (no variable appears in two different
  expressions) the probability follows directly from the special
  conjunctive rule ``Pr(p ^ q) = Pr(p) * Pr(q)`` and the general
  disjunctive rule ``Pr(p v q) = 1 - Pr(!p ^ !q)``;
* otherwise it branches on the variable occurring most often, summing
  ``p(v = a) * Pr(phi[v := a])`` over the variable's support, which breaks
  clause correlation "as quickly as possible".

On top of the paper's algorithm this implementation adds two standard
model-counting refinements (both can be disabled for ablation):

* **connected-component decomposition** -- clauses sharing no variable
  factorize, so each component is solved independently and multiplied;
* **sub-condition memoization** -- identical residual conditions reached
  along different branches are computed once.

Exact model counting is worst-case exponential, so the solver can run
under a **resource guard**: ``node_budget`` bounds the branch nodes one
``probability`` call may expand and ``deadline_s`` its wall time; on
exhaustion the call raises :class:`repro.errors.ResourceBudgetError`
(callers degrade to sampling; see :mod:`repro.probability.guard`).  The
memo is only written after a subtree completes, so an aborted call never
poisons it, and a guarded call that does *not* trip returns bit-for-bit
the same value as an unguarded one.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional, Tuple

from ..ctable.condition import Condition
from ..datasets.dataset import Variable
from ..errors import ResourceBudgetError
from ..lru import LRUCache
from .distributions import DistributionStore

#: Default bound on the sub-condition memo table.  Long crowdsourcing
#: runs accumulate stale-version entries (conditions whose variables were
#: constrained later are never looked up again); LRU eviction caps the
#: table while keeping the recently hot residuals.
DEFAULT_MEMO_SIZE = 262_144

#: available branching-variable heuristics (shared with the circuit
#: compiler, which splits on the same variable order):
#: ``frequency``  -- most occurrences in the condition (the paper's);
#: ``min_domain`` -- smallest domain under ``domain_size`` (fail-first);
#: ``first``      -- smallest variable id (arbitrary-but-fixed control).
BRANCH_HEURISTICS = ("frequency", "min_domain", "first")


def pick_branch_variable(
    condition: Condition,
    heuristic: str = "frequency",
    domain_size: Optional[Callable[[Variable], int]] = None,
) -> Variable:
    """The next variable to split on, shared by ADPLL and the compiler.

    ``domain_size`` supplies the per-variable size for ``min_domain``
    (ADPLL passes remaining support, the compiler the base domain).  Ties
    break on the smallest variable id so runs are reproducible (the paper
    breaks ties randomly).
    """
    counts = condition.variable_counts()
    if heuristic == "frequency":
        return min(counts, key=lambda v: (-counts[v], v))
    if heuristic == "min_domain":
        if domain_size is None:
            raise ValueError("min_domain needs a domain_size callback")
        return min(counts, key=lambda v: (domain_size(v), v))
    return min(counts)


def _independent_probability(condition: Condition, store: DistributionStore) -> float:
    """Direct evaluation via the conjunctive + disjunctive rules.

    Accumulated in log space: a wide clause's complement product
    ``prod(1 - p_i)`` multiplies many factors near 1 (tiny ``p_i``), where
    the naive running-product loop loses one ulp per step and can drift
    past the engine's 1e-9 parity budget -- and a long conjunction of
    near-zero clause probabilities underflows to 0 earlier than the log
    sum does.  ``fsum(log1p(-p))`` keeps both exact to the last rounding.
    """
    log_result = 0.0
    for clause in condition.clauses:
        log_none_true = []
        certain = False
        for expression in clause:
            p = store.prob_expression(expression)
            if p >= 1.0:
                # A certainly-true expression satisfies the clause: the
                # factor is exactly 1 (log1p(-1) would raise instead).
                certain = True
                break
            log_none_true.append(math.log1p(-p))
        if certain:
            continue
        clause_p = -math.expm1(math.fsum(log_none_true))
        if clause_p <= 0.0:
            return 0.0
        log_result += math.log(clause_p)
    return math.exp(log_result)


class ADPLL:
    """Reusable ADPLL solver bound to one distribution store.

    ``use_components`` / ``use_memo`` toggle the refinements for ablation;
    with both off, :meth:`probability` is a faithful rendering of the
    paper's Algorithm 3 (with deterministic smallest-variable tie-breaking
    instead of a random one, for reproducibility).
    """

    #: see the module-level :data:`BRANCH_HEURISTICS` (shared with the
    #: circuit compiler); kept as a class attribute for callers
    BRANCH_HEURISTICS = BRANCH_HEURISTICS

    def __init__(
        self,
        store: DistributionStore,
        use_components: bool = True,
        use_memo: bool = True,
        branch_heuristic: str = "frequency",
        use_absorption: bool = False,
        memo_size: int = DEFAULT_MEMO_SIZE,
        node_budget: int = 0,
        deadline_s: float = 0.0,
    ) -> None:
        if branch_heuristic not in self.BRANCH_HEURISTICS:
            raise ValueError(
                "unknown branch heuristic %r; expected one of %r"
                % (branch_heuristic, self.BRANCH_HEURISTICS)
            )
        if node_budget < 0:
            raise ValueError("node_budget must be non-negative (0 = unlimited)")
        if deadline_s < 0:
            raise ValueError("deadline_s must be non-negative (0 = no deadline)")
        self._store = store
        self._use_components = use_components
        self._use_memo = use_memo
        self._branch_heuristic = branch_heuristic
        self._use_absorption = use_absorption
        #: per-call cap on branch nodes (0 = unlimited)
        self.node_budget = int(node_budget)
        #: per-call wall-clock deadline in seconds (0 = none)
        self.deadline_s = float(deadline_s)
        #: condition -> (probability, store version when computed), bounded
        #: LRU (``memo_size <= 0`` keeps it unbounded)
        self._memo: "LRUCache[Condition, Tuple[float, int]]" = LRUCache(memo_size)
        #: number of branching (variable assignment) steps taken so far
        self.branch_count = 0
        #: probability calls aborted by the resource guard
        self.guard_trips = 0
        self._call_branch_start = 0
        self._deadline_at: Optional[float] = None

    def probability(self, condition: Condition) -> float:
        """``Pr(condition)`` under the store's current distributions.

        With a ``node_budget`` or ``deadline_s`` configured, raises
        :class:`ResourceBudgetError` when this one call exceeds either;
        the memo stays clean (only completed subtrees are ever cached).
        """
        self._call_branch_start = self.branch_count
        self._deadline_at = (
            time.perf_counter() + self.deadline_s if self.deadline_s > 0 else None
        )
        try:
            return self._probability(condition)
        except ResourceBudgetError:
            self.guard_trips += 1
            raise
        finally:
            self._deadline_at = None

    def _check_guards(self) -> None:
        if self.node_budget:
            spent = self.branch_count - self._call_branch_start
            if spent >= self.node_budget:
                raise ResourceBudgetError(
                    "ADPLL node budget", float(spent), float(self.node_budget)
                )
        if self._deadline_at is not None:
            now = time.perf_counter()
            if now >= self._deadline_at:
                raise ResourceBudgetError(
                    "ADPLL deadline",
                    self.deadline_s + (now - self._deadline_at),
                    self.deadline_s,
                )

    # ------------------------------------------------------------------
    def _memo_get(self, condition: Condition) -> Optional[float]:
        cached = self._memo.get(condition)
        if cached is None:
            return None
        value, cached_version = cached
        version = self._store.version
        if cached_version == version:
            return value
        if self._store.variables_unchanged_since(condition.variables(), cached_version):
            # The scan proved the entry still valid at the current version:
            # store that, so the next hit matches on version equality
            # instead of re-paying the per-variable scan every time.
            self._memo[condition] = (value, version)
            return value
        return None

    def _probability(self, condition: Condition) -> float:
        if condition.is_true:
            return 1.0
        if condition.is_false:
            return 0.0
        if self._use_memo:
            cached = self._memo_get(condition)
            if cached is not None:
                return cached
        if condition.is_variable_disjoint():
            result = _independent_probability(condition, self._store)
        elif self._use_components:
            result = 1.0
            for component in condition.connected_components():
                result *= self._solve_component(component)
        else:
            result = self._branch(condition)
        if self._use_memo:
            self._memo[condition] = (result, self._store.version)
        return result

    def _solve_component(self, component: Condition) -> float:
        if self._use_memo:
            cached = self._memo_get(component)
            if cached is not None:
                return cached
        if component.is_variable_disjoint():
            result = _independent_probability(component, self._store)
        else:
            result = self._branch(component)
        if self._use_memo:
            self._memo[component] = (result, self._store.version)
        return result

    def _pick_branch_variable(self, condition: Condition) -> Variable:
        return pick_branch_variable(
            condition,
            self._branch_heuristic,
            domain_size=lambda v: len(self._store.support(v)),
        )

    def _branch(self, condition: Condition) -> float:
        """Sum over the support of the chosen branching variable."""
        if self.node_budget or self._deadline_at is not None:
            self._check_guards()
        if self._use_absorption:
            condition = condition.absorbed()
            if condition.is_constant:
                return 1.0 if condition.is_true else 0.0
        variable = self._pick_branch_variable(condition)
        pmf = self._store.pmf(variable)
        support = self._store.support(variable)
        total = 0.0
        # One bulk ndarray->list conversion instead of a float()/indexing
        # pair per iteration: this loop is the deepest hot path.
        for value, weight in zip(support.tolist(), pmf[support].tolist()):
            residual = condition.substitute(variable, value)
            self.branch_count += 1
            total += weight * self._probability(residual)
        return total


def adpll_probability(
    condition: Condition,
    store: DistributionStore,
    use_components: bool = True,
    use_memo: bool = True,
) -> float:
    """One-shot convenience wrapper around :class:`ADPLL`."""
    return ADPLL(store, use_components=use_components, use_memo=use_memo).probability(
        condition
    )
