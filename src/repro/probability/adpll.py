"""ADPLL: adaptive DPLL search for condition probabilities (Algorithm 3).

Computing ``Pr(phi(o))`` is at least as hard as #SAT (weighted model
counting): variables range over multi-value discrete domains instead of
{0, 1}.  ADPLL adapts DPLL-style model counting:

* when the condition is constant the answer is immediate;
* when the clauses are *independent* (no variable appears in two different
  expressions) the probability follows directly from the special
  conjunctive rule ``Pr(p ^ q) = Pr(p) * Pr(q)`` and the general
  disjunctive rule ``Pr(p v q) = 1 - Pr(!p ^ !q)``;
* otherwise it branches on the variable occurring most often, summing
  ``p(v = a) * Pr(phi[v := a])`` over the variable's support, which breaks
  clause correlation "as quickly as possible".

On top of the paper's algorithm this implementation adds two standard
model-counting refinements (both can be disabled for ablation):

* **connected-component decomposition** -- clauses sharing no variable
  factorize, so each component is solved independently and multiplied;
* **sub-condition memoization** -- identical residual conditions reached
  along different branches are computed once.

Exact model counting is worst-case exponential, so the solver can run
under a **resource guard**: ``node_budget`` bounds the branch nodes one
``probability`` call may expand and ``deadline_s`` its wall time; on
exhaustion the call raises :class:`repro.errors.ResourceBudgetError`
(callers degrade to sampling; see :mod:`repro.probability.guard`).  The
memo is only written after a subtree completes, so an aborted call never
poisons it, and a guarded call that does *not* trip returns bit-for-bit
the same value as an unguarded one.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..ctable.condition import Condition
from ..errors import ResourceBudgetError
from ..lru import LRUCache
from .distributions import DistributionStore

#: Default bound on the sub-condition memo table.  Long crowdsourcing
#: runs accumulate stale-version entries (conditions whose variables were
#: constrained later are never looked up again); LRU eviction caps the
#: table while keeping the recently hot residuals.
DEFAULT_MEMO_SIZE = 262_144


def _is_independent(condition: Condition) -> bool:
    """True when no variable occurs in more than one expression occurrence."""
    counts = condition.variable_counts()
    return all(count == 1 for count in counts.values())


def _independent_probability(condition: Condition, store: DistributionStore) -> float:
    """Direct evaluation via the conjunctive + disjunctive rules."""
    result = 1.0
    for clause in condition.clauses:
        none_true = 1.0
        for expression in clause:
            none_true *= 1.0 - store.prob_expression(expression)
        result *= 1.0 - none_true
    return result


def _components(condition: Condition) -> List[Condition]:
    """Split clauses into groups connected by shared variables (union-find)."""
    clauses = condition.clauses
    parent = list(range(len(clauses)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    owner: Dict[Tuple[int, int], int] = {}
    for index, clause in enumerate(clauses):
        for expression in clause:
            for variable in expression.variables():
                if variable in owner:
                    union(owner[variable], index)
                else:
                    owner[variable] = index

    groups: Dict[int, List] = {}
    for index, clause in enumerate(clauses):
        groups.setdefault(find(index), []).append(clause)
    if len(groups) == 1:
        return [condition]
    return [Condition.of(group) for group in groups.values()]


class ADPLL:
    """Reusable ADPLL solver bound to one distribution store.

    ``use_components`` / ``use_memo`` toggle the refinements for ablation;
    with both off, :meth:`probability` is a faithful rendering of the
    paper's Algorithm 3 (with deterministic smallest-variable tie-breaking
    instead of a random one, for reproducibility).
    """

    #: available branching-variable heuristics:
    #: ``frequency``  -- most occurrences in the condition (the paper's);
    #: ``min_domain`` -- smallest remaining support (fail-first);
    #: ``first``      -- smallest variable id (arbitrary-but-fixed control).
    BRANCH_HEURISTICS = ("frequency", "min_domain", "first")

    def __init__(
        self,
        store: DistributionStore,
        use_components: bool = True,
        use_memo: bool = True,
        branch_heuristic: str = "frequency",
        use_absorption: bool = False,
        memo_size: int = DEFAULT_MEMO_SIZE,
        node_budget: int = 0,
        deadline_s: float = 0.0,
    ) -> None:
        if branch_heuristic not in self.BRANCH_HEURISTICS:
            raise ValueError(
                "unknown branch heuristic %r; expected one of %r"
                % (branch_heuristic, self.BRANCH_HEURISTICS)
            )
        if node_budget < 0:
            raise ValueError("node_budget must be non-negative (0 = unlimited)")
        if deadline_s < 0:
            raise ValueError("deadline_s must be non-negative (0 = no deadline)")
        self._store = store
        self._use_components = use_components
        self._use_memo = use_memo
        self._branch_heuristic = branch_heuristic
        self._use_absorption = use_absorption
        #: per-call cap on branch nodes (0 = unlimited)
        self.node_budget = int(node_budget)
        #: per-call wall-clock deadline in seconds (0 = none)
        self.deadline_s = float(deadline_s)
        #: condition -> (probability, store version when computed), bounded
        #: LRU (``memo_size <= 0`` keeps it unbounded)
        self._memo: "LRUCache[Condition, Tuple[float, int]]" = LRUCache(memo_size)
        #: number of branching (variable assignment) steps taken so far
        self.branch_count = 0
        #: probability calls aborted by the resource guard
        self.guard_trips = 0
        self._call_branch_start = 0
        self._deadline_at: Optional[float] = None

    def probability(self, condition: Condition) -> float:
        """``Pr(condition)`` under the store's current distributions.

        With a ``node_budget`` or ``deadline_s`` configured, raises
        :class:`ResourceBudgetError` when this one call exceeds either;
        the memo stays clean (only completed subtrees are ever cached).
        """
        self._call_branch_start = self.branch_count
        self._deadline_at = (
            time.perf_counter() + self.deadline_s if self.deadline_s > 0 else None
        )
        try:
            return self._probability(condition)
        except ResourceBudgetError:
            self.guard_trips += 1
            raise
        finally:
            self._deadline_at = None

    def _check_guards(self) -> None:
        if self.node_budget:
            spent = self.branch_count - self._call_branch_start
            if spent >= self.node_budget:
                raise ResourceBudgetError(
                    "ADPLL node budget", float(spent), float(self.node_budget)
                )
        if self._deadline_at is not None:
            now = time.perf_counter()
            if now >= self._deadline_at:
                raise ResourceBudgetError(
                    "ADPLL deadline",
                    self.deadline_s + (now - self._deadline_at),
                    self.deadline_s,
                )

    # ------------------------------------------------------------------
    def _memo_get(self, condition: Condition) -> Optional[float]:
        cached = self._memo.get(condition)
        if cached is None:
            return None
        value, cached_version = cached
        if cached_version == self._store.version:
            return value
        if self._store.variables_unchanged_since(condition.variables(), cached_version):
            return value
        return None

    def _probability(self, condition: Condition) -> float:
        if condition.is_true:
            return 1.0
        if condition.is_false:
            return 0.0
        if self._use_memo:
            cached = self._memo_get(condition)
            if cached is not None:
                return cached
        if _is_independent(condition):
            result = _independent_probability(condition, self._store)
        elif self._use_components:
            result = 1.0
            for component in _components(condition):
                result *= self._solve_component(component)
        else:
            result = self._branch(condition)
        if self._use_memo:
            self._memo[condition] = (result, self._store.version)
        return result

    def _solve_component(self, component: Condition) -> float:
        if self._use_memo:
            cached = self._memo_get(component)
            if cached is not None:
                return cached
        if _is_independent(component):
            result = _independent_probability(component, self._store)
        else:
            result = self._branch(component)
        if self._use_memo:
            self._memo[component] = (result, self._store.version)
        return result

    def _pick_branch_variable(self, condition: Condition):
        counts = condition.variable_counts()
        if self._branch_heuristic == "frequency":
            # Most occurrences first; ties break on the smallest variable id
            # so runs are reproducible (the paper breaks ties randomly).
            return min(counts, key=lambda v: (-counts[v], v))
        if self._branch_heuristic == "min_domain":
            return min(counts, key=lambda v: (len(self._store.support(v)), v))
        return min(counts)

    def _branch(self, condition: Condition) -> float:
        """Sum over the support of the chosen branching variable."""
        if self.node_budget or self._deadline_at is not None:
            self._check_guards()
        if self._use_absorption:
            condition = condition.absorbed()
            if condition.is_constant:
                return 1.0 if condition.is_true else 0.0
        variable = self._pick_branch_variable(condition)
        pmf = self._store.pmf(variable)
        support = self._store.support(variable)
        total = 0.0
        # One bulk ndarray->list conversion instead of a float()/indexing
        # pair per iteration: this loop is the deepest hot path.
        for value, weight in zip(support.tolist(), pmf[support].tolist()):
            residual = condition.substitute(variable, value)
            self.branch_count += 1
            total += weight * self._probability(residual)
        return total


def adpll_probability(
    condition: Condition,
    store: DistributionStore,
    use_components: bool = True,
    use_memo: bool = True,
) -> float:
    """One-shot convenience wrapper around :class:`ADPLL`."""
    return ADPLL(store, use_components=use_components, use_memo=use_memo).probability(
        condition
    )
