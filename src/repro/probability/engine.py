"""Probability engine: method dispatch + caching for ``Pr(phi(o))``.

Task selection recomputes condition probabilities many times per round
(entropy ranking, marginal utilities); the engine memoizes results keyed
by the (hashable) condition and invalidates whenever the constraint store
version changes, i.e. whenever a crowd answer could alter a distribution.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..ctable.condition import Condition
from .adpll import ADPLL
from .approxcount import approx_probability
from .distributions import DistributionStore
from .naive import naive_probability

#: Supported computation methods.
METHODS = ("adpll", "naive", "approx")


class ProbabilityEngine:
    """Computes and caches condition probabilities against one store."""

    def __init__(
        self,
        store: DistributionStore,
        method: str = "adpll",
        use_cache: bool = True,
        approx_samples: int = 2000,
        rng: Optional[np.random.Generator] = None,
        use_components: bool = True,
    ) -> None:
        if method not in METHODS:
            raise ValueError("unknown method %r; expected one of %r" % (method, METHODS))
        self.store = store
        self.method = method
        self._use_cache = use_cache
        self._approx_samples = approx_samples
        self._rng = rng or np.random.default_rng(0)
        self._adpll = ADPLL(store, use_components=use_components)
        #: condition -> (probability, store version when computed)
        self._cache: Dict[Condition, "tuple[float, int]"] = {}
        self.n_computations = 0
        self.n_cache_hits = 0

    def probability(self, condition: Condition) -> float:
        """``Pr(condition)`` under the current distributions."""
        if condition.is_true:
            return 1.0
        if condition.is_false:
            return 0.0
        version = self.store.version
        if self._use_cache:
            cached = self._cache.get(condition)
            if cached is not None:
                value, cached_version = cached
                if cached_version == version or self.store.variables_unchanged_since(
                    condition.variables(), cached_version
                ):
                    self.n_cache_hits += 1
                    return value
        value = self._compute(condition)
        self.n_computations += 1
        if self._use_cache:
            self._cache[condition] = (value, version)
        return value

    def _compute(self, condition: Condition) -> float:
        if self.method == "adpll":
            return self._adpll.probability(condition)
        if self.method == "naive":
            return naive_probability(condition, self.store)
        return approx_probability(
            condition, self.store, n_samples=self._approx_samples, rng=self._rng
        ).probability

    def __call__(self, condition: Condition) -> float:
        return self.probability(condition)
