"""Probability engine: method dispatch + caching for ``Pr(phi(o))``.

Task selection recomputes condition probabilities many times per round
(entropy ranking, marginal utilities); the engine memoizes results keyed
by the (hashable) condition and invalidates whenever the constraint store
version changes, i.e. whenever a crowd answer could alter a distribution.
The result cache is LRU-bounded: long crowdsourcing runs otherwise grow
it monotonically with stale-version entries that are never evicted.

:meth:`ProbabilityEngine.probability_many` is the batch entry point.  It
deduplicates conditions, bulk-computes every leaf expression probability
against the store's cumulative arrays, and -- when
:func:`repro.parallel.decide_workers` approves -- partitions the
independent conditions across the shared-memory process pool of
:mod:`repro.parallel`: the frozen store snapshot is published to shared
memory once per batch (workers attach lazily and cache per process)
instead of being pickled into every chunk payload.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ctable.condition import Condition
from ..errors import ResourceBudgetError
from ..lru import LRUCache
from ..parallel import (
    PoolDecision,
    SharedArrayBundle,
    attach_arrays,
    decide_workers,
    detach_all,
    run_sharded,
    usable_cpu_count,
)
from .adpll import ADPLL
from .approxcount import adaptive_approx_probability, approx_probability
from .compile import (
    DEFAULT_CIRCUIT_CACHE_SIZE,
    DEFAULT_COMPILE_NODE_BUDGET,
    CircuitStore,
)
from .distributions import DistributionStore
from .forest import CircuitForest
from .guard import CircuitBreaker, GuardedProbability
from .kernel import ForestProgram
from .naive import naive_probability

#: Supported computation methods.
METHODS = ("adpll", "naive", "approx")

#: Exact-probability backends for ``method="adpll"``: ``adpll`` re-solves
#: each condition per call, ``compiled`` compiles each condition once
#: into a d-DNNF circuit and re-propagates weights as answers land
#: (see :mod:`repro.probability.compile`), ``forest`` shares subcircuits
#: across all conditions in one store-scoped DAG and sweeps every
#: registered circuit at once with the array kernel
#: (:mod:`repro.probability.forest` / :mod:`repro.probability.kernel`).
PROBABILITY_BACKENDS = ("adpll", "compiled", "forest")

#: Default bound on the condition-probability cache.
DEFAULT_CACHE_SIZE = 65_536

#: Below this many uncached conditions a pool is never worth its fork +
#: pickling overhead; the batch falls back to the in-process path.
MIN_CONDITIONS_PER_WORKER = 8

#: Pool decisions for runs that never reach the pool policy, recorded so
#: ``stats()['pool_decision']`` always describes the *actual* run (the
#: fig03 sequential row used to report the pre-init placeholder).
_DECISION_SCALAR = PoolDecision(1, "sequential: scalar per-condition path")
_DECISION_ALL_CACHED = PoolDecision(1, "sequential: batch fully served from cache")


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` knob: ``None``/1 sequential, 0 = all cores."""
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        return usable_cpu_count()
    return max(1, n_jobs)


#: Per-process cache of stores rebuilt from shared memory, keyed by the
#: bundle handle: chunks of one batch landing on the same worker reuse
#: the rebuilt store (and its warm tail caches) instead of re-attaching.
_WORKER_STORES: Dict[tuple, DistributionStore] = {}


def _worker_store(handle) -> DistributionStore:
    store = _WORKER_STORES.get(handle.key)
    if store is None:
        store = DistributionStore.from_packed(attach_arrays(handle))
        _WORKER_STORES.clear()  # one live snapshot per worker is enough
        _WORKER_STORES[handle.key] = store
    return store


def _compute_chunk(payload) -> List[float]:
    """Pool worker: solve one chunk of conditions against the shared store.

    Module-level so it pickles by reference; the payload carries only a
    :class:`SharedArrayHandle` to the published snapshot plus the
    conditions themselves -- the pmf data never rides in the pickle.
    """
    handle, method, backend, compile_budget, conditions, approx_samples, seed = payload
    store = _worker_store(handle)
    if method == "adpll":
        solver = ADPLL(store)
        if backend == "compiled":
            # Per-chunk circuit store against the frozen snapshot; budget
            # trips degrade to ADPLL in-worker (counters stay process-local
            # -- the parent's compile accounting covers sequential batches).
            circuits = CircuitStore(store, node_budget=compile_budget)
            out = []
            for condition in conditions:
                try:
                    out.append(circuits.probability(condition))
                except ResourceBudgetError:
                    out.append(solver.probability(condition))
            return out
        return [solver.probability(condition) for condition in conditions]
    if method == "naive":
        return [naive_probability(condition, store) for condition in conditions]
    rng = np.random.default_rng(seed)
    return [
        approx_probability(
            condition, store, n_samples=approx_samples, rng=rng
        ).probability
        for condition in conditions
    ]


#: Per-process cache of forest programs rebuilt from shared memory, keyed
#: by the bundle handle (one live program per worker is enough).
_WORKER_PROGRAMS: Dict[tuple, Tuple[ForestProgram, np.ndarray]] = {}


def _forest_chunk(payload) -> List[float]:
    """Pool worker: masked kernel sweep over one chunk of circuit roots.

    The payload carries only a handle to the published program arrays
    plus the chunk's root slots -- no conditions, no store, no
    recompilation.  The worker attaches once per bundle, copies the
    arrays out of shared memory (the parent unlinks after the batch) and
    sweeps the subgraph reachable from its roots.
    """
    handle, roots = payload
    cached = _WORKER_PROGRAMS.get(handle.key)
    if cached is None:
        arrays = attach_arrays(handle)
        program = ForestProgram.from_arrays(arrays)
        pmf_flat = np.array(arrays["leaf_pmf_flat"], dtype=np.float64)
        _WORKER_PROGRAMS.clear()
        _WORKER_PROGRAMS[handle.key] = (program, pmf_flat)
    else:
        program, pmf_flat = cached
    values = program.evaluate_roots(roots, pmf_flat)
    return [float(values[root]) for root in roots]


class ProbabilityEngine:
    """Computes and caches condition probabilities against one store."""

    def __init__(
        self,
        store: DistributionStore,
        method: str = "adpll",
        use_cache: bool = True,
        approx_samples: int = 2000,
        rng: Optional[np.random.Generator] = None,
        use_components: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
        n_jobs: int = 1,
        node_budget: int = 0,
        deadline_s: float = 0.0,
        breaker_threshold: int = 3,
        backend: str = "adpll",
        compile_node_budget: int = DEFAULT_COMPILE_NODE_BUDGET,
        circuit_cache_size: int = DEFAULT_CIRCUIT_CACHE_SIZE,
        kernel: str = "auto",
    ) -> None:
        if method not in METHODS:
            raise ValueError("unknown method %r; expected one of %r" % (method, METHODS))
        if backend not in PROBABILITY_BACKENDS:
            raise ValueError(
                "unknown backend %r; expected one of %r"
                % (backend, PROBABILITY_BACKENDS)
            )
        if backend in ("compiled", "forest") and method != "adpll":
            raise ValueError(
                "the %s backend replaces the exact ADPLL path; "
                "it requires method='adpll' (got %r)" % (backend, method)
            )
        self.store = store
        self.method = method
        self._use_cache = use_cache
        self._approx_samples = approx_samples
        self._rng = rng or np.random.default_rng(0)
        self._adpll = ADPLL(
            store,
            use_components=use_components,
            node_budget=node_budget,
            deadline_s=deadline_s,
        )
        #: resource guard: active when exact ADPLL runs under a node
        #: budget or deadline; exhaustion degrades the condition to
        #: adaptive sampling and feeds the circuit breaker
        self.guard_active = method == "adpll" and (node_budget > 0 or deadline_s > 0)
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(failure_threshold=breaker_threshold)
            if self.guard_active
            else None
        )
        #: condition -> (exact?, error bound) for guarded computations
        self._guard_info: Dict[Condition, Tuple[bool, float]] = {}
        self.n_guard_fallbacks = 0
        #: compiled backend: circuit cache + its own breaker over the
        #: compile path (compilation blowups degrade to ADPLL, which may
        #: itself be guarded -- the full ladder is compiled -> ADPLL ->
        #: sampler)
        self.backend = backend
        self._compile_node_budget = int(compile_node_budget)
        self._circuit_cache_size = int(circuit_cache_size)
        self._circuits: Optional[CircuitStore] = None
        self._forest: Optional[CircuitForest] = None
        self.compile_breaker: Optional[CircuitBreaker] = None
        self.n_compile_fallbacks = 0
        self.forest_bundle_bytes = 0
        if backend == "compiled":
            self._circuits = CircuitStore(
                store, node_budget=compile_node_budget, cache_size=circuit_cache_size
            )
            self.compile_breaker = CircuitBreaker(failure_threshold=breaker_threshold)
        elif backend == "forest":
            self._forest = CircuitForest(
                store,
                node_budget=compile_node_budget,
                capacity=circuit_cache_size,
                kernel=kernel,
            )
            self.compile_breaker = CircuitBreaker(failure_threshold=breaker_threshold)
        #: default worker count for :meth:`probability_many`
        self.n_jobs = resolve_n_jobs(n_jobs)
        #: cooperative cancellation token (None = not attached); checked
        #: at per-condition boundaries so a session cancel/deadline stops
        #: the engine between conditions, never mid-solve
        self._cancellation = None
        #: condition -> (probability, store version when computed)
        self._cache: "LRUCache[Condition, Tuple[float, int]]" = LRUCache(cache_size)
        self.n_computations = 0
        self.n_cache_hits = 0
        # --- batch/pool perf counters ---------------------------------
        self.n_batches = 0
        self.n_batch_conditions = 0
        self.n_batch_pending = 0
        self.n_parallel_chunks = 0
        self.parallel_seconds = 0.0
        self.batch_seconds = 0.0
        #: last pool auto-selection decision (see repro.parallel)
        self._pool_decision = PoolDecision(1, "sequential: no batch computed yet")
        #: per-chunk wall times of the last parallel batch
        self.parallel_worker_seconds: List[float] = []

    # ------------------------------------------------------------------
    def attach_cancellation(self, token) -> None:
        """Attach a session :class:`CancellationToken` to this engine.

        Once attached, :meth:`probability` / :meth:`probability_many`
        observe the token at condition boundaries (raising the typed
        ``SessionCancelledError``), and a session deadline additionally
        clamps the guarded ADPLL per-call deadline so one exact solve can
        never outlive the session's remaining time.
        """
        self._cancellation = token

    def _cached(self, condition: Condition, version: int) -> Optional[float]:
        cached = self._cache.get(condition)
        if cached is None:
            return None
        value, cached_version = cached
        if cached_version == version:
            return value
        if self.store.variables_unchanged_since(condition.variables(), cached_version):
            # Refresh the stored version: the per-variable scan proved the
            # entry current, so subsequent hits at this version must match
            # on version equality instead of re-paying the scan each time.
            self._cache[condition] = (value, version)
            return value
        return None

    def probability(self, condition: Condition, obj: Optional[int] = None) -> float:
        """``Pr(condition)`` under the current distributions.

        ``obj`` optionally names the object the condition belongs to; the
        compiled backend uses it to distinguish "same object, condition
        simplified by an answer" recompiles from first-time compiles.
        """
        if condition.is_true:
            return 1.0
        if condition.is_false:
            return 0.0
        if self._cancellation is not None:
            self._cancellation.check("probability")
        if self._use_cache:
            value = self._cached(condition, self.store.version)
            if value is not None:
                self.n_cache_hits += 1
                return value
        self._pool_decision = _DECISION_SCALAR
        value = self._compute(condition, obj)
        self.n_computations += 1
        if self._use_cache:
            self._cache[condition] = (value, self.store.version)
        return value

    def probability_many(
        self,
        conditions: Sequence[Condition],
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
        objects: Optional[Sequence[int]] = None,
    ) -> List[float]:
        """``Pr(condition)`` for every condition, batched.

        Identical conditions are computed once, cached results are reused,
        and all leaf expression probabilities of the remaining conditions
        are bulk-computed first (one vectorized pass per variable).  With
        ``n_jobs > 1`` the uncached conditions are partitioned across a
        process pool; conditions are independent given the store snapshot,
        so chunks need no coordination.  Falls back to the sequential path
        for small batches where a pool cannot amortize its startup.
        """
        start = time.perf_counter()
        n_jobs = self.n_jobs if n_jobs is None else resolve_n_jobs(n_jobs)
        version = self.store.version
        results: Dict[Condition, float] = {}
        pending: List[Condition] = []
        #: owning object per distinct condition (compiled-backend recompile
        #: attribution; first owner wins on shared conditions)
        condition_objects: Dict[Condition, int] = {}
        if objects is not None:
            if len(objects) != len(conditions):
                raise ValueError("objects must align one-to-one with conditions")
            for condition, obj in zip(conditions, objects):
                condition_objects.setdefault(condition, obj)
        seen = set()
        for condition in conditions:
            # Dedup up front (Condition hashes canonically): duplicates in
            # the batch are computed once.
            if condition in seen:
                continue
            seen.add(condition)
            if condition.is_constant:
                results[condition] = 1.0 if condition.is_true else 0.0
                continue
            if self._use_cache:
                value = self._cached(condition, version)
                if value is not None:
                    self.n_cache_hits += 1
                    results[condition] = value
                    continue
            pending.append(condition)

        self.n_batch_pending += len(pending)
        if pending:
            self._warm_leaves(pending)
            if self._forest is not None:
                computed = self._compute_forest_batch(
                    pending, condition_objects, n_jobs, chunk_size
                )
            else:
                computed = self._compute_batch(
                    pending, condition_objects, n_jobs, chunk_size
                )
            self.n_computations += len(pending)
            for condition, value in zip(pending, computed):
                results[condition] = value
                if self._use_cache:
                    self._cache[condition] = (value, version)
        else:
            self._pool_decision = _DECISION_ALL_CACHED

        self.n_batches += 1
        self.n_batch_conditions += len(conditions)
        self.batch_seconds += time.perf_counter() - start
        return [results[condition] for condition in conditions]

    def _compute_batch(
        self,
        pending: List[Condition],
        condition_objects: Dict[Condition, int],
        n_jobs: int,
        chunk_size: Optional[int],
    ) -> List[float]:
        """Non-forest batch path: pool auto-selection, then per-condition."""
        # The guard's circuit-breaker state cannot be shared across a
        # process pool, so guarded batches always run in-process;
        # everything else goes through the substrate's auto-selection
        # (single-core hosts, oversubscribed n_jobs and small batches
        # all fall back to sequential instead of paying pool overhead).
        if self.guard_active and n_jobs > 1:
            decision = PoolDecision(
                1, "sequential: resource guard active, breaker state is process-local"
            )
        else:
            decision = decide_workers(n_jobs, len(pending), MIN_CONDITIONS_PER_WORKER)
        self._pool_decision = decision
        if decision.parallel:
            return self._compute_parallel(pending, decision.n_workers, chunk_size)
        computed = []
        for condition in pending:
            if self._cancellation is not None:
                self._cancellation.check("probability")
            computed.append(self._compute(condition, condition_objects.get(condition)))
        return computed

    def _compute_forest_batch(
        self,
        pending: List[Condition],
        condition_objects: Dict[Condition, int],
        n_jobs: int,
        chunk_size: Optional[int],
    ) -> List[float]:
        """Forest batch path: register everything, then ONE kernel sweep.

        All of the batch's conditions are registered in the shared forest
        first (the round's single compile batch -- residual conditions
        and subcircuits unify across objects as they land), then a single
        ``refresh`` sweep computes every value at once.  Conditions whose
        compilation trips the node budget fall down the usual ladder
        (ADPLL, guarded when configured), gated by the compile breaker.
        With a pool approved, the sweep fans out instead: workers attach
        the published program arrays and masked-sweep their chunk's
        reachable subgraph -- no recompilation, no store rebuild.
        """
        forest = self._forest
        breaker = self.compile_breaker
        roots: Dict[Condition, int] = {}
        fallback: List[Condition] = []
        for condition in pending:
            if self._cancellation is not None:
                self._cancellation.check("probability")
            if breaker.allow_exact():
                try:
                    roots[condition] = forest.register(
                        condition, obj=condition_objects.get(condition)
                    )
                except ResourceBudgetError:
                    breaker.record_failure()
                    self.n_compile_fallbacks += 1
                    fallback.append(condition)
                else:
                    breaker.record_success()
            else:
                self.n_compile_fallbacks += 1
                fallback.append(condition)
        if self.guard_active and n_jobs > 1:
            decision = PoolDecision(
                1, "sequential: resource guard active, breaker state is process-local"
            )
        else:
            decision = decide_workers(n_jobs, len(roots), MIN_CONDITIONS_PER_WORKER)
        self._pool_decision = decision
        values: Dict[Condition, float] = {}
        if roots:
            if decision.parallel:
                values = self._sweep_parallel_forest(
                    roots, decision.n_workers, chunk_size
                )
            else:
                forest.refresh()
                for condition, root in roots.items():
                    values[condition] = forest.value(condition)
            if self.guard_active:
                for condition in roots:
                    self._guard_info[condition] = (True, 0.0)
        out: List[float] = []
        for condition in pending:
            value = values.get(condition)
            if value is None:
                if self.breaker is None:
                    value = self._adpll.probability(condition)
                else:
                    value = self._compute_guarded(condition)
            out.append(value)
        return out

    def _sweep_parallel_forest(
        self,
        roots: Dict[Condition, int],
        n_workers: int,
        chunk_size: Optional[int],
    ) -> Dict[Condition, float]:
        """Fan the registered circuits' sweep out over the process pool.

        Publishes the forest program's flat arrays plus the current pmf
        vector to shared memory once; chunk payloads carry only the
        handle and root slots.  Workers sweep their chunk's reachable
        subgraph -- compiled artifacts ship, conditions don't.
        """
        forest = self._forest
        program = forest.ensure_program()
        arrays = program.to_arrays()
        arrays["leaf_pmf_flat"] = program.gather_pmfs(self.store)
        items = list(roots.items())
        if chunk_size is not None:
            n_chunks = max(1, -(-len(items) // max(1, int(chunk_size))))
        else:
            n_chunks = n_workers
        chunks: List[List[int]] = [[] for __ in range(n_chunks)]
        for position in range(len(items)):
            chunks[position % n_chunks].append(position)
        chunks = [chunk for chunk in chunks if chunk]
        bundle = SharedArrayBundle.publish(arrays)
        self.forest_bundle_bytes = bundle.nbytes
        start = time.perf_counter()
        try:
            payloads = [
                (bundle.handle, [items[i][1] for i in chunk]) for chunk in chunks
            ]
            run = run_sharded(_forest_chunk, payloads, n_workers)
        finally:
            bundle.unlink()
            detach_all()
            self.parallel_seconds += time.perf_counter() - start
        self.n_parallel_chunks += len(chunks)
        self.parallel_worker_seconds = list(run.worker_seconds)
        values: Dict[Condition, float] = {}
        for chunk, chunk_values in zip(chunks, run.results):
            for i, value in zip(chunk, chunk_values):
                values[items[i][0]] = value
        return values

    def precompile_many(
        self, conditions: Sequence[Condition], objects: Optional[Sequence[int]] = None
    ) -> int:
        """Batch-register conditions in the forest ahead of evaluation.

        The round-level compile hook (:class:`repro.core.utility_engine`
        submits a round's deduplicated base + residual conditions here in
        one batch): registration compiles missing circuits into the
        shared forest without sweeping, so the following
        ``probability_many`` calls find everything compiled and pay one
        sweep each.  No-op unless the forest backend is active.  Budget
        trips are swallowed -- the evaluation path re-attempts them with
        full breaker/fallback accounting.  Returns the number of
        conditions registered.
        """
        forest = self._forest
        if forest is None:
            return 0
        breaker = self.compile_breaker
        count = 0
        seen = set()
        for index, condition in enumerate(conditions):
            if condition.is_constant or condition in seen:
                continue
            seen.add(condition)
            if self._cancellation is not None:
                self._cancellation.check("precompile")
            if not breaker.allow_exact():
                break
            obj = objects[index] if objects is not None else None
            try:
                forest.register(condition, obj=obj)
            except ResourceBudgetError:
                continue
            count += 1
        return count

    def _warm_leaves(self, conditions: Sequence[Condition]) -> None:
        """Bulk-compute every distinct leaf expression of the batch."""
        leaves = set()
        for condition in conditions:
            leaves.update(condition.distinct_expressions())
        if leaves:
            self.store.prob_expressions_bulk(leaves)

    def _compute_parallel(
        self,
        pending: List[Condition],
        n_workers: int,
        chunk_size: Optional[int],
    ) -> List[float]:
        """Shard ``pending`` over the shared-memory pool; order-preserving.

        The frozen snapshot is published to shared memory once; chunk
        payloads carry only the handle and the conditions.  Pool
        *infrastructure* failures fall back to in-process execution
        inside :func:`repro.parallel.run_sharded`.
        """
        # Balance chunks by condition size: sort heavy-first, deal
        # round-robin, then restore the original order on merge.
        order = sorted(
            range(len(pending)),
            key=lambda i: -pending[i].n_expression_occurrences(),
        )
        if chunk_size is not None:
            n_chunks = max(1, -(-len(pending) // max(1, int(chunk_size))))
        else:
            n_chunks = n_workers
        chunks: List[List[int]] = [[] for __ in range(n_chunks)]
        for position, index in enumerate(order):
            chunks[position % n_chunks].append(index)
        chunks = [chunk for chunk in chunks if chunk]

        seeds = self._rng.integers(0, 2**31 - 1, size=len(chunks))
        bundle = SharedArrayBundle.publish(self.store.pack_snapshot())
        start = time.perf_counter()
        try:
            payloads = [
                (
                    bundle.handle,
                    self.method,
                    self.backend,
                    self._compile_node_budget,
                    [pending[i] for i in chunk],
                    self._approx_samples,
                    int(seed),
                )
                for chunk, seed in zip(chunks, seeds)
            ]
            run = run_sharded(_compute_chunk, payloads, n_workers)
        finally:
            bundle.unlink()
            # run_sharded's in-process fallback attaches in this process;
            # rebuilt stores copy the pmfs, so unmapping is safe
            detach_all()
            self.parallel_seconds += time.perf_counter() - start
        self.n_parallel_chunks += len(chunks)
        self.parallel_worker_seconds = list(run.worker_seconds)
        out: List[float] = [0.0] * len(pending)
        for chunk, values in zip(chunks, run.results):
            for index, value in zip(chunk, values):
                out[index] = value
        return out

    def _compute(self, condition: Condition, obj: Optional[int] = None) -> float:
        if self.method == "adpll":
            if self._circuits is not None or self._forest is not None:
                return self._compute_compiled(condition, obj)
            if self.breaker is None:
                return self._adpll.probability(condition)
            return self._compute_guarded(condition)
        if self.method == "naive":
            return naive_probability(condition, self.store)
        return approx_probability(
            condition, self.store, n_samples=self._approx_samples, rng=self._rng
        ).probability

    def _compute_compiled(self, condition: Condition, obj: Optional[int]) -> float:
        """Exact probability via the compiled circuit, with a fallback ladder.

        While compilation fits the node budget, the value is the circuit
        evaluation (exact; bit-compatible with ADPLL up to float
        associativity).  A budget trip counts a ``compile_fallback`` and
        degrades this condition to the ADPLL path -- guarded, when the
        resource guard is configured, so the full ladder is compiled ->
        ADPLL -> adaptive sampler.  The compile breaker turns repeated
        trips into skip-straight-to-ADPLL.
        """
        circuits = self._circuits if self._circuits is not None else self._forest
        breaker = self.compile_breaker
        if breaker.allow_exact():
            try:
                value = circuits.probability(condition, obj=obj)
            except ResourceBudgetError:
                breaker.record_failure()
                self.n_compile_fallbacks += 1
            else:
                breaker.record_success()
                if self.guard_active:
                    self._guard_info[condition] = (True, 0.0)
                return value
        else:
            self.n_compile_fallbacks += 1
        if self.breaker is None:
            return self._adpll.probability(condition)
        return self._compute_guarded(condition)

    def _compute_guarded(self, condition: Condition) -> float:
        """Exact ADPLL under the resource guard, sampling on exhaustion.

        While the guard never trips, the returned value is bit-for-bit
        the unguarded ADPLL result.  On a trip the condition degrades to
        adaptive Monte Carlo; the circuit breaker turns *repeated* trips
        into approximate-first (skipping the doomed exact attempt).
        """
        breaker = self.breaker
        if breaker.allow_exact():
            # Deadline propagation: the exact attempt may not outlive the
            # session's remaining time, so the per-call ADPLL deadline is
            # clamped to min(configured, session-remaining) for this call.
            prior_deadline = self._adpll.deadline_s
            remaining = (
                self._cancellation.remaining()
                if self._cancellation is not None
                else None
            )
            if remaining is not None:
                clamped = (
                    min(prior_deadline, remaining)
                    if prior_deadline > 0
                    else remaining
                )
                self._adpll.deadline_s = max(clamped, 1e-9)
            try:
                value = self._adpll.probability(condition)
            except ResourceBudgetError:
                breaker.record_failure()
                self.n_guard_fallbacks += 1
            else:
                breaker.record_success()
                self._guard_info[condition] = (True, 0.0)
                return value
            finally:
                self._adpll.deadline_s = prior_deadline
        estimate = adaptive_approx_probability(condition, self.store, rng=self._rng)
        self._guard_info[condition] = (False, estimate.half_width)
        return estimate.probability

    def probability_detailed(self, condition: Condition) -> GuardedProbability:
        """``Pr(condition)`` plus how it was obtained.

        Constants and unguarded computations are exact by construction;
        guarded computations report whether the resource guard degraded
        this condition to sampling, with the Wilson-interval error bound.
        """
        value = self.probability(condition)
        if condition.is_constant or not self.guard_active:
            return GuardedProbability(value, exact=True)
        exact, error_bound = self._guard_info.get(condition, (True, 0.0))
        return GuardedProbability(value, exact=exact, error_bound=error_bound)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Perf counter snapshot (cache behavior, batch/pool activity)."""
        lookups = self.n_cache_hits + self.n_computations
        stats: Dict[str, float] = {
            "computations": self.n_computations,
            "cache_hits": self.n_cache_hits,
            "cache_hit_rate": self.n_cache_hits / lookups if lookups else 0.0,
            "cache_size": len(self._cache),
            "cache_evictions": self._cache.evictions,
            "memo_size": len(self._adpll._memo),
            "memo_evictions": self._adpll._memo.evictions,
            "batches": self.n_batches,
            "batch_conditions": self.n_batch_conditions,
            "batch_pending": self.n_batch_pending,
            "batch_seconds": self.batch_seconds,
            "parallel_chunks": self.n_parallel_chunks,
            "parallel_seconds": self.parallel_seconds,
            "pool_workers": self._pool_decision.n_workers,
            "pool_decision": self._pool_decision.reason,
            "probabilities_per_sec": (
                self.n_batch_conditions / self.batch_seconds
                if self.batch_seconds > 0
                else 0.0
            ),
            "n_jobs": self.n_jobs,
        }
        stats["guard_active"] = 1 if self.guard_active else 0
        stats["guard_fallbacks"] = self.n_guard_fallbacks
        stats["guard_trips"] = self._adpll.guard_trips
        if self.breaker is not None:
            for key, value in self.breaker.stats().items():
                stats[key] = value
        # Circuit accounting (compiled or forest backend); zeros with a
        # stable schema -- including the forest keys -- when a backend is
        # off, so the obs verifier always finds them.
        stats["probability_backend"] = self.backend
        circuit_stats = dict(CircuitForest.empty_stats())
        if self._circuits is not None:
            circuit_stats.update(self._circuits.stats())
        elif self._forest is not None:
            circuit_stats.update(self._forest.stats())
        stats.update(circuit_stats)
        stats["forest_bundle_bytes"] = self.forest_bundle_bytes
        stats["compile_fallbacks"] = self.n_compile_fallbacks
        if self.compile_breaker is not None:
            for key, value in self.compile_breaker.stats().items():
                stats["compile_%s" % key] = value
        return stats

    def __call__(self, condition: Condition) -> float:
        return self.probability(condition)
