"""Store-scoped circuit forest: every condition's d-DNNF in one shared DAG.

PR-8's :class:`CircuitStore` compiles each condition into its own
:class:`CompiledCircuit` with a *per-circuit* unique table -- so the
clause chains, pair leaves and decision subtrees that different objects'
conditions share (heavily: skyline conditions of objects with the same
missing attributes are near-identical) are compiled and stored once per
object.  :class:`CircuitForest` hoists the unique table to the store
scope: one columnar node pool holds the union of all registered
circuits as a single DAG, identical subcircuits unify across objects,
and identical *residual conditions* met during different compilations
reuse each other's subtrees through a cross-registration memo.

Bookkeeping that replaces the per-circuit LRU:

* **refcounts** -- each node counts its parent edges plus one pin per
  registered root; evicting a registration (the forest keeps its own
  insertion-ordered LRU of registered conditions) unpins the root and
  cascade-frees whatever became unreachable, returning slots to a free
  list.  TRUE/FALSE are permanently pinned.
* **sequence numbers** -- every node carries a monotone creation seq;
  children always have lower seqs than parents (even across slot
  reuse), so "live nodes sorted by seq" is always a valid topological
  order.  The kernel's suffix sweeps key on it.
* **budget rollback** -- compilation runs under the same per-condition
  node budget as PR-8; a trip tears down exactly the nodes this
  registration created (in reverse creation order, so refcounts of
  pre-existing nodes are restored precisely) and re-raises, leaving
  every counter untouched.

Values live in one forest-wide array refreshed by
:meth:`CircuitForest.refresh`: a full kernel sweep on first use, then
suffix sweeps covering only nodes created since the last sweep and the
leaves (plus ancestors) of variables whose constraints moved --
``evaluate_many`` / ``propagate_many`` over all circuits at once, via
the kernel mode chosen at construction (``numpy``/``numba``/``python``;
see :mod:`repro.probability.kernel`).

New counters on top of the CircuitStore-compatible set:
``forest_nodes`` (live DAG size), ``nodes_shared`` (reachable nodes a
registration did *not* have to create) and ``shared_fraction``
(= nodes_shared / total reachable over all registrations).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..ctable.condition import Clause, Condition
from ..ctable.expression import Expression
from ..datasets.dataset import Variable
from ..errors import ResourceBudgetError
from .adpll import BRANCH_HEURISTICS, pick_branch_variable
from .compile import (
    DEFAULT_CIRCUIT_CACHE_SIZE,
    DEFAULT_COMPILE_NODE_BUDGET,
    NODE_FALSE,
    NODE_LEAF_PAIR,
    NODE_LEAF_SET,
    NODE_PROD,
    NODE_SUM,
    NODE_TRUE,
)
from .distributions import DistributionStore
from .kernel import ForestProgram, resolve_kernel

__all__ = ["CircuitForest"]

#: Kind marker for freed slots (never a valid node kind).
_FREED = -1

#: Refcount pin for the TRUE/FALSE constants: they are shared by every
#: circuit and must survive any eviction cascade.
_PINNED = 1 << 60


class CircuitForest:
    """All registered circuits as one refcounted, seq-ordered DAG.

    API-compatible with :class:`CircuitStore` where the engine needs it
    (``probability(condition, obj=...)``, ``stats()``, ``__len__``) and
    batch-first beyond it: :meth:`register` many conditions, then one
    :meth:`refresh` sweep serves every value.
    """

    def __init__(
        self,
        store: DistributionStore,
        heuristic: str = "frequency",
        node_budget: int = DEFAULT_COMPILE_NODE_BUDGET,
        capacity: int = DEFAULT_CIRCUIT_CACHE_SIZE,
        smooth: bool = True,
        kernel: str = "numpy",
    ) -> None:
        if heuristic not in BRANCH_HEURISTICS:
            raise ValueError(
                "unknown branch heuristic %r; expected one of %r"
                % (heuristic, BRANCH_HEURISTICS)
            )
        self.store = store
        self.heuristic = heuristic
        self.node_budget = int(node_budget)
        self.smooth = smooth
        self.capacity = int(capacity)
        self.kernel = resolve_kernel(kernel)
        # columnar node pool (index = slot; slots are recycled)
        self.kinds: List[int] = []
        self.payloads: List[object] = []
        self.children: List[Tuple[int, ...]] = []
        self.scopes: List[FrozenSet[Variable]] = []
        self.seqs: List[int] = []
        self.refs: List[int] = []
        self._keys: List[Optional[Tuple]] = []
        self._free_slots: List[int] = []
        self._unique: Dict[Tuple, int] = {}
        self._next_seq = 0
        #: bumped on any create/free; the kernel program is cached per epoch
        self.epoch = 0
        self._live = 0
        self.TRUE = self._alloc(NODE_TRUE, None, (), frozenset())
        self.FALSE = self._alloc(NODE_FALSE, None, (), frozenset())
        self.refs[self.TRUE] = _PINNED
        self.refs[self.FALSE] = _PINNED
        #: registered roots, insertion-ordered (= the forest's own LRU;
        #: repro.lru.LRUCache has no eviction callback, and eviction here
        #: must decref the root)
        self._registered: Dict[Condition, int] = {}
        #: cross-registration structure memo: condition -> (slot, seq);
        #: validated on use (slot alive and seq unchanged) so freed or
        #: recycled slots can never be resurrected
        self._cond_memo: Dict[Condition, Tuple[int, int]] = {}
        self._memo_limit = max(4096, 4 * self.capacity) if self.capacity else 65_536
        #: variable -> live weight-bearing leaf slots mentioning it
        self.leaf_vars: Dict[Variable, Set[int]] = {}
        #: hashes of every condition ever compiled (recompile detection)
        self._seen: Set[int] = set()
        self._object_conditions: Dict[int, Condition] = {}
        # CircuitStore-compatible counters
        self.circuits_compiled = 0
        self.circuit_nodes = 0
        self.propagations = 0
        self.recompiles = 0
        self.circuit_reuses = 0
        # forest counters
        self.nodes_shared = 0
        self._reach_total = 0
        self.full_sweeps = 0
        self.suffix_sweeps = 0
        self.evictions = 0
        # values: one array over all slots, refreshed by sweeps
        self._values: Optional[np.ndarray] = None
        self._values_version = -1
        self._swept = False
        #: oldest seq created since the last sweep (suffix cutoff)
        self._min_new_seq: Optional[int] = None
        self._program: Optional[ForestProgram] = None
        self._program_epoch = -1
        # per-registration compile scratch
        self._created: Optional[List[int]] = None
        self._budget_used = 0
        self._memo_scratch: Dict[Condition, int] = {}

    # ------------------------------------------------------------------
    # node pool
    # ------------------------------------------------------------------
    def _alloc(
        self,
        kind: int,
        payload: object,
        kids: Tuple[int, ...],
        scope: FrozenSet[Variable],
    ) -> int:
        if self._free_slots:
            slot = self._free_slots.pop()
            self.kinds[slot] = kind
            self.payloads[slot] = payload
            self.children[slot] = kids
            self.scopes[slot] = scope
            self.seqs[slot] = self._next_seq
            self.refs[slot] = 0
        else:
            slot = len(self.kinds)
            self.kinds.append(kind)
            self.payloads.append(payload)
            self.children.append(kids)
            self.scopes.append(scope)
            self.seqs.append(self._next_seq)
            self.refs.append(0)
            self._keys.append(None)
        self._next_seq += 1
        self._live += 1
        self.epoch += 1
        return slot

    def _new(
        self,
        kind: int,
        payload: object,
        kids: Tuple[int, ...],
        scope: FrozenSet[Variable],
    ) -> int:
        key = (kind, payload, kids)
        found = self._unique.get(key)
        if found is not None:
            return found
        budget = self.node_budget
        if budget and self._budget_used >= budget:
            raise ResourceBudgetError(
                "circuit node budget", float(self._budget_used + 1), float(budget)
            )
        self._budget_used += 1
        slot = self._alloc(kind, payload, kids, scope)
        self._keys[slot] = key
        self._unique[key] = slot
        for kid in kids:
            self.refs[kid] += 1
        if kind == NODE_LEAF_SET:
            variable, values = payload  # type: ignore[misc]
            if values is not None:
                self.leaf_vars.setdefault(variable, set()).add(slot)
        elif kind == NODE_LEAF_PAIR:
            for variable in payload[0].variables():  # type: ignore[index]
                self.leaf_vars.setdefault(variable, set()).add(slot)
        if self._created is not None:
            self._created.append(slot)
        if self._min_new_seq is None:
            self._min_new_seq = self.seqs[slot]
        return slot

    def _mark_free(self, slot: int) -> None:
        kind = self.kinds[slot]
        payload = self.payloads[slot]
        if kind == NODE_LEAF_SET:
            variable, values = payload  # type: ignore[misc]
            if values is not None:
                bucket = self.leaf_vars.get(variable)
                if bucket is not None:
                    bucket.discard(slot)
                    if not bucket:
                        del self.leaf_vars[variable]
        elif kind == NODE_LEAF_PAIR:
            for variable in payload[0].variables():  # type: ignore[index]
                bucket = self.leaf_vars.get(variable)
                if bucket is not None:
                    bucket.discard(slot)
                    if not bucket:
                        del self.leaf_vars[variable]
        key = self._keys[slot]
        if key is not None and self._unique.get(key) == slot:
            del self._unique[key]
        self.kinds[slot] = _FREED
        self.payloads[slot] = None
        self.children[slot] = ()
        self.scopes[slot] = frozenset()
        self._keys[slot] = None
        self.refs[slot] = 0
        self._free_slots.append(slot)
        self._live -= 1
        self.epoch += 1

    def _free_cascade(self, slot: int) -> None:
        """Free ``slot`` (refcount must be 0) and everything it orphans."""
        stack = [slot]
        while stack:
            s = stack.pop()
            if self.kinds[s] == _FREED or self.refs[s] > 0:
                continue
            kids = self.children[s]
            self._mark_free(s)
            for kid in kids:
                self.refs[kid] -= 1
                if self.refs[kid] == 0:
                    stack.append(kid)

    def _release_root(self, root: int) -> None:
        self.refs[root] -= 1
        if self.refs[root] == 0:
            self._free_cascade(root)

    def _rollback(self, created: List[int]) -> None:
        """Tear down a failed registration's nodes, newest first.

        Only created nodes can reference created nodes (children exist
        before parents), so unconditional teardown in reverse creation
        order restores every pre-existing refcount exactly.
        """
        for slot in reversed(created):
            if self.kinds[slot] == _FREED:
                continue
            kids = self.children[slot]
            self._mark_free(slot)
            for kid in kids:
                self.refs[kid] -= 1

    def live_slots(self) -> List[int]:
        return [slot for slot, kind in enumerate(self.kinds) if kind != _FREED]

    def domain_size(self, variable: Variable) -> int:
        return self.store.domain_size(variable)

    # ------------------------------------------------------------------
    # builder gates (same algebra as compile._Builder, forest-scoped)
    # ------------------------------------------------------------------
    def _set_leaf(self, variable: Variable, values: Sequence[int], size: int) -> int:
        values = tuple(sorted(values))
        if not values:
            return self.FALSE
        if len(values) == size:
            return self.TRUE
        return self._new(NODE_LEAF_SET, (variable, values), (), frozenset((variable,)))

    def _full_leaf(self, variable: Variable) -> int:
        return self._new(NODE_LEAF_SET, (variable, None), (), frozenset((variable,)))

    def _pair_leaf(self, expression: Expression, negated: bool) -> int:
        return self._new(
            NODE_LEAF_PAIR,
            (expression, negated),
            (),
            frozenset(expression.variables()),
        )

    def _prod(self, kids: Sequence[int]) -> int:
        flat: List[int] = []
        for child in kids:
            if child == self.FALSE:
                return self.FALSE
            if child == self.TRUE:
                continue
            if self.kinds[child] == NODE_PROD:
                flat.extend(self.children[child])
            else:
                flat.append(child)
        if not flat:
            return self.TRUE
        flat = sorted(set(flat))
        if len(flat) == 1:
            return flat[0]
        scope = frozenset().union(*(self.scopes[child] for child in flat))
        return self._new(NODE_PROD, None, tuple(flat), scope)

    def _sum(self, kids: Sequence[int]) -> int:
        live = [child for child in kids if child != self.FALSE]
        if not live:
            return self.FALSE
        if len(live) == 1:
            return live[0]
        scope = frozenset().union(*(self.scopes[child] for child in live))
        if self.smooth:
            padded = []
            for child in live:
                missing = scope - self.scopes[child]
                if missing:
                    pads = [self._full_leaf(v) for v in sorted(missing)]
                    child = self._prod([child] + pads)
                padded.append(child)
            live = padded
        return self._new(NODE_SUM, None, tuple(sorted(live)), scope)

    # ------------------------------------------------------------------
    # compiler (same traversal as compile._Compiler, with a cross-
    # registration condition memo layered over the per-registration one)
    # ------------------------------------------------------------------
    def _compile_node(self, condition: Condition) -> int:
        if condition.is_true:
            return self.TRUE
        if condition.is_false:
            return self.FALSE
        node = self._memo_scratch.get(condition)
        if node is not None:
            return node
        entry = self._cond_memo.get(condition)
        if entry is not None:
            slot, seq = entry
            if self.kinds[slot] != _FREED and self.seqs[slot] == seq:
                self._memo_scratch[condition] = slot
                return slot
            del self._cond_memo[condition]
        if condition.is_variable_disjoint():
            node = self._prod([self._clause(clause) for clause in condition.clauses])
        else:
            components = condition.connected_components()
            if len(components) > 1:
                node = self._prod(
                    [self._compile_node(component) for component in components]
                )
            else:
                node = self._decision(condition)
        self._memo_scratch[condition] = node
        return node

    def _literal(self, expression: Expression, negated: bool) -> int:
        variables = expression.variables()
        if len(variables) == 2:
            return self._pair_leaf(expression, negated)
        variable = variables[0]
        size = self.store.domain_size(variable)
        values = expression.true_values(size)
        if negated:
            positive = set(values)
            values = tuple(v for v in range(size) if v not in positive)
        return self._set_leaf(variable, values, size)

    def _clause(self, clause: Clause) -> int:
        terms: List[int] = []
        negatives: List[int] = []
        for expression in clause:
            positive = self._literal(expression, False)
            if positive == self.FALSE:
                continue
            if positive == self.TRUE:
                terms.append(self._prod(list(negatives)))
                return self._sum(terms)
            terms.append(self._prod(negatives + [positive]))
            negatives = negatives + [self._literal(expression, True)]
        return self._sum(terms)

    def _decision(self, condition: Condition) -> int:
        variable = pick_branch_variable(
            condition, self.heuristic, domain_size=self.store.domain_size
        )
        size = self.store.domain_size(variable)
        kids: List[int] = []
        for value in range(size):
            residual = self._compile_node(condition.substitute(variable, value))
            if residual == self.FALSE:
                continue
            leaf = self._set_leaf(variable, (value,), size)
            kids.append(self._prod([leaf, residual]))
        return self._sum(kids)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, condition: Condition, obj: Optional[int] = None) -> int:
        """Ensure ``condition`` has a registered root; return its slot.

        Raises :class:`ResourceBudgetError` (with full rollback) when a
        needed compilation exceeds the node budget.  Registered hits
        touch the LRU; capacity overflow evicts the oldest registration
        and cascade-frees its now-unshared nodes.
        """
        if condition.is_true:
            return self.TRUE
        if condition.is_false:
            return self.FALSE
        registered = self._registered
        root = registered.get(condition)
        if root is not None:
            del registered[condition]
            registered[condition] = root
            if obj is not None:
                self._object_conditions[obj] = condition
            if (
                self._swept
                and self._min_new_seq is None
                and self.store.version == self._values_version
            ):
                self.circuit_reuses += 1
            return root
        condition_changed = (
            obj is not None
            and self._object_conditions.get(obj) not in (None, condition)
        )
        self._created = []
        self._memo_scratch = {}
        self._budget_used = 0
        try:
            root = self._compile_node(condition)
        except ResourceBudgetError:
            self._rollback(self._created)
            raise
        finally:
            created, self._created = self._created, None
            memo_scratch, self._memo_scratch = self._memo_scratch, {}
        self.refs[root] += 1  # pin the registered root
        # free orphans: nodes created for dead branches of this compile
        for slot in reversed(created):
            if slot != root and self.kinds[slot] != _FREED and self.refs[slot] == 0:
                self._free_cascade(slot)
        for cond, slot in memo_scratch.items():
            if self.kinds[slot] != _FREED:
                self._cond_memo[cond] = (slot, self.seqs[slot])
        if len(self._cond_memo) > self._memo_limit:
            self._prune_memo()
        created_live = sum(1 for slot in created if self.kinds[slot] != _FREED)
        reach = self._reach_count(root)
        self.circuits_compiled += 1
        self.circuit_nodes += created_live
        self.nodes_shared += max(0, reach - created_live)
        self._reach_total += reach
        key = hash(condition)
        if key in self._seen or condition_changed:
            self.recompiles += 1
        self._seen.add(key)
        registered[condition] = root
        if obj is not None:
            self._object_conditions[obj] = condition
        if self.capacity and len(registered) > self.capacity:
            oldest = next(iter(registered))
            self._release_root(registered.pop(oldest))
            self.evictions += 1
        return root

    def _reach_count(self, root: int) -> int:
        """Nodes reachable from ``root``, excluding the TRUE/FALSE pins."""
        if root == self.TRUE or root == self.FALSE:
            return 0
        seen = {root}
        stack = [root]
        while stack:
            for kid in self.children[stack.pop()]:
                if kid not in seen and kid != self.TRUE and kid != self.FALSE:
                    seen.add(kid)
                    stack.append(kid)
        return len(seen)

    def _prune_memo(self) -> None:
        kept = {
            cond: (slot, seq)
            for cond, (slot, seq) in self._cond_memo.items()
            if self.kinds[slot] != _FREED and self.seqs[slot] == seq
        }
        if len(kept) > self._memo_limit:
            kept.clear()
        self._cond_memo = kept

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def ensure_program(self) -> ForestProgram:
        """The kernel program for the current epoch (rebuilt on change)."""
        if self._program is None or self._program_epoch != self.epoch:
            self._program = ForestProgram.build(self)
            self._program_epoch = self.epoch
        return self._program

    def _grow_values(self) -> np.ndarray:
        n = len(self.kinds)
        if self._values is None:
            self._values = np.zeros(n, dtype=np.float64)
        elif len(self._values) < n:
            grown = np.zeros(n, dtype=np.float64)
            grown[: len(self._values)] = self._values
            self._values = grown
        return self._values

    def _sweep(self, values: np.ndarray, cutoff: Optional[int]) -> None:
        program = self.ensure_program()
        if self.kernel == "python":
            self._python_leaf_pass(program, values, cutoff)
            program.sweep_python(values, cutoff)
        else:
            pmf_flat = program.gather_pmfs(self.store)
            program.evaluate(values, pmf_flat, min_seq=cutoff, mode=self.kernel)

    def _python_leaf_pass(
        self, program: ForestProgram, values: np.ndarray, cutoff: Optional[int]
    ) -> None:
        """Store-backed scalar leaf weights (interpreter-exact arithmetic)."""
        store = self.store
        values[program.const_ids] = 1.0
        values[program.false_ids] = 0.0
        for seq, slot, variable, index in program.host_set_leaves:
            if cutoff is not None and seq < cutoff:
                continue
            values[slot] = float(store.pmf(variable)[index].sum())
        for seq, slot, expression, negated in program.host_pair_leaves:
            if cutoff is not None and seq < cutoff:
                continue
            p = store.prob_expression(expression)
            values[slot] = 1.0 - p if negated else p

    def refresh(self) -> None:
        """Bring the forest-wide value array up to the store's version.

        First use runs a full ``evaluate_many`` sweep; afterwards only
        suffixes: from the oldest node created since the last sweep
        and/or the oldest leaf of any variable whose constraints moved
        (``propagate_many``).  A version-driven suffix sweep counts one
        propagation per registered circuit, keeping the counter
        comparable with the per-circuit interpreter's.
        """
        store = self.store
        if not self._registered:
            self._values_version = store.version
            self._min_new_seq = None
            return
        values = self._grow_values()
        if not self._swept:
            self._sweep(values, None)
            self.full_sweeps += 1
            self._swept = True
            self._values_version = store.version
            self._min_new_seq = None
            return
        cutoff = self._min_new_seq
        dirty = False
        if store.version != self._values_version:
            since = self._values_version
            changed_min: Optional[int] = None
            for variable, slots in self.leaf_vars.items():
                if store.variables_unchanged_since((variable,), since):
                    continue
                oldest = min(self.seqs[slot] for slot in slots)
                if changed_min is None or oldest < changed_min:
                    changed_min = oldest
            if changed_min is not None:
                dirty = True
                cutoff = changed_min if cutoff is None else min(cutoff, changed_min)
        if cutoff is not None:
            self._sweep(values, cutoff)
            if dirty:
                self.propagations += len(self._registered)
            else:
                self.suffix_sweeps += 1
        self._values_version = store.version
        self._min_new_seq = None

    def value(self, condition: Condition) -> float:
        """The registered condition's probability as of the last refresh."""
        if condition.is_true:
            return 1.0
        if condition.is_false:
            return 0.0
        root = self._registered[condition]
        return float(self._values[root])

    def probability(self, condition: Condition, obj: Optional[int] = None) -> float:
        """Scalar CircuitStore-compatible entry point: register + refresh."""
        if condition.is_true:
            return 1.0
        if condition.is_false:
            return 0.0
        root = self.register(condition, obj=obj)
        self.refresh()
        return float(self._values[root])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._registered)

    @property
    def forest_nodes(self) -> int:
        """Live shared-DAG nodes, excluding the two pinned constants."""
        return max(0, self._live - 2)

    def stats(self) -> Dict[str, object]:
        shared_fraction = (
            self.nodes_shared / self._reach_total if self._reach_total else 0.0
        )
        return {
            "circuits_compiled": self.circuits_compiled,
            "circuit_nodes": self.circuit_nodes,
            "propagations": self.propagations,
            "recompiles": self.recompiles,
            "circuit_reuses": self.circuit_reuses,
            "circuit_cache_size": len(self._registered),
            "forest_nodes": self.forest_nodes,
            "nodes_shared": self.nodes_shared,
            "shared_fraction": float(shared_fraction),
            "forest_full_sweeps": self.full_sweeps,
            "forest_suffix_sweeps": self.suffix_sweeps,
            "forest_evictions": self.evictions,
            "forest_kernel": self.kernel,
        }

    @staticmethod
    def empty_stats() -> Dict[str, object]:
        """Zeroed counters with the forest's full key schema.

        A superset of :meth:`CircuitStore.empty_stats`: engine stats
        merge these under every backend so the obs verifier always
        finds the forest keys.
        """
        return {
            "circuits_compiled": 0,
            "circuit_nodes": 0,
            "propagations": 0,
            "recompiles": 0,
            "circuit_reuses": 0,
            "circuit_cache_size": 0,
            "forest_nodes": 0,
            "nodes_shared": 0,
            "shared_fraction": 0.0,
            "forest_full_sweeps": 0,
            "forest_suffix_sweeps": 0,
            "forest_evictions": 0,
            "forest_kernel": "off",
        }
