"""Probability computation for c-table conditions (Section 5)."""

from .adpll import ADPLL, adpll_probability
from .approxcount import (
    ApproxEstimate,
    adaptive_approx_probability,
    approx_probability,
)
from .distributions import DistributionStore
from .engine import (
    DEFAULT_CACHE_SIZE,
    METHODS,
    ProbabilityEngine,
    resolve_n_jobs,
)
from .guard import CircuitBreaker, GuardedProbability
from .naive import EnumerationLimitExceeded, naive_probability

__all__ = [
    "ADPLL",
    "adpll_probability",
    "ApproxEstimate",
    "approx_probability",
    "adaptive_approx_probability",
    "DistributionStore",
    "DEFAULT_CACHE_SIZE",
    "METHODS",
    "ProbabilityEngine",
    "resolve_n_jobs",
    "CircuitBreaker",
    "GuardedProbability",
    "EnumerationLimitExceeded",
    "naive_probability",
]
