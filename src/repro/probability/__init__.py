"""Probability computation for c-table conditions (Section 5)."""

from .adpll import ADPLL, BRANCH_HEURISTICS, adpll_probability, pick_branch_variable
from .approxcount import (
    ApproxEstimate,
    adaptive_approx_probability,
    approx_probability,
)
from .compile import (
    DEFAULT_CIRCUIT_CACHE_SIZE,
    DEFAULT_COMPILE_NODE_BUDGET,
    CircuitStore,
    CompiledCircuit,
    compile_condition,
)
from .distributions import DistributionStore
from .engine import (
    DEFAULT_CACHE_SIZE,
    METHODS,
    PROBABILITY_BACKENDS,
    ProbabilityEngine,
    resolve_n_jobs,
)
from .forest import CircuitForest
from .kernel import HAS_NUMBA, KERNEL_MODES, ForestProgram, resolve_kernel
from .guard import CircuitBreaker, GuardedProbability
from .naive import EnumerationLimitExceeded, naive_probability

__all__ = [
    "ADPLL",
    "BRANCH_HEURISTICS",
    "adpll_probability",
    "pick_branch_variable",
    "ApproxEstimate",
    "approx_probability",
    "adaptive_approx_probability",
    "DEFAULT_CIRCUIT_CACHE_SIZE",
    "DEFAULT_COMPILE_NODE_BUDGET",
    "CircuitStore",
    "CircuitForest",
    "CompiledCircuit",
    "ForestProgram",
    "HAS_NUMBA",
    "KERNEL_MODES",
    "compile_condition",
    "resolve_kernel",
    "DistributionStore",
    "DEFAULT_CACHE_SIZE",
    "METHODS",
    "PROBABILITY_BACKENDS",
    "ProbabilityEngine",
    "resolve_n_jobs",
    "CircuitBreaker",
    "GuardedProbability",
    "EnumerationLimitExceeded",
    "naive_probability",
]
