"""Knowledge compilation: conditions to smoothed deterministic d-DNNF circuits.

Exact model counting is the pipeline's one remaining asymptotic cost:
ADPLL re-solves every ``phi(o)`` from scratch each round even though crowd
answers only reassign variable weights (pmf renormalization onto narrowed
allowed sets) or determine expressions.  Knowledge compilation splits the
work: compile each condition ONCE into a circuit whose *structure* is
store-independent, then answer every later probability query by weight
propagation -- linear in circuit size (classic d-DNNF evaluation; the
counting itself stays #P-hard, per Arenas et al., "Counting Problems over
Incomplete Databases", which is why compilation runs under a node budget).

The compiler mirrors ADPLL's search (same branching heuristics via
:func:`repro.probability.adpll.pick_branch_variable`, same
connected-component decomposition via ``Condition.connected_components``)
but records the trace as a DAG instead of folding it into one number:

* **decision nodes** -- branching on variable ``v`` becomes a SUM over
  the *full base domain* of ``v``: each child is the product of the
  value literal ``v = a`` and ``compile(phi[v := a])``.  Children are
  mutually exclusive on ``v``'s value (deterministic) and ``v`` never
  reappears below (decomposable).  Branching over the full domain --
  not the currently supported values -- is what makes re-weighting
  sound: a value whose probability drops to zero, or comes back after a
  contradiction overwrite re-expands the allowed set, is just a leaf
  whose weight moves;
* **independent conditions** -- when no variable repeats
  (``Condition.is_variable_disjoint``), a clause ``e1 v e2 v ...``
  compiles without branching into the deterministic sum
  ``e1 + !e1*e2 + !e1*!e2*e3 + ...``;
* **component decomposition** -- variable-disjoint clause groups become
  a decomposable AND of independently compiled circuits;
* **leaves** -- *set literals* ``v in S`` (a var-vs-const expression and
  its negation are both value sets, via ``Expression.true_values``)
  weighted by ``sum(pmf(v)[S])``, plus *theory leaves* for var-vs-var
  atoms ``x > y`` weighted by ``Pr(x > y)`` under the store.  Theory
  leaves keep two-variable atoms atomic instead of splitting one side
  into a full decision -- they only ever appear where the enclosing
  structure guarantees independence, so determinism is preserved;
* **smoothing** -- every SUM's children are padded with full-domain
  literals of their missing variables so all children range over the
  same scope.  With normalized pmfs the pad weight is exactly 1.0, so
  smoothing never changes a probability; it is kept for the standard
  d-DNNF invariants and costs one *shared* node per variable thanks to
  dedup;
* **node dedup** -- structurally identical nodes unify through a unique
  table and identical residual conditions compile once, so the result
  is a DAG, not a tree.

:class:`CircuitStore` is the round-to-round cache: keyed by condition
(and optionally by object), it re-propagates weights when the
distribution store's version moves instead of recompiling, and compiles
anew only when the condition itself changed -- i.e. an answer determined
one of its expressions.  Compilation runs under a node budget;
exhaustion raises :class:`repro.errors.ResourceBudgetError`, which the
engine's compile-path circuit breaker turns into a degrade to ADPLL and,
from there, the existing sampler ladder.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..ctable.condition import Clause, Condition
from ..ctable.expression import Expression
from ..datasets.dataset import Variable
from ..errors import ResourceBudgetError
from ..lru import LRUCache
from .adpll import BRANCH_HEURISTICS, pick_branch_variable
from .distributions import DistributionStore

#: Default cap on nodes materialized while compiling ONE condition.
#: Generous -- typical skyline conditions compile to a few hundred nodes
#: -- but finite, because pathological clause entanglement is worst-case
#: exponential; exhaustion degrades to ADPLL via the engine's breaker.
DEFAULT_COMPILE_NODE_BUDGET = 200_000

#: Default bound on circuits kept by :class:`CircuitStore` (LRU).
DEFAULT_CIRCUIT_CACHE_SIZE = 16_384

# Node kinds.  TRUE/FALSE are constants, LEAF_SET is "variable in value
# set" (values None = the full-domain smoothing literal), LEAF_PAIR is a
# var-vs-var theory atom (possibly negated), SUM/PROD are the internal
# deterministic-or / decomposable-and gates.
_TRUE = 0
_FALSE = 1
_LEAF_SET = 2
_LEAF_PAIR = 3
_SUM = 4
_PROD = 5

#: Public aliases: the circuit forest (:mod:`repro.probability.forest`)
#: and the array kernel (:mod:`repro.probability.kernel`) build on the
#: same node kinds and must agree on the encoding.
NODE_TRUE = _TRUE
NODE_FALSE = _FALSE
NODE_LEAF_SET = _LEAF_SET
NODE_LEAF_PAIR = _LEAF_PAIR
NODE_SUM = _SUM
NODE_PROD = _PROD


class CompiledCircuit:
    """One condition's smoothed deterministic d-DNNF, ready to re-weight.

    Nodes are stored column-wise (``kinds``/``payloads``/``children``)
    with ids in topological order -- children are always created before
    their parents -- so one forward pass over ``range(len(self))``
    evaluates or incrementally re-propagates the whole DAG without
    parent pointers or an explicit sort.

    The circuit carries its last evaluation (``value``) and the store
    version it was computed at (``version``); :meth:`propagate` brings
    both forward by recomputing only the leaves of changed variables and
    the internal nodes downstream of them.
    """

    __slots__ = (
        "kinds",
        "payloads",
        "children",
        "root",
        "scope",
        "leaf_vars",
        "_set_index",
        "_values",
        "value",
        "version",
    )

    def __init__(
        self,
        kinds: List[int],
        payloads: List[object],
        children: List[Tuple[int, ...]],
        root: int,
        scope: FrozenSet[Variable],
    ) -> None:
        self.kinds = kinds
        self.payloads = payloads
        self.children = children
        self.root = root
        self.scope = scope
        # variable -> ids of weight-bearing leaves mentioning it (used to
        # find dirty leaves on propagate; full-domain smoothing literals
        # always weigh 1.0 and are skipped)
        self.leaf_vars: Dict[Variable, List[int]] = {}
        # node id -> ndarray of domain values, precomputed for fast gathers
        self._set_index: Dict[int, np.ndarray] = {}
        for node, kind in enumerate(kinds):
            if kind == _LEAF_SET:
                variable, values = payloads[node]
                if values is None:
                    continue
                self._set_index[node] = np.asarray(values, dtype=np.intp)
                self.leaf_vars.setdefault(variable, []).append(node)
            elif kind == _LEAF_PAIR:
                expression, __ = payloads[node]
                for variable in expression.variables():
                    self.leaf_vars.setdefault(variable, []).append(node)
        self._values: Optional[List[float]] = None
        self.value = 0.0
        self.version = -1

    def __len__(self) -> int:
        return len(self.kinds)

    def n_edges(self) -> int:
        return sum(len(kids) for kids in self.children)

    # ------------------------------------------------------------------
    def _leaf_weight(self, node: int, store: DistributionStore) -> float:
        kind = self.kinds[node]
        if kind == _TRUE:
            return 1.0
        if kind == _FALSE:
            return 0.0
        if kind == _LEAF_SET:
            variable, values = self.payloads[node]
            if values is None:
                # full-domain smoothing literal: pmfs are normalized
                return 1.0
            return float(store.pmf(variable)[self._set_index[node]].sum())
        expression, negated = self.payloads[node]
        p = store.prob_expression(expression)
        return 1.0 - p if negated else p

    def evaluate(self, store: DistributionStore) -> float:
        """Full bottom-up pass; caches per-node values for :meth:`propagate`."""
        values = [0.0] * len(self.kinds)
        for node, kind in enumerate(self.kinds):
            if kind == _PROD:
                v = 1.0
                for child in self.children[node]:
                    v *= values[child]
                    if v == 0.0:
                        break
                values[node] = v
            elif kind == _SUM:
                v = 0.0
                for child in self.children[node]:
                    v += values[child]
                values[node] = v
            else:
                values[node] = self._leaf_weight(node, store)
        self._values = values
        self.value = values[self.root]
        self.version = store.version
        return self.value

    def propagate(self, store: DistributionStore) -> float:
        """Incremental re-weighting: recompute only what an answer moved.

        Finds the variables constrained since the last evaluation,
        refreshes their leaves, then sweeps forward once recomputing
        internal nodes with a dirty child.  Linear in circuit size in the
        worst case, and typically far less -- untouched subcircuits are
        skipped entirely.
        """
        if self._values is None:
            return self.evaluate(store)
        since = self.version
        changed = [
            variable
            for variable in self.leaf_vars
            if not store.variables_unchanged_since((variable,), since)
        ]
        if not changed:
            self.version = store.version
            return self.value
        values = self._values
        dirty = bytearray(len(self.kinds))
        for variable in changed:
            for node in self.leaf_vars[variable]:
                new = self._leaf_weight(node, store)
                if new != values[node]:
                    values[node] = new
                    dirty[node] = 1
        for node, kind in enumerate(self.kinds):
            if kind != _SUM and kind != _PROD:
                continue
            kids = self.children[node]
            if not any(dirty[child] for child in kids):
                continue
            if kind == _PROD:
                v = 1.0
                for child in kids:
                    v *= values[child]
                    if v == 0.0:
                        break
            else:
                v = 0.0
                for child in kids:
                    v += values[child]
            if v != values[node]:
                values[node] = v
                dirty[node] = 1
        self.value = values[self.root]
        self.version = store.version
        return self.value


class _Builder:
    """Node factory with a unique table (dedup into a DAG) and a budget."""

    def __init__(self, node_budget: int) -> None:
        self.kinds: List[int] = []
        self.payloads: List[object] = []
        self.children: List[Tuple[int, ...]] = []
        self.scopes: List[FrozenSet[Variable]] = []
        self.node_budget = node_budget
        self._unique: Dict[Tuple, int] = {}
        self.TRUE = self._new(_TRUE, None, (), frozenset())
        self.FALSE = self._new(_FALSE, None, (), frozenset())

    def _new(
        self,
        kind: int,
        payload: object,
        kids: Tuple[int, ...],
        scope: FrozenSet[Variable],
    ) -> int:
        key = (kind, payload, kids)
        found = self._unique.get(key)
        if found is not None:
            return found
        node = len(self.kinds)
        if self.node_budget and node >= self.node_budget:
            raise ResourceBudgetError(
                "circuit node budget", float(node + 1), float(self.node_budget)
            )
        self.kinds.append(kind)
        self.payloads.append(payload)
        self.children.append(kids)
        self.scopes.append(scope)
        self._unique[key] = node
        return node

    # -- leaves --------------------------------------------------------
    def set_leaf(self, variable: Variable, values: Sequence[int], size: int) -> int:
        values = tuple(sorted(values))
        if not values:
            return self.FALSE
        if len(values) == size:
            # the full set weighs exactly 1 under any pmf
            return self.TRUE
        return self._new(_LEAF_SET, (variable, values), (), frozenset((variable,)))

    def full_leaf(self, variable: Variable) -> int:
        """The full-domain smoothing literal (constant weight 1.0)."""
        return self._new(_LEAF_SET, (variable, None), (), frozenset((variable,)))

    def pair_leaf(self, expression: Expression, negated: bool) -> int:
        return self._new(
            _LEAF_PAIR,
            (expression, negated),
            (),
            frozenset(expression.variables()),
        )

    # -- gates ---------------------------------------------------------
    def prod(self, kids: Sequence[int]) -> int:
        flat: List[int] = []
        for child in kids:
            if child == self.FALSE:
                return self.FALSE
            if child == self.TRUE:
                continue
            if self.kinds[child] == _PROD:
                # flatten nested products: improves dedup, keeps the DAG flat
                flat.extend(self.children[child])
            else:
                flat.append(child)
        if not flat:
            return self.TRUE
        flat = sorted(set(flat))
        if len(flat) == 1:
            return flat[0]
        scope = frozenset().union(*(self.scopes[child] for child in flat))
        return self._new(_PROD, None, tuple(flat), scope)

    def sum_(self, kids: Sequence[int], smooth: bool) -> int:
        live = [child for child in kids if child != self.FALSE]
        if not live:
            return self.FALSE
        if len(live) == 1:
            return live[0]
        scope = frozenset().union(*(self.scopes[child] for child in live))
        if smooth:
            padded = []
            for child in live:
                missing = scope - self.scopes[child]
                if missing:
                    pads = [self.full_leaf(v) for v in sorted(missing)]
                    child = self.prod([child] + pads)
                padded.append(child)
            live = padded
        return self._new(_SUM, None, tuple(sorted(live)), scope)


class _Compiler:
    """Bottom-up compiler from :class:`Condition` to :class:`CompiledCircuit`."""

    def __init__(
        self,
        store: DistributionStore,
        heuristic: str,
        node_budget: int,
        smooth: bool,
    ) -> None:
        self.store = store
        self.heuristic = heuristic
        self.smooth = smooth
        self.builder = _Builder(node_budget)
        self._memo: Dict[Condition, int] = {}

    def compile(self, condition: Condition) -> CompiledCircuit:
        root = self._node(condition)
        b = self.builder
        return CompiledCircuit(
            b.kinds, b.payloads, b.children, root, condition.variables()
        )

    def _node(self, condition: Condition) -> int:
        if condition.is_true:
            return self.builder.TRUE
        if condition.is_false:
            return self.builder.FALSE
        node = self._memo.get(condition)
        if node is not None:
            return node
        if condition.is_variable_disjoint():
            node = self.builder.prod(
                [self._clause(clause) for clause in condition.clauses]
            )
        else:
            components = condition.connected_components()
            if len(components) > 1:
                node = self.builder.prod(
                    [self._node(component) for component in components]
                )
            else:
                node = self._decision(condition)
        self._memo[condition] = node
        return node

    def _literal(self, expression: Expression, negated: bool) -> int:
        variables = expression.variables()
        if len(variables) == 2:
            return self.builder.pair_leaf(expression, negated)
        variable = variables[0]
        size = self.store.domain_size(variable)
        values = expression.true_values(size)
        if negated:
            positive = set(values)
            values = tuple(v for v in range(size) if v not in positive)
        return self.builder.set_leaf(variable, values, size)

    def _clause(self, clause: Clause) -> int:
        """A variable-disjoint clause as the deterministic sum
        ``e1 + !e1*e2 + !e1*!e2*e3 + ...`` (mutually exclusive terms)."""
        terms: List[int] = []
        negatives: List[int] = []
        for expression in clause:
            positive = self._literal(expression, False)
            if positive == self.builder.FALSE:
                # this expression can never hold; it contributes nothing
                continue
            if positive == self.builder.TRUE:
                # certainly true once reached: "all earlier failed" absorbs
                # the remaining expressions
                terms.append(self.builder.prod(list(negatives)))
                return self.builder.sum_(terms, self.smooth)
            terms.append(self.builder.prod(negatives + [positive]))
            negatives = negatives + [self._literal(expression, True)]
        return self.builder.sum_(terms, self.smooth)

    def _decision(self, condition: Condition) -> int:
        """Branch like ADPLL, over the FULL base domain (see module doc)."""
        variable = pick_branch_variable(
            condition, self.heuristic, domain_size=self.store.domain_size
        )
        size = self.store.domain_size(variable)
        kids: List[int] = []
        for value in range(size):
            residual = self._node(condition.substitute(variable, value))
            if residual == self.builder.FALSE:
                continue
            leaf = self.builder.set_leaf(variable, (value,), size)
            kids.append(self.builder.prod([leaf, residual]))
        return self.builder.sum_(kids, self.smooth)


def compile_condition(
    condition: Condition,
    store: DistributionStore,
    heuristic: str = "frequency",
    node_budget: int = DEFAULT_COMPILE_NODE_BUDGET,
    smooth: bool = True,
) -> CompiledCircuit:
    """Compile one condition against the store's base domains.

    Raises :class:`ResourceBudgetError` when the circuit would exceed
    ``node_budget`` nodes (0 = unlimited).  The result is structurally
    valid for the condition under ANY weights over the same base domains;
    evaluate it with :meth:`CompiledCircuit.evaluate` / ``propagate``.
    """
    if heuristic not in BRANCH_HEURISTICS:
        raise ValueError(
            "unknown branch heuristic %r; expected one of %r"
            % (heuristic, BRANCH_HEURISTICS)
        )
    if node_budget < 0:
        raise ValueError("node_budget must be non-negative (0 = unlimited)")
    return _Compiler(store, heuristic, node_budget, smooth).compile(condition)


class CircuitStore:
    """Round-to-round circuit cache: compile once, re-weight thereafter.

    ``probability(condition, obj=...)`` is the engine-facing entry point:

    * cache hit, variables untouched since the last evaluation -- return
      the cached value (and refresh the circuit's stored version, so the
      next hit compares versions instead of re-scanning);
    * cache hit, weights moved -- :meth:`CompiledCircuit.propagate`
      (counted in ``propagations``), no recompilation;
    * cache miss -- compile and evaluate (``circuits_compiled``,
      ``circuit_nodes``); when the miss is a condition seen before that
      was evicted, or the tracked object's condition changed because an
      answer determined one of its expressions, it additionally counts as
      a ``recompile``.

    The counters back the ``python -m repro.obs --probability`` verifier
    and the fig03 bench's re-weighting assertions.
    """

    def __init__(
        self,
        store: DistributionStore,
        heuristic: str = "frequency",
        node_budget: int = DEFAULT_COMPILE_NODE_BUDGET,
        cache_size: int = DEFAULT_CIRCUIT_CACHE_SIZE,
        smooth: bool = True,
    ) -> None:
        if heuristic not in BRANCH_HEURISTICS:
            raise ValueError(
                "unknown branch heuristic %r; expected one of %r"
                % (heuristic, BRANCH_HEURISTICS)
            )
        self.store = store
        self.heuristic = heuristic
        self.node_budget = int(node_budget)
        self.smooth = smooth
        self._circuits: "LRUCache[Condition, CompiledCircuit]" = LRUCache(cache_size)
        #: hashes of every condition ever compiled (recompile detection
        #: after LRU eviction; ints only, so memory stays bounded-ish)
        self._seen: Set[int] = set()
        #: object -> last condition evaluated for it
        self._object_conditions: Dict[int, Condition] = {}
        self.circuits_compiled = 0
        self.circuit_nodes = 0
        self.propagations = 0
        self.recompiles = 0
        self.circuit_reuses = 0

    def probability(self, condition: Condition, obj: Optional[int] = None) -> float:
        """``Pr(condition)``, compiling at most once per distinct condition.

        Raises :class:`ResourceBudgetError` if a needed compilation
        exceeds the node budget (the engine degrades to ADPLL).
        """
        if condition.is_true:
            return 1.0
        if condition.is_false:
            return 0.0
        store = self.store
        circuit = self._circuits.get(condition)
        if circuit is None:
            condition_changed = (
                obj is not None
                and self._object_conditions.get(obj) not in (None, condition)
            )
            # may raise ResourceBudgetError -- counters untouched, so a
            # budget trip never inflates the compile accounting
            circuit = compile_condition(
                condition, store, self.heuristic, self.node_budget, self.smooth
            )
            self.circuits_compiled += 1
            self.circuit_nodes += len(circuit)
            key = hash(condition)
            if key in self._seen or condition_changed:
                self.recompiles += 1
            self._seen.add(key)
            self._circuits[condition] = circuit
            value = circuit.evaluate(store)
        elif circuit.version == store.version or store.variables_unchanged_since(
            circuit.scope, circuit.version
        ):
            circuit.version = store.version
            self.circuit_reuses += 1
            value = circuit.value
        else:
            value = circuit.propagate(store)
            self.propagations += 1
        if obj is not None:
            self._object_conditions[obj] = condition
        return value

    def __len__(self) -> int:
        return len(self._circuits)

    def stats(self) -> Dict[str, int]:
        return {
            "circuits_compiled": self.circuits_compiled,
            "circuit_nodes": self.circuit_nodes,
            "propagations": self.propagations,
            "recompiles": self.recompiles,
            "circuit_reuses": self.circuit_reuses,
            "circuit_cache_size": len(self._circuits),
        }

    @staticmethod
    def empty_stats() -> Dict[str, int]:
        """Zeroed counters, so engine stats keep a stable schema when the
        compiled backend is off (the obs verifier keys on their presence)."""
        return {
            "circuits_compiled": 0,
            "circuit_nodes": 0,
            "propagations": 0,
            "recompiles": 0,
            "circuit_reuses": 0,
            "circuit_cache_size": 0,
        }
