"""Crash recovery: fold a checkpoint + journal suffix into live state.

Recovery contract (the crash-matrix tests assert it literally): for a
seeded run, ``load last checkpoint + replay journal suffix`` reproduces
the uninterrupted run's state bit-identically, no matter where between
two journal appends the process died.

Three shapes of durable state can exist after a crash:

* **checkpoint only** (legacy v1/v2, or journaling disabled): resume at
  the last completed round, exactly as before this layer existed;
* **checkpoint + journal**: the v3 checkpoint records the journal
  sequence it covers (``journal_seq``); every record after it is the
  *suffix* -- answers and re-asks of the in-flight round -- and is
  replayed on top, deduplicated by task id;
* **journal only**: ``round_commit`` records carry everything a
  checkpoint would (budget, pending, RNG/platform snapshots), so the
  whole run replays from record 1.

If the journal ends inside a round (a ``round_begin`` without its
``round_commit``), replay additionally returns an
:class:`InterruptedRound`: the journaled task batch plus the
round-start RNG/platform/allocator snapshots.  The framework finishes
that round by restoring the snapshots and re-posting the *same* tasks --
the simulated platform then reproduces the same answers, and answers
already journaled are recognised by task id and skipped (idempotent
re-application), so the recovered run rejoins the uninterrupted run's
trajectory exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..crowd.integrity import AnswerLedger
from ..crowd.quality import WorkerReliability
from ..crowd.task import ComparisonTask
from ..ctable.ctable import CTable
from ..ctable.expression import Expression, Relation
from ..errors import CheckpointError
from .journal import JournalRecord

__all__ = [
    "InterruptedRound",
    "RecoveredState",
    "task_to_payload",
    "task_from_payload",
    "recover_run_state",
]


def task_to_payload(task: ComparisonTask) -> dict:
    """JSON view of a task, preserving its id and re-ask lineage."""
    from ..persistence import expression_to_json

    return {
        "task_id": task.task_id,
        "expression": expression_to_json(task.expression),
        "for_object": task.for_object,
        "reask_of": task.reask_of,
    }


def task_from_payload(payload: dict) -> ComparisonTask:
    """Inverse of :func:`task_to_payload` (explicit id, no allocation)."""
    from ..persistence import expression_from_json

    return ComparisonTask(
        expression_from_json(payload["expression"]),
        for_object=payload.get("for_object"),
        task_id=int(payload["task_id"]),
        reask_of=payload.get("reask_of"),
    )


@dataclass
class InterruptedRound:
    """A journaled round the crash cut short, ready to re-execute."""

    round_index: int
    #: open conditions before any of the round's answers (journaled, so
    #: the recovered RoundRecord matches the uninterrupted one)
    open_before: int
    tasks: List[ComparisonTask]
    leftover_pending: List[ComparisonTask]
    #: framework RNG state captured just before the batch was posted
    rng_state: Optional[dict]
    platform_state: Optional[dict]
    task_ids_state: Optional[dict]
    #: task id -> journaled ``answer`` payload (already replayed)
    journaled: Dict[int, dict] = field(default_factory=dict)
    #: quarantined task id -> journaled ``reask`` payload
    reasks: Dict[int, dict] = field(default_factory=dict)


@dataclass
class RecoveredState:
    """Everything the crowdsourcing loop needs to continue a run."""

    budget_left: int
    history: List
    answer_log: List[Tuple[Expression, Relation]]
    pending: List[ComparisonTask]
    fault_totals: Dict[str, int]
    degraded: bool
    resumed: bool
    #: post-commit snapshots (None = nothing to restore)
    rng_state: Optional[dict] = None
    platform_state: Optional[dict] = None
    task_ids_state: Optional[dict] = None
    interrupted: Optional[InterruptedRound] = None
    #: suffix answers folded into the c-table/ledger during replay
    replayed_answers: int = 0
    #: suffix answers skipped because their task id was already in the
    #: ledger (the idempotent re-application guarantee)
    deduped_answers: int = 0


def recover_run_state(
    ctable: CTable,
    ledger: AnswerLedger,
    reliability: WorkerReliability,
    fingerprint: Dict[str, object],
    initial_budget: int,
    checkpoint=None,
    journal_records: Optional[Sequence[JournalRecord]] = None,
) -> RecoveredState:
    """Replay durable state into a freshly built c-table and ledger.

    Mutates ``ctable``/``ledger``/``reliability`` in place (exactly the
    way the live loop would have) and returns the loop state.  Raises
    :class:`CheckpointError` when the checkpoint or journal belongs to a
    different query than ``fingerprint``.
    """
    from ..persistence import _round_from_dict, expression_from_json

    state = RecoveredState(
        budget_left=initial_budget,
        history=[],
        answer_log=[],
        pending=[],
        fault_totals={},
        degraded=False,
        resumed=False,
    )
    start_seq = 0
    if checkpoint is not None:
        if checkpoint.fingerprint != fingerprint:
            raise CheckpointError(
                "checkpoint belongs to a different query: %r != %r"
                % (checkpoint.fingerprint, fingerprint)
            )
        for expression, relation in checkpoint.answer_log:
            ctable.apply_answer(expression, relation)
        if checkpoint.ledger_state is not None:
            ledger.load_state_dict(checkpoint.ledger_state)
        if checkpoint.reliability_state is not None:
            restored = WorkerReliability.from_state_dict(checkpoint.reliability_state)
            reliability.prior = restored.prior
            reliability._observed = restored._observed
        state.budget_left = checkpoint.budget_left
        state.history = list(checkpoint.history)
        state.answer_log = list(checkpoint.answer_log)
        state.pending = [
            ComparisonTask(expression, for_object=obj)
            if task_id is None
            else ComparisonTask(
                expression, for_object=obj, task_id=task_id, reask_of=reask_of
            )
            for expression, obj, task_id, reask_of in _normalized_pending(checkpoint)
        ]
        state.fault_totals = dict(checkpoint.fault_totals)
        state.degraded = checkpoint.degraded
        state.rng_state = checkpoint.rng_state
        state.platform_state = checkpoint.platform_state
        state.task_ids_state = getattr(checkpoint, "task_ids_state", None)
        state.resumed = True
        journal_seq = getattr(checkpoint, "journal_seq", None)
        if journal_seq is None:
            # A pre-v3 checkpoint cannot say which journal records it
            # already covers; replaying any would double-apply.  The
            # ledger's task-id dedupe would survive it, but budget
            # charges would not -- so fall back to checkpoint-only.
            journal_records = None
        else:
            start_seq = int(journal_seq)

    interrupted: Optional[InterruptedRound] = None
    for record in journal_records or ():
        if record.kind == "open":
            recorded = record.payload.get("fingerprint")
            if recorded != fingerprint:
                raise CheckpointError(
                    "journal belongs to a different query: %r != %r"
                    % (recorded, fingerprint)
                )
            continue
        if record.seq <= start_seq:
            continue
        state.resumed = True
        payload = record.payload
        if record.kind == "round_begin":
            interrupted = InterruptedRound(
                round_index=int(payload["round"]),
                open_before=int(payload["open_before"]),
                tasks=[task_from_payload(t) for t in payload["tasks"]],
                leftover_pending=[
                    task_from_payload(t) for t in payload.get("leftover_pending", [])
                ],
                rng_state=payload.get("rng_state"),
                platform_state=payload.get("platform_state"),
                task_ids_state=payload.get("task_ids"),
            )
        elif record.kind == "answer":
            task_id = payload.get("task_id")
            if task_id is not None and ledger.has_task(task_id):
                # Idempotent re-application: an answer already in the
                # ledger (e.g. covered by the checkpoint) is a no-op.
                state.deduped_answers += 1
                if interrupted is not None:
                    interrupted.journaled[task_id] = payload
                continue
            expression = expression_from_json(payload["expression"])
            relation = Relation(payload["relation"])
            votes = tuple(
                (int(wid), Relation(rel)) for wid, rel in payload.get("votes", [])
            )
            ledger.record(
                expression,
                relation,
                status=payload["status"],
                reason=payload.get("reason"),
                round_index=int(payload.get("round", 0)),
                task_id=task_id,
                votes=votes,
                reask_of=payload.get("reask_of"),
            )
            if payload["status"] == "applied":
                ctable.apply_answer(expression, relation)
                state.answer_log.append((expression, relation))
                reliability.observe_votes(votes, relation)
            state.budget_left -= int(payload.get("charge", 1))
            state.replayed_answers += 1
            if interrupted is not None and task_id is not None:
                interrupted.journaled[task_id] = payload
        elif record.kind == "reask":
            task_id = payload.get("task_id")
            if task_id is not None and ledger.has_task(int(task_id)):
                # Overlap with the checkpoint: the re-ask's answer is
                # already in the ledger, so this attempt was counted.
                continue
            expression = expression_from_json(payload["expression"])
            ledger.note_reask(expression)
            if interrupted is not None:
                interrupted.reasks[int(payload["of_task"])] = payload
        elif record.kind == "round_commit":
            # Idempotent like answers: a commit whose round the
            # checkpoint's history already covers must not append a
            # duplicate entry (its snapshots still supersede below).
            round_index = int(payload.get("round", len(state.history) + 1))
            if round_index > len(state.history):
                state.history.append(_round_from_dict(payload["record"]))
            state.budget_left = int(payload["budget_left"])
            state.pending = [task_from_payload(t) for t in payload.get("pending", [])]
            state.fault_totals = {
                k: int(v) for k, v in payload.get("fault_totals", {}).items()
            }
            state.degraded = bool(payload.get("degraded", False))
            state.rng_state = payload.get("rng_state")
            state.platform_state = payload.get("platform_state")
            state.task_ids_state = payload.get("task_ids")
            interrupted = None
    state.interrupted = interrupted
    return state


def _normalized_pending(checkpoint):
    """Yield pending entries as 4-tuples across checkpoint versions.

    v1/v2 stored ``(expression, for_object)`` pairs (task identity was
    lost on resume); v3 adds ``task_id`` and ``reask_of`` so a resumed
    run reposts bit-identical tasks.
    """
    for entry in checkpoint.pending:
        if len(entry) == 2:
            expression, obj = entry
            yield expression, obj, None, None
        else:
            yield entry
