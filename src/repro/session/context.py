"""Per-session execution context: RNG streams, task ids, cancellation.

Re-entrancy contract: *nothing on the request path may read or write
module-level mutable state*.  Everything a run mutates -- random
generators, the task-id counter, the cancel flag -- lives on a
:class:`SessionContext`, so N concurrent sessions in one process are
fully isolated and each produces exactly the stream a solo run with the
same seed would.

Two access styles are supported:

* **explicit threading** (preferred): the framework holds its context
  and passes ``rng=``/``task_id=`` down;
* **ambient lookup** for deep library code whose signatures predate the
  session layer (:func:`session_rng`): while a context is
  :meth:`~SessionContext.activate`-d, the module-level fallback RNGs in
  :mod:`repro.crowd.aggregation` and :mod:`repro.probability.approxcount`
  resolve to per-session streams via a :class:`contextvars.ContextVar`
  instead of the shared (deprecated) process-global generator.
  ``ContextVar`` values are per-thread/per-context, so two sessions
  running in two threads never see each other's streams.
"""

from __future__ import annotations

import contextlib
import zlib
from contextvars import ContextVar
from typing import Dict, Iterator, Optional

import numpy as np

from .cancellation import CancellationToken

__all__ = [
    "SessionContext",
    "TaskIdAllocator",
    "current_session",
    "session_rng",
]

#: The active session of the current thread/context (None = library mode).
_active_session: "ContextVar[Optional[SessionContext]]" = ContextVar(
    "repro_active_session", default=None
)


class TaskIdAllocator:
    """Monotonic per-session task ids, resumable across processes.

    The global ``itertools.count`` the tasks module falls back to resets
    every process and interleaves across sessions; this allocator is
    owned by one session, snapshots into checkpoints/journal records,
    and can :meth:`reserve` ids replayed from a journal so a recovered
    process never re-allocates an id the crashed process already used.
    """

    def __init__(self, next_id: int = 1) -> None:
        if next_id < 1:
            raise ValueError("task ids start at 1")
        self._next = int(next_id)

    def allocate(self) -> int:
        task_id = self._next
        self._next += 1
        return task_id

    def reserve(self, task_id: int) -> None:
        """Mark an id as used (journal replay); never moves backwards."""
        if task_id >= self._next:
            self._next = task_id + 1

    @property
    def next_id(self) -> int:
        return self._next

    def state_dict(self) -> dict:
        return {"next_id": self._next}

    def load_state_dict(self, state: dict) -> None:
        self._next = int(state.get("next_id", 1))


class SessionContext:
    """Everything one session is allowed to mutate.

    ``rng(name)`` returns a named per-session stream, derived from the
    session seed and the stream name, created lazily and cached: the
    same name always returns the same generator object, so sequential
    draws within a session advance one stream deterministically.
    """

    def __init__(
        self,
        seed: int = 0,
        session_id: str = "default",
        cancellation: Optional[CancellationToken] = None,
    ) -> None:
        self.seed = int(seed)
        self.session_id = str(session_id)
        self.cancellation = cancellation or CancellationToken()
        self.task_ids = TaskIdAllocator()
        self._rngs: Dict[str, np.random.Generator] = {}

    # ------------------------------------------------------------------
    def rng(self, name: str) -> np.random.Generator:
        """The session's named RNG stream (created on first use).

        Streams are keyed by ``(seed, crc32(name))`` through a
        :class:`numpy.random.SeedSequence`, so distinct names give
        statistically independent streams and the same ``(seed, name)``
        pair always reproduces the same sequence -- in any process.
        """
        generator = self._rngs.get(name)
        if generator is None:
            entropy = [self.seed & 0xFFFFFFFF, zlib.crc32(name.encode("utf-8"))]
            generator = np.random.default_rng(np.random.SeedSequence(entropy))
            self._rngs[name] = generator
        return generator

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def activate(self) -> Iterator["SessionContext"]:
        """Make this the ambient session for the enclosed block.

        Nested activations restore the previous session on exit, and the
        binding is context-local: activating in one thread leaves other
        threads (other sessions) untouched.
        """
        token = _active_session.set(self)
        try:
            yield self
        finally:
            _active_session.reset(token)

    # ------------------------------------------------------------------
    # checkpoint / journal support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """RNG-stream and allocator snapshot (JSON-serializable)."""
        return {
            "seed": self.seed,
            "session_id": self.session_id,
            "task_ids": self.task_ids.state_dict(),
            "rng_streams": {
                name: generator.bit_generator.state
                for name, generator in self._rngs.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        self.task_ids.load_state_dict(state.get("task_ids", {}))
        for name, rng_state in state.get("rng_streams", {}).items():
            self.rng(name).bit_generator.state = rng_state


def current_session() -> Optional[SessionContext]:
    """The ambient session of the calling thread/context, if any."""
    return _active_session.get()


def session_rng(name: str) -> Optional[np.random.Generator]:
    """The ambient session's named RNG stream, or ``None`` outside one.

    This is the hook the deprecated module-level fallback generators use:
    inside an activated session, un-threaded library calls still draw
    from session-isolated streams.
    """
    session = _active_session.get()
    if session is None:
        return None
    return session.rng(name)
