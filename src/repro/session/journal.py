"""Durable write-ahead answer journal (append-only JSONL + checksums).

The round-level checkpoint (PR 1) is durable but coarse: a crash between
two checkpoints loses every answer of the in-flight round -- answers the
budget was already charged for.  The journal closes that window.  Every
irrevocable event of the crowdsourcing loop -- an accepted answer, a
quarantine decision, a re-ask issue, a round boundary -- is appended and
``fsync``-ed *before* the corresponding engine state mutates, so after a
crash at any instant the journal contains exactly the decisions that
were (or were about to be) applied, and recovery replays them to a
bit-identical state.

Wire format: one JSON object per line::

    {"seq": 7, "kind": "answer", "payload": {...}, "crc": "9f3a0c11"}

* ``seq`` increases by exactly 1 from 1; a gap means a lost record and
  the file is rejected;
* ``crc`` is the CRC-32 of the canonical JSON of the record without the
  ``crc`` field, so bit rot anywhere in a line is detected;
* a *torn tail* -- the final line a crash interrupted mid-write -- is
  expected and silently dropped by :func:`read_journal`; its record was
  by construction never applied (journal-before-mutate).  Corruption
  anywhere before the tail raises
  :class:`~repro.errors.JournalCorruptError`.

Record kinds (see :mod:`repro.session.recovery` for replay semantics):

``open``
    file header: fingerprint of the owning query + format version;
``round_begin``
    the round's issued tasks plus the RNG/platform/allocator snapshots
    needed to re-execute the round deterministically after a crash;
``answer``
    one aggregated crowd answer with its integrity verdict and budget
    charge -- appended before the c-table/ledger mutate;
``reask``
    a bounded re-ask issued for a quarantined answer;
``round_commit``
    the completed round: its :class:`RoundRecord` fields, remaining
    budget, carried-over pending tasks and post-round state snapshots
    (a journal alone can therefore recover a run with no checkpoint).
"""

from __future__ import annotations

import json
import os
import signal
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import JournalCorruptError, JournalError

__all__ = [
    "JOURNAL_VERSION",
    "RECORD_KINDS",
    "JournalRecord",
    "AnswerJournal",
    "read_journal",
    "journal_problems",
]

#: format version written into the ``open`` record
JOURNAL_VERSION = 1

#: every record kind the replayer understands
RECORD_KINDS = ("open", "round_begin", "answer", "reask", "round_commit")


def _canonical(seq: int, kind: str, payload: dict) -> str:
    return json.dumps(
        {"seq": seq, "kind": kind, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )


def _crc(seq: int, kind: str, payload: dict) -> str:
    return "%08x" % (zlib.crc32(_canonical(seq, kind, payload).encode("utf-8")))


@dataclass(frozen=True)
class JournalRecord:
    """One verified journal record."""

    seq: int
    kind: str
    payload: Dict


class AnswerJournal:
    """Append-only, fsync-per-record JSONL journal.

    Opening an existing file resumes its sequence: the journal reads and
    verifies what is already there (dropping a torn tail) and appends
    after the last intact record.  ``fsync=False`` trades durability of
    the last few records for speed (tests, benchmarks); the write-ahead
    ordering guarantee is unaffected.

    ``crash_after`` is a test hook for the crash-injection matrix: after
    the N-th successful append *of this process* the journal delivers
    ``SIGKILL`` to its own process, simulating a crash exactly on a
    journal-append boundary.  Production code never sets it.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fsync: bool = True,
        crash_after: Optional[int] = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.crash_after = crash_after
        self.appends = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing: List[JournalRecord] = []
        if self.path.exists():
            existing = read_journal(self.path)
            # Drop any torn tail bytes so the next append starts on a
            # clean line boundary.
            self._rewrite_if_torn(existing)
        self._last_seq = existing[-1].seq if existing else 0
        self._file = open(self.path, "a", encoding="utf-8")

    def _rewrite_if_torn(self, records: List[JournalRecord]) -> None:
        """Truncate a torn final line left by a crash mid-write."""
        intact = sum(
            len(
                json.dumps(
                    {
                        "seq": r.seq,
                        "kind": r.kind,
                        "payload": r.payload,
                        "crc": _crc(r.seq, r.kind, r.payload),
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                )
                + "\n"
            )
            for r in records
        )
        size = self.path.stat().st_size
        if size > intact:
            with open(self.path, "r+", encoding="utf-8") as handle:
                handle.truncate(intact)

    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the last durable record (0 = empty)."""
        return self._last_seq

    def append(self, kind: str, payload: dict) -> int:
        """Durably append one record; returns its sequence number.

        The record is written, flushed and (by default) fsync-ed before
        this method returns -- callers mutate state only afterwards,
        which is the write-ahead contract recovery relies on.
        """
        if kind not in RECORD_KINDS:
            raise JournalError("unknown journal record kind %r" % kind)
        if self._file is None:
            raise JournalError("journal at %s is closed" % self.path)
        seq = self._last_seq + 1
        record = {
            "seq": seq,
            "kind": kind,
            "payload": payload,
            "crc": _crc(seq, kind, payload),
        }
        self._file.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self._last_seq = seq
        self.appends += 1
        if self.crash_after is not None and self.appends >= self.crash_after:
            # Crash-injection matrix: die *after* the append is durable,
            # i.e. exactly on the boundary between two appends.
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover
        return seq

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "AnswerJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> Dict[str, int]:
        return {"journal_appends": self.appends, "journal_last_seq": self._last_seq}


def read_journal(path: Union[str, Path]) -> List[JournalRecord]:
    """Read and verify a journal; a torn final line is dropped.

    Raises :class:`JournalCorruptError` on a checksum or sequence failure
    anywhere before the final line -- under the append-with-fsync
    discipline only the very last record can legitimately be damaged.
    """
    path = Path(path)
    try:
        raw_lines = path.read_text(encoding="utf-8").split("\n")
    except OSError as err:
        raise JournalError("unreadable journal at %s: %s" % (path, err)) from err
    # split("\n") leaves a trailing "" for a file ending in a newline; a
    # non-empty final element is a line the crash cut short of "\n".
    lines = [line for line in raw_lines if line != ""]
    records: List[JournalRecord] = []
    for index, line in enumerate(lines):
        is_tail = index == len(lines) - 1
        try:
            data = json.loads(line)
            seq = int(data["seq"])
            kind = str(data["kind"])
            payload = data["payload"]
            crc = str(data["crc"])
        except (ValueError, KeyError, TypeError) as err:
            if is_tail:
                break  # torn tail: record never applied, drop it
            raise JournalCorruptError(
                "journal %s record %d is unparseable: %s" % (path, index + 1, err)
            ) from err
        if crc != _crc(seq, kind, payload):
            if is_tail:
                break
            raise JournalCorruptError(
                "journal %s record %d failed its checksum" % (path, index + 1)
            )
        if seq != len(records) + 1:
            raise JournalCorruptError(
                "journal %s record %d has sequence %d (expected %d)"
                % (path, index + 1, seq, len(records) + 1)
            )
        records.append(JournalRecord(seq=seq, kind=kind, payload=payload))
    return records


def journal_problems(path: Union[str, Path]) -> List[str]:
    """Structural problems with a journal file (empty list = consistent).

    Beyond the per-record checksum/sequence verification of
    :func:`read_journal`, checks the replay invariants the recovery path
    relies on: the first record is an ``open`` header, every ``answer``
    and ``reask`` falls inside a ``round_begin``-ed round, rounds commit
    in order, and no task id is journaled as answered twice.
    """
    try:
        records = read_journal(path)
    except (JournalError, JournalCorruptError) as err:
        return [str(err)]
    problems: List[str] = []
    if not records:
        return ["journal is empty"]
    if records[0].kind != "open":
        problems.append("first record is %r, expected 'open'" % records[0].kind)
    open_round: Optional[int] = None
    committed = 0
    answered_ids = set()
    for record in records:
        if record.kind == "round_begin":
            if open_round is not None:
                problems.append(
                    "round %d began before round %d committed"
                    % (record.payload.get("round"), open_round)
                )
            open_round = record.payload.get("round")
            if open_round != committed + 1:
                problems.append(
                    "round_begin %r out of order (expected %d)"
                    % (open_round, committed + 1)
                )
        elif record.kind in ("answer", "reask"):
            if open_round is None:
                problems.append(
                    "%s record %d outside any round" % (record.kind, record.seq)
                )
            if record.kind == "answer":
                task_id = record.payload.get("task_id")
                if task_id is not None:
                    if task_id in answered_ids:
                        problems.append(
                            "task %r answered twice (record %d)"
                            % (task_id, record.seq)
                        )
                    answered_ids.add(task_id)
        elif record.kind == "round_commit":
            if record.payload.get("round") != open_round:
                problems.append(
                    "round_commit %r does not match open round %r"
                    % (record.payload.get("round"), open_round)
                )
            open_round = None
            committed += 1
    return problems
