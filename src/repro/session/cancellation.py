"""Cooperative cancellation tokens with deadline propagation.

The #SAT hardness behind exact model counting (and a real crowd's
open-ended answer latency) means any pipeline phase can stall
unboundedly; a serving system must be able to *stop* a session without
killing the process.  A :class:`CancellationToken` is the contract:

* long-running code calls :meth:`CancellationToken.check` at loop
  boundaries (per round, per c-table object, per probability condition)
  and gets a typed :class:`~repro.errors.SessionCancelledError` once the
  token is cancelled or its deadline passed;
* anything already journaled or checkpointed stays durable, so a
  cancelled run is *paused*, not lost -- resuming replays the journal.

Deadlines compose: :meth:`remaining` exposes the time left so inner
phases (e.g. the guarded ADPLL path) can clamp their own per-call
deadlines to the session's.  Tokens are thread-safe; one supervisor
thread may cancel a session running in another.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ..errors import SessionCancelledError

__all__ = ["CancellationToken"]


class CancellationToken:
    """A thread-safe cancel flag plus an optional wall-clock deadline."""

    def __init__(self, deadline_s: float = 0.0) -> None:
        """``deadline_s`` > 0 arms a deadline that many seconds from now."""
        self._event = threading.Event()
        self._reason = ""
        self._deadline_at: Optional[float] = None
        if deadline_s and deadline_s > 0:
            self.set_deadline(deadline_s)

    # ------------------------------------------------------------------
    def cancel(self, reason: str = "cancelled") -> None:
        """Trip the token; every subsequent :meth:`check` raises."""
        self._reason = reason
        self._event.set()

    def set_deadline(self, seconds_from_now: float) -> None:
        """Arm (or tighten) the deadline; never loosens an earlier one."""
        if seconds_from_now <= 0:
            raise ValueError("deadline must be a positive number of seconds")
        at = time.monotonic() + seconds_from_now
        if self._deadline_at is None or at < self._deadline_at:
            self._deadline_at = at

    # ------------------------------------------------------------------
    @property
    def cancelled(self) -> bool:
        """Has the token been tripped (explicitly or by its deadline)?"""
        if self._event.is_set():
            return True
        if self._deadline_at is not None and time.monotonic() >= self._deadline_at:
            self.cancel("deadline exceeded")
            return True
        return False

    @property
    def reason(self) -> str:
        return self._reason

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when no deadline is set).

        Clamped at 0: an expired deadline reports no time left rather
        than a negative duration.
        """
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - time.monotonic())

    def check(self, phase: str = "") -> None:
        """Raise :class:`SessionCancelledError` if the token tripped.

        ``phase`` names where the cancellation was observed (it rides on
        the exception for supervisor/event reporting).
        """
        if self.cancelled:
            raise SessionCancelledError(phase=phase, reason=self._reason)
