"""Supervised session runtime: state machine, restarts, backpressure.

The layer ROADMAP item 1's HTTP service mounts directly: a
:class:`SessionSupervisor` hosts many named BayesCrowd sessions in one
process, each fully isolated (own :class:`~repro.session.SessionContext`,
own journal + checkpoint files) and each driven through an explicit
lifecycle::

    PENDING -> RUNNING -> DONE
                 |   \\-> DEGRADED          (completed, faults cost info)
                 |-> PAUSED  -> RUNNING     (cooperative cancel; resumable)
                 \\-> FAILED                (restart budget exhausted)

Crashes inside a session (any exception that is not a cooperative
cancellation) are absorbed by a bounded restart-with-backoff policy:
the supervisor rebuilds the engine and resumes from the session's
checkpoint + journal, up to ``max_restarts`` times with exponentially
growing, capped delays.  Because recovery is bit-identical, a restarted
session converges to the same result an undisturbed one would.

Backpressure: crowd answers may land asynchronously via
:meth:`SessionSupervisor.submit_answer` into a per-session
:class:`BoundedAnswerQueue`.  The queue is bounded; overflow either
rejects the submission (:class:`~repro.errors.BackpressureError`) or
sheds the oldest queued answer, per ``overflow_policy``.  A
:class:`QueuedAnswerPlatform` drains the queue at each batch post, so a
session can consume answers that arrived while it was computing.
"""

from __future__ import annotations

import collections
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..crowd.task import ComparisonTask
from ..ctable.expression import Expression, Relation
from ..errors import BackpressureError, SessionCancelledError
from .context import SessionContext

__all__ = [
    "SESSION_STATES",
    "BoundedAnswerQueue",
    "QueuedAnswerPlatform",
    "SupervisedSession",
    "SessionSupervisor",
]

#: Session lifecycle states.
SESSION_STATES = ("PENDING", "RUNNING", "PAUSED", "DEGRADED", "FAILED", "DONE")

#: Legal state-machine transitions (from -> allowed targets).
_TRANSITIONS = {
    "PENDING": ("RUNNING",),
    "RUNNING": ("PAUSED", "DEGRADED", "FAILED", "DONE", "RUNNING"),
    "PAUSED": ("RUNNING",),
    "DEGRADED": (),
    "FAILED": (),
    "DONE": (),
}

#: Queue overflow policies.
OVERFLOW_POLICIES = ("reject", "shed-oldest")


class BoundedAnswerQueue:
    """Thread-safe bounded queue of (expression, relation) submissions."""

    def __init__(self, maxsize: int = 256, policy: str = "reject") -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        if policy not in OVERFLOW_POLICIES:
            raise ValueError(
                "unknown overflow policy %r; expected one of %r"
                % (policy, OVERFLOW_POLICIES)
            )
        self.maxsize = maxsize
        self.policy = policy
        self._items: "collections.deque[Tuple[Expression, Relation]]" = (
            collections.deque()
        )
        self._lock = threading.Lock()
        #: submissions dropped by the shed-oldest policy
        self.shed = 0
        #: submissions refused by the reject policy
        self.rejected = 0
        self.accepted = 0

    def put(self, expression: Expression, relation: Relation) -> None:
        """Enqueue one answer, applying the overflow policy when full."""
        with self._lock:
            if len(self._items) >= self.maxsize:
                if self.policy == "reject":
                    self.rejected += 1
                    raise BackpressureError(
                        "pending-answer queue full (%d); submission rejected"
                        % self.maxsize
                    )
                self._items.popleft()
                self.shed += 1
            self._items.append((expression, relation))
            self.accepted += 1

    def take_for(self, expression: Expression) -> Optional[Relation]:
        """Consume the oldest queued answer for ``expression``, if any."""
        with self._lock:
            for index, (queued, relation) in enumerate(self._items):
                if queued == expression:
                    del self._items[index]
                    return relation
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def stats(self) -> Dict[str, int]:
        return {
            "queue_depth": len(self),
            "queue_accepted": self.accepted,
            "queue_shed": self.shed,
            "queue_rejected": self.rejected,
        }


class QueuedAnswerPlatform:
    """Platform adapter that answers tasks from a bounded answer queue.

    Tasks whose expression has a queued submission are answered from the
    queue; the rest are forwarded to the ``fallback`` platform when one
    is given, or simply left unanswered (a *partial* batch -- the
    framework's requeue-or-refund policy already handles that).
    """

    def __init__(
        self,
        queue: BoundedAnswerQueue,
        fallback=None,
    ) -> None:
        self.queue = queue
        self.fallback = fallback
        self.answered_from_queue = 0

    def post_batch(
        self, tasks: Sequence[ComparisonTask]
    ) -> Dict[ComparisonTask, Relation]:
        answers: Dict[ComparisonTask, Relation] = {}
        remaining: List[ComparisonTask] = []
        for task in tasks:
            relation = self.queue.take_for(task.expression)
            if relation is not None:
                answers[task] = relation
                self.answered_from_queue += 1
            else:
                remaining.append(task)
        if remaining and self.fallback is not None:
            answers.update(self.fallback.post_batch(remaining))
        return answers

    def __getattr__(self, name):
        if self.fallback is None:
            raise AttributeError(name)
        return getattr(self.fallback, name)


class SupervisedSession:
    """One hosted session: engine factory inputs + lifecycle bookkeeping."""

    def __init__(
        self,
        session_id: str,
        dataset,
        config,
        directory: Path,
        platform=None,
        max_pending_answers: int = 256,
        overflow_policy: str = "reject",
    ) -> None:
        self.session_id = session_id
        self.dataset = dataset
        self.config = config
        self.platform = platform
        self.journal_path = directory / ("%s.journal.jsonl" % session_id)
        self.checkpoint_path = directory / ("%s.checkpoint.json" % session_id)
        self.context = SessionContext(seed=config.seed, session_id=session_id)
        self.answer_queue = BoundedAnswerQueue(
            maxsize=max_pending_answers, policy=overflow_policy
        )
        self.state = "PENDING"
        self.result = None
        self.error: Optional[BaseException] = None
        self.restarts = 0
        #: (from_state, to_state, reason) triples, in order
        self.transitions: List[Tuple[str, str, str]] = []


class SessionSupervisor:
    """Hosts, supervises and recovers many sessions in one process."""

    def __init__(
        self,
        directory: Union[str, Path],
        max_restarts: int = 2,
        restart_backoff_base: float = 0.05,
        restart_backoff_cap: float = 2.0,
        max_pending_answers: int = 256,
        overflow_policy: str = "reject",
    ) -> None:
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if restart_backoff_base < 0:
            raise ValueError("restart_backoff_base must be non-negative")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_restarts = max_restarts
        self.restart_backoff_base = restart_backoff_base
        self.restart_backoff_cap = restart_backoff_cap
        self.max_pending_answers = max_pending_answers
        self.overflow_policy = overflow_policy
        self._sessions: Dict[str, SupervisedSession] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def create(self, session_id: str, dataset, config, platform=None) -> SupervisedSession:
        """Register a session (its files live under the supervisor dir)."""
        with self._lock:
            if session_id in self._sessions:
                raise ValueError("session %r already exists" % session_id)
            session = SupervisedSession(
                session_id,
                dataset,
                config,
                self.directory,
                platform=platform,
                max_pending_answers=self.max_pending_answers,
                overflow_policy=self.overflow_policy,
            )
            self._sessions[session_id] = session
            return session

    def get(self, session_id: str) -> SupervisedSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError("unknown session %r" % session_id) from None

    def sessions(self) -> List[SupervisedSession]:
        with self._lock:
            return list(self._sessions.values())

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def _transition(self, session: SupervisedSession, to: str, reason: str) -> None:
        with self._lock:
            allowed = _TRANSITIONS.get(session.state, ())
            if to not in allowed:
                raise RuntimeError(
                    "illegal session transition %s -> %s (%s)"
                    % (session.state, to, reason)
                )
            session.transitions.append((session.state, to, reason))
            session.state = to

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, session_id: str, resume: bool = False):
        """Run one session to completion under supervision.

        Returns the :class:`QueryResult`, or ``None`` when the session
        was cooperatively cancelled (state ``PAUSED`` -- call ``run``
        again with ``resume=True`` to continue it).  Non-cancellation
        exceptions trigger bounded restart-with-backoff; once the budget
        is exhausted the session is ``FAILED`` and the error re-raised.
        """
        from ..core.framework import BayesCrowd

        session = self.get(session_id)
        self._transition(session, "RUNNING", "started")
        attempt_resume = resume
        while True:
            # A fresh context per attempt: allocator and RNG streams are
            # restored from the journal/checkpoint during recovery, and a
            # possibly-tripped cancellation token must not leak into the
            # retry.  Deadlines re-arm from the config each attempt.
            session.context = SessionContext(
                seed=session.config.seed, session_id=session.session_id
            )
            deadline = getattr(session.config, "session_deadline_s", 0.0)
            if deadline:
                session.context.cancellation.set_deadline(deadline)
            try:
                engine = BayesCrowd(
                    session.dataset,
                    session.config,
                    platform=session.platform,
                    session=session.context,
                )
                result = engine.run(
                    checkpoint_path=session.checkpoint_path,
                    resume=attempt_resume,
                    journal_path=session.journal_path,
                )
            except SessionCancelledError as err:
                session.error = err
                self._transition(session, "PAUSED", str(err))
                return None
            except Exception as err:  # noqa: BLE001 - supervision boundary
                session.error = err
                session.restarts += 1
                if session.restarts > self.max_restarts:
                    self._transition(session, "FAILED", str(err))
                    raise
                delay = min(
                    self.restart_backoff_cap,
                    self.restart_backoff_base * (2 ** (session.restarts - 1)),
                )
                self._transition(
                    session,
                    "RUNNING",
                    "restart %d/%d after %s"
                    % (session.restarts, self.max_restarts, err),
                )
                if delay > 0:
                    time.sleep(delay)
                attempt_resume = True  # recover from journal + checkpoint
                continue
            session.result = result
            session.error = None
            self._transition(
                session,
                "DEGRADED" if result.degraded else "DONE",
                "completed",
            )
            return result

    def run_all(self, parallel: bool = True) -> Dict[str, object]:
        """Run every PENDING session; with ``parallel`` each gets a thread.

        Running sessions concurrently is safe because the engine is
        re-entrant: each session's RNG streams, caches and task ids are
        context-local.  Returns ``{session_id: result-or-None}``.
        """
        pending = [s for s in self.sessions() if s.state == "PENDING"]
        results: Dict[str, object] = {}
        if not parallel:
            for session in pending:
                results[session.session_id] = self.run(session.session_id)
            return results
        errors: Dict[str, BaseException] = {}

        def _target(sid: str) -> None:
            try:
                results[sid] = self.run(sid)
            except BaseException as err:  # noqa: BLE001 - collected below
                errors[sid] = err

        threads = [
            threading.Thread(target=_target, args=(s.session_id,), daemon=True)
            for s in pending
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for sid, err in errors.items():
            results.setdefault(sid, None)
        return results

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def pause(self, session_id: str, reason: str = "paused by supervisor") -> None:
        """Cooperatively cancel a running session (it becomes PAUSED)."""
        self.get(session_id).context.cancellation.cancel(reason)

    def submit_answer(
        self, session_id: str, expression: Expression, relation: Relation
    ) -> None:
        """Queue an asynchronously arriving crowd answer (backpressured)."""
        self.get(session_id).answer_queue.put(expression, relation)

    def state(self, session_id: str) -> str:
        return self.get(session_id).state

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-session supervision counters (for the obs layer)."""
        out: Dict[str, Dict[str, object]] = {}
        for session in self.sessions():
            entry: Dict[str, object] = {
                "state": session.state,
                "restarts": session.restarts,
            }
            entry.update(session.answer_queue.stats())
            out[session.session_id] = entry
        return out
