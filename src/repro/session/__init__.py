"""Crash-safe session runtime.

Layers, bottom up:

* :mod:`~repro.session.cancellation` -- cooperative cancel tokens with
  deadline propagation;
* :mod:`~repro.session.context` -- per-session RNG streams, task-id
  allocation and the ambient-session ContextVar (re-entrancy);
* :mod:`~repro.session.journal` -- durable write-ahead answer journal
  (append-only JSONL, fsync + per-record checksums);
* :mod:`~repro.session.recovery` -- checkpoint + journal-suffix replay
  to bit-identical run state;
* :mod:`~repro.session.supervisor` -- per-session state machine,
  bounded restart-with-backoff, backpressured answer intake.
"""

from .cancellation import CancellationToken
from .context import SessionContext, TaskIdAllocator, current_session, session_rng
from .journal import (
    JOURNAL_VERSION,
    RECORD_KINDS,
    AnswerJournal,
    JournalRecord,
    journal_problems,
    read_journal,
)
from .recovery import (
    InterruptedRound,
    RecoveredState,
    recover_run_state,
    task_from_payload,
    task_to_payload,
)
from .supervisor import (
    SESSION_STATES,
    BoundedAnswerQueue,
    QueuedAnswerPlatform,
    SessionSupervisor,
    SupervisedSession,
)

__all__ = [
    "CancellationToken",
    "SessionContext",
    "TaskIdAllocator",
    "current_session",
    "session_rng",
    "JOURNAL_VERSION",
    "RECORD_KINDS",
    "AnswerJournal",
    "JournalRecord",
    "journal_problems",
    "read_journal",
    "InterruptedRound",
    "RecoveredState",
    "recover_run_state",
    "task_from_payload",
    "task_to_payload",
    "SESSION_STATES",
    "BoundedAnswerQueue",
    "QueuedAnswerPlatform",
    "SessionSupervisor",
    "SupervisedSession",
]
