"""Summarize pytest-benchmark JSON output, including ``extra_info``.

pytest-benchmark's console table shows timings but hides the
``benchmark.extra_info`` payload where our benchmarks record the
non-timing series (F1, tasks, rounds).  This tool folds both into one
compact table per benchmark group:

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python -m repro.benchreport bench.json
    python -m repro.benchreport bench.json --markdown > BENCH.md

The standalone perf runners (``python benchmarks/bench_fig02_ctable.py``,
``python benchmarks/bench_fig03_probability.py``) emit the same JSON
shape with their perf counters (pairs/sec, probabilities/sec, pool
chunks) in ``extra_info``, so their ``BENCH_*.json`` files render here
too.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional


def load_benchmarks(path) -> List[Dict]:
    """The ``benchmarks`` array of a pytest-benchmark JSON file."""
    data = json.loads(Path(path).read_text())
    if "benchmarks" not in data:
        raise ValueError("%s is not a pytest-benchmark JSON file" % path)
    return data["benchmarks"]


def _group_key(bench: Dict) -> str:
    """Group by source file (one paper figure per benchmark module)."""
    fullname = bench.get("fullname", bench.get("name", ""))
    return fullname.split("::")[0]


def _format(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.01 or abs(value) >= 100_000:
            return "%.3g" % value
        return "%.3f" % value
    return str(value)


def summarize(benchmarks: List[Dict]) -> "OrderedDict[str, List[Dict]]":
    """Rows per group: name, seconds, plus flattened extra_info."""
    groups: "OrderedDict[str, List[Dict]]" = OrderedDict()
    for bench in benchmarks:
        row = {"benchmark": bench["name"], "seconds": bench["stats"]["mean"]}
        for key, value in sorted(bench.get("extra_info", {}).items()):
            row[key] = value
        groups.setdefault(_group_key(bench), []).append(row)
    for rows in groups.values():
        rows.sort(key=lambda r: r["benchmark"])
    return groups


def render_text(groups) -> str:
    lines: List[str] = []
    for group, rows in groups.items():
        columns = []
        for row in rows:
            for column in row:
                if column not in columns:
                    columns.append(column)
        widths = {
            c: max(len(c), *(len(_format(r.get(c, ""))) for r in rows))
            for c in columns
        }
        lines.append(group)
        header = "  ".join(c.ljust(widths[c]) for c in columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            lines.append(
                "  ".join(_format(row.get(c, "")).ljust(widths[c]) for c in columns)
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def render_markdown(groups) -> str:
    lines: List[str] = []
    for group, rows in groups.items():
        columns = []
        for row in rows:
            for column in row:
                if column not in columns:
                    columns.append(column)
        lines.append("### %s" % group)
        lines.append("")
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "|".join("---" for __ in columns) + "|")
        for row in rows:
            lines.append(
                "| " + " | ".join(_format(row.get(c, "")) for c in columns) + " |"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.benchreport",
        description="Summarize pytest-benchmark JSON (timings + extra_info).",
    )
    parser.add_argument("json_file", type=Path)
    parser.add_argument(
        "--markdown", action="store_true", help="emit markdown instead of text"
    )
    args = parser.parse_args(argv)
    groups = summarize(load_benchmarks(args.json_file))
    print(render_markdown(groups) if args.markdown else render_text(groups))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
