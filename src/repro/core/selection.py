"""Step one of each iteration: entropy-ranked object selection.

"We employ Shannon entropy as a metric to quantify the uncertainty of
objects being the query result objects ... we choose the top-k objects
with the highest entropy values" (Section 6.2).

Ranking is batch-backed: all undecided conditions go through
:meth:`ProbabilityEngine.probability_many` so leaf probabilities are
bulk-computed (and, with ``n_jobs > 1``, conditions fan out across the
process pool).  :class:`IncrementalRanker` additionally keeps the ranking
warm across rounds -- after a batch of crowd answers only the objects
whose conditions mention an answered variable are recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from ..ctable.ctable import CTable
from ..probability.engine import ProbabilityEngine
from .utility import entropy


@dataclass(frozen=True)
class RankedObject:
    """One undecided object with its current probability and entropy."""

    obj: int
    probability: float
    entropy: float


def rank_objects(
    ctable: CTable,
    engine: ProbabilityEngine,
    n_jobs: Optional[int] = None,
) -> List[RankedObject]:
    """All undecided objects, most uncertain first.

    Ties break on the smaller object id so runs are reproducible.
    """
    undecided = ctable.undecided()
    probabilities = engine.probability_many(
        [ctable.condition(obj) for obj in undecided], n_jobs=n_jobs
    )
    ranked = [
        RankedObject(obj=obj, probability=p, entropy=entropy(p))
        for obj, p in zip(undecided, probabilities)
    ]
    ranked.sort(key=lambda r: (-r.entropy, r.obj))
    return ranked


def select_top_k(ctable: CTable, engine: ProbabilityEngine, k: int) -> List[RankedObject]:
    """The ``min(k, #undecided)`` objects with the highest entropy."""
    if k <= 0:
        return []
    return rank_objects(ctable, engine)[:k]


class IncrementalRanker:
    """Entropy ranking that recomputes only answer-affected objects.

    After a round of crowd answers, :meth:`CTable.apply_answer` reports
    which objects' conditions were touched; everything else still has the
    exact probability (and entropy) from the previous round.  The ranker
    keeps those, drops objects that became decided, and batches only the
    dirty conditions through :meth:`ProbabilityEngine.probability_many`.
    """

    def __init__(
        self,
        ctable: CTable,
        engine: ProbabilityEngine,
        n_jobs: Optional[int] = None,
    ) -> None:
        self._ctable = ctable
        self._engine = engine
        self._n_jobs = n_jobs
        self._entries: Dict[int, RankedObject] = {}
        self._primed = False
        #: objects re-scored since construction (perf counter)
        self.n_rescored = 0
        #: full ranking passes served (perf counter)
        self.n_rankings = 0

    def mark_dirty(self, objects: Iterable[int]) -> None:
        """Forget the cached scores of the given objects."""
        for obj in objects:
            self._entries.pop(obj, None)

    def rank(self) -> List[RankedObject]:
        """Current ranking, recomputing only what :meth:`mark_dirty` hit."""
        undecided = self._ctable.undecided()
        undecided_set: Set[int] = set(undecided)
        # Objects decided since the last round fall out of the ranking.
        for obj in list(self._entries):
            if obj not in undecided_set:
                del self._entries[obj]
        stale = [obj for obj in undecided if obj not in self._entries]
        if stale:
            probabilities = self._engine.probability_many(
                [self._ctable.condition(obj) for obj in stale],
                n_jobs=self._n_jobs,
            )
            for obj, p in zip(stale, probabilities):
                self._entries[obj] = RankedObject(
                    obj=obj, probability=p, entropy=entropy(p)
                )
            if self._primed:
                self.n_rescored += len(stale)
        self._primed = True
        self.n_rankings += 1
        ranked = [self._entries[obj] for obj in undecided]
        ranked.sort(key=lambda r: (-r.entropy, r.obj))
        return ranked
