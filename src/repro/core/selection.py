"""Step one of each iteration: entropy-ranked object selection.

"We employ Shannon entropy as a metric to quantify the uncertainty of
objects being the query result objects ... we choose the top-k objects
with the highest entropy values" (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..ctable.ctable import CTable
from ..probability.engine import ProbabilityEngine
from .utility import entropy


@dataclass(frozen=True)
class RankedObject:
    """One undecided object with its current probability and entropy."""

    obj: int
    probability: float
    entropy: float


def rank_objects(ctable: CTable, engine: ProbabilityEngine) -> List[RankedObject]:
    """All undecided objects, most uncertain first.

    Ties break on the smaller object id so runs are reproducible.
    """
    ranked = []
    for obj in ctable.undecided():
        p = engine.probability(ctable.condition(obj))
        ranked.append(RankedObject(obj=obj, probability=p, entropy=entropy(p)))
    ranked.sort(key=lambda r: (-r.entropy, r.obj))
    return ranked


def select_top_k(ctable: CTable, engine: ProbabilityEngine, k: int) -> List[RankedObject]:
    """The ``min(k, #undecided)`` objects with the highest entropy."""
    if k <= 0:
        return []
    return rank_objects(ctable, engine)[:k]
