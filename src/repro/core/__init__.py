"""BayesCrowd core: the paper's primary contribution."""

from .config import DISTRIBUTION_SOURCES, REQUEUE_POLICIES, BayesCrowdConfig
from .framework import (
    BayesCrowd,
    build_default_platform,
    learn_distributions,
    run_bayescrowd,
)
from .result import QueryResult, RoundRecord
from .selection import IncrementalRanker, RankedObject, rank_objects, select_top_k
from .strategies import (
    FrequencyStrategy,
    HybridStrategy,
    SelectionContext,
    TaskSelectionStrategy,
    UtilityStrategy,
    expression_frequencies,
    make_strategy,
)
from .utility import (
    UTILITY_MODES,
    entropy,
    gain_from_probabilities,
    marginal_utility,
    object_entropy,
)
from .utility_engine import DEFAULT_UTILITY_CACHE_SIZE, UtilityEngine

__all__ = [
    "DISTRIBUTION_SOURCES",
    "REQUEUE_POLICIES",
    "BayesCrowdConfig",
    "BayesCrowd",
    "build_default_platform",
    "learn_distributions",
    "run_bayescrowd",
    "QueryResult",
    "RoundRecord",
    "IncrementalRanker",
    "RankedObject",
    "rank_objects",
    "select_top_k",
    "FrequencyStrategy",
    "HybridStrategy",
    "UtilityStrategy",
    "TaskSelectionStrategy",
    "SelectionContext",
    "expression_frequencies",
    "make_strategy",
    "UTILITY_MODES",
    "DEFAULT_UTILITY_CACHE_SIZE",
    "UtilityEngine",
    "entropy",
    "gain_from_probabilities",
    "marginal_utility",
    "object_entropy",
]
