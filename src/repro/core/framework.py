"""The BayesCrowd framework (Algorithm 1 + Algorithm 4).

Orchestrates the full pipeline:

1. *Preprocessing* -- train a Bayesian network on the dataset's complete
   rows and derive per-variable posterior distributions (Section 3).
2. *Modeling phase* -- build the c-table with Get-CTable (Section 4).
3. *Crowdsourcing phase* -- iterative batched task selection under budget
   ``B`` and latency ``L`` (Section 6): rank undecided objects by entropy,
   pick one conflict-free expression per chosen object with the configured
   strategy (FBS / UBS / HHS), post the batch, fold answers back into the
   c-table, repeat until the budget is spent or no expression remains.
4. Answer inference: objects with ``phi = true`` or ``Pr(phi)`` above the
   answer threshold.

Reported execution time excludes the (simulated) workers' answering time,
matching the paper's measurement ("execution time of algorithms, which
excludes the time of workers answering tasks").
"""

from __future__ import annotations

import logging
import time
from typing import Dict, List, Optional

import numpy as np

from ..bayesnet.network import BayesianNetwork
from ..bayesnet.posteriors import (
    MissingValuePosteriors,
    empirical_distributions,
    uniform_distributions,
)
from ..crowd.platform import SimulatedCrowdPlatform
from ..crowd.task import ComparisonTask
from ..ctable.construction import build_ctable
from ..ctable.ctable import CTable
from ..datasets.dataset import IncompleteDataset, Variable
from ..probability.distributions import DistributionStore
from ..probability.engine import ProbabilityEngine
from .config import BayesCrowdConfig
from .result import QueryResult, RoundRecord
from .selection import rank_objects
from .strategies import SelectionContext, expression_frequencies, make_strategy

#: Complete rows beyond this are subsampled for structure learning only
#: (parameters still use every complete row).
_STRUCTURE_SAMPLE_CAP = 4000

logger = logging.getLogger("repro.bayescrowd")


def learn_distributions(
    dataset: IncompleteDataset,
    config: BayesCrowdConfig,
    network: Optional[BayesianNetwork] = None,
) -> Dict[Variable, np.ndarray]:
    """Preprocessing: one pmf per missing cell.

    With ``distribution_source="bayesnet"`` a network is trained on the
    dataset's complete rows (hill climbing + BIC, then smoothed MLE CPTs)
    unless one is supplied, and each variable gets the posterior of its
    attribute given its object's observed attributes.  When too few
    complete rows exist to support structure learning, the empirical
    column marginals are used instead.
    """
    source = config.distribution_source
    if source == "uniform":
        return uniform_distributions(dataset)
    if source == "empirical":
        return empirical_distributions(dataset, smoothing=config.bn_smoothing)

    if network is None:
        if dataset.n_objects < 10:
            return empirical_distributions(dataset, smoothing=config.bn_smoothing)
        rng = np.random.default_rng(config.seed)
        data = dataset.values
        mask = dataset.mask
        if dataset.n_objects > _STRUCTURE_SAMPLE_CAP:
            pick = rng.choice(
                dataset.n_objects, size=_STRUCTURE_SAMPLE_CAP, replace=False
            )
            structure_data, structure_mask = data[pick], mask[pick]
        else:
            structure_data, structure_mask = data, mask
        from ..bayesnet.structure import hill_climb

        # Available-case analysis: both steps skip rows missing in the
        # columns of the family under consideration, so no imputation and
        # no fully-complete rows are required.
        neutral = structure_data.copy()
        neutral[structure_mask] = 0
        dag = hill_climb(
            neutral,
            dataset.domain_sizes,
            max_parents=config.bn_max_parents,
            rng=rng,
            mask=structure_mask,
        ).dag
        network = BayesianNetwork.fit(
            data,
            dataset.domain_sizes,
            smoothing=config.bn_smoothing,
            node_names=list(dataset.attribute_names),
            dag=dag,
            mask=mask,
        )
    return MissingValuePosteriors(network, dataset).all_distributions()


class BayesCrowd:
    """One configured BayesCrowd query over one incomplete dataset."""

    def __init__(
        self,
        dataset: IncompleteDataset,
        config: Optional[BayesCrowdConfig] = None,
        platform: Optional[SimulatedCrowdPlatform] = None,
        distributions: Optional[Dict[Variable, np.ndarray]] = None,
        network: Optional[BayesianNetwork] = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or BayesCrowdConfig()
        self._rng = np.random.default_rng(self.config.seed)
        if platform is None and dataset.has_ground_truth():
            platform_rng = np.random.default_rng(self.config.seed + 1)
            aggregator = None
            pool = None
            if self.config.aggregation == "weighted":
                from ..crowd.quality import (
                    estimate_worker_accuracies,
                    make_weighted_aggregator,
                )
                from ..crowd.worker import WorkerPool

                pool = WorkerPool(self.config.worker_accuracy, rng=platform_rng)
                estimates = estimate_worker_accuracies(
                    pool,
                    n_gold_questions=self.config.calibration_questions,
                    rng=platform_rng,
                )
                aggregator = make_weighted_aggregator(estimates, rng=platform_rng)
            platform = SimulatedCrowdPlatform(
                dataset,
                worker_pool=pool,
                worker_accuracy=self.config.worker_accuracy,
                assignments_per_task=self.config.assignments_per_task,
                rng=platform_rng,
                aggregator=aggregator,
            )
        self.platform = platform
        if distributions is None:
            distributions = learn_distributions(dataset, self.config, network=network)
        self.distributions = distributions
        self._strategy = make_strategy(self.config.strategy, m=self.config.m)
        #: populated by :meth:`run`
        self.ctable: Optional[CTable] = None
        self.engine: Optional[ProbabilityEngine] = None

    # ------------------------------------------------------------------
    def run(self) -> QueryResult:
        """Execute the query and return the answer set with run statistics."""
        config = self.config
        start = time.perf_counter()

        # --- modeling phase -------------------------------------------
        ctable = build_ctable(
            self.dataset,
            alpha=config.alpha,
            dominator_method=config.dominator_method,
            inference_mode=config.inference_mode,
        )
        modeling_seconds = time.perf_counter() - start
        store = DistributionStore(self.distributions, ctable.constraints)
        engine = ProbabilityEngine(
            store,
            method=config.probability_method,
            rng=self._rng,
        )
        self.ctable = ctable
        self.engine = engine
        initial_answers = ctable.result_set(engine.probability, config.answer_threshold)

        # --- crowdsourcing phase --------------------------------------
        crowd_wait = 0.0
        budget = config.budget
        mu = config.tasks_per_round()
        history: List[RoundRecord] = []
        while (
            budget > 0
            and len(history) < config.latency
            and ctable.has_open_expressions()
        ):
            round_start = time.perf_counter()
            k = min(budget, mu)
            ranked = rank_objects(ctable, engine)
            if not ranked:
                break
            if (
                config.entropy_epsilon > 0.0
                and ranked[0].entropy < config.entropy_epsilon
            ):
                # Every undecided object is already near-certain; further
                # tasks would buy negligible information.
                logger.debug(
                    "early stop: max entropy %.4f below epsilon %.4f",
                    ranked[0].entropy,
                    config.entropy_epsilon,
                )
                break
            # Expression frequencies are counted over the chosen top-k
            # objects' conditions (Section 6.2, step two).
            context = SelectionContext(
                engine=engine,
                frequencies=expression_frequencies(
                    [ctable.condition(r.obj) for r in ranked[:k]]
                ),
                utility_mode=config.utility_mode,
            )
            banned = set()
            tasks: List[ComparisonTask] = []
            objects: List[int] = []
            # Walk the full ranking so a conflict-skipped slot is refilled
            # by the next most uncertain object, keeping rounds at size k.
            for r in ranked:
                if len(tasks) >= k:
                    break
                expression = self._strategy.select_expression(
                    ctable.condition(r.obj), context, banned
                )
                if expression is None:
                    continue
                banned.update(expression.variables())
                tasks.append(ComparisonTask(expression, for_object=r.obj))
                objects.append(r.obj)
            if not tasks:
                break
            if self.platform is None:
                raise RuntimeError(
                    "crowdsourcing needs a platform; supply one or use a "
                    "dataset with ground truth for the simulated crowd"
                )

            post_start = time.perf_counter()
            answers = self.platform.post_batch(tasks)
            crowd_wait += time.perf_counter() - post_start

            open_before = len(ctable.undecided())
            for task, relation in answers.items():
                ctable.apply_answer(task.expression, relation)
            open_after = len(ctable.undecided())
            budget -= len(tasks)
            logger.debug(
                "round %d: %d tasks, %d conditions still open, budget %d left",
                len(history) + 1,
                len(tasks),
                open_after,
                budget,
            )
            history.append(
                RoundRecord(
                    round_index=len(history) + 1,
                    tasks_posted=len(tasks),
                    objects=objects,
                    newly_decided=open_before - open_after,
                    open_conditions=open_after,
                    seconds=time.perf_counter() - round_start,
                )
            )

        answers = ctable.result_set(engine.probability, config.answer_threshold)
        probabilities: Dict[int, float] = {}
        for obj in answers:
            condition = ctable.condition(obj)
            probabilities[obj] = (
                1.0 if condition.is_true else engine.probability(condition)
            )
        total_seconds = time.perf_counter() - start - crowd_wait
        return QueryResult(
            answers=answers,
            certain_answers=ctable.certain_answers(),
            tasks_posted=sum(r.tasks_posted for r in history),
            rounds=len(history),
            seconds=total_seconds,
            modeling_seconds=modeling_seconds,
            history=history,
            initial_answers=initial_answers,
            answer_probabilities=probabilities,
            engine_stats={
                "computations": engine.n_computations,
                "cache_hits": engine.n_cache_hits,
            },
        )


def run_bayescrowd(
    dataset: IncompleteDataset,
    config: Optional[BayesCrowdConfig] = None,
    **kwargs,
) -> QueryResult:
    """Convenience one-call API: configure, run, return the result."""
    return BayesCrowd(dataset, config=config, **kwargs).run()
