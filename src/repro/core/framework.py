"""The BayesCrowd framework (Algorithm 1 + Algorithm 4).

Orchestrates the full pipeline:

1. *Preprocessing* -- train a Bayesian network on the dataset's complete
   rows and derive per-variable posterior distributions (Section 3).
2. *Modeling phase* -- build the c-table with Get-CTable (Section 4).
3. *Crowdsourcing phase* -- iterative batched task selection under budget
   ``B`` and latency ``L`` (Section 6): rank undecided objects by entropy,
   pick one conflict-free expression per chosen object with the configured
   strategy (FBS / UBS / HHS), post the batch, fold answers back into the
   c-table, repeat until the budget is spent or no expression remains.
4. Answer inference: objects with ``phi = true`` or ``Pr(phi)`` above the
   answer threshold.

The crowdsourcing loop is fault tolerant: the platform may answer only a
subset of a batch (unanswered tasks are requeued or refunded -- budget is
only ever charged for *answered* tasks, matching the paper's cost model),
transient platform errors are retried with bounded exponential backoff,
expired tasks are refunded and abandoned, and fatal errors end the run
gracefully with ``QueryResult.degraded`` set instead of crashing.  With a
``checkpoint_path`` the run snapshots its answer state after every round
and can resume (``resume=True``) without re-spending crowd budget.

Every run is observable: phase-scoped tracing spans (``preprocess``,
``ctable``, ``probability``, ``round[i]``) feed wall-time histograms in a
:class:`repro.obs.MetricsRegistry` that also unifies the perf counters of
the probability engine, the incremental ranker, c-table construction and
the crowd fault accounting; per-round decisions (tasks issued, answers
applied, objects decided) land in a JSONL event log.  The registry
snapshot rides on :attr:`QueryResult.metrics` and can be exported as JSON
or Prometheus text via ``BayesCrowdConfig.metrics_path`` /
``trace_path`` (CLI ``--metrics-out`` / ``--trace-out``).

Reported execution time excludes the (simulated) workers' answering time,
matching the paper's measurement ("execution time of algorithms, which
excludes the time of workers answering tasks").
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..bayesnet.network import BayesianNetwork
from ..bayesnet.posteriors import (
    MissingValuePosteriors,
    empirical_distributions,
    uniform_distributions,
)
from ..crowd.integrity import AnswerLedger
from ..crowd.platform import SimulatedCrowdPlatform
from ..crowd.quality import WorkerReliability, weighted_vote
from ..crowd.task import ComparisonTask
from ..crowd.unreliable import UnreliableCrowdPlatform
from ..ctable.construction import build_ctable
from ..ctable.ctable import CTable
from ..datasets.dataset import IncompleteDataset, Variable
from ..errors import (
    PlatformFatalError,
    PlatformTransientError,
    TaskExpiredError,
)
from ..ctable.expression import Expression, Relation
from ..obs import PIPELINE_PHASES, EventLog, MetricsRegistry, Tracer
from ..probability.distributions import DistributionStore
from ..probability.engine import ProbabilityEngine
from ..session.context import SessionContext
from ..session.journal import JOURNAL_VERSION, AnswerJournal, read_journal
from ..session.recovery import (
    InterruptedRound,
    recover_run_state,
    task_to_payload,
)
from .config import BayesCrowdConfig
from .result import QueryResult, RoundRecord
from .selection import IncrementalRanker
from .strategies import SelectionContext, expression_frequencies, make_strategy
from .utility_engine import UtilityEngine

#: Complete rows beyond this are subsampled for structure learning only
#: (parameters still use every complete row).
_STRUCTURE_SAMPLE_CAP = 4000

#: A quarantined expression is re-asked at most this many times; past
#: that the crowd has twice failed to produce a consistent answer and the
#: expression is left to probabilistic inference.
_MAX_REASK_ATTEMPTS = 2

logger = logging.getLogger("repro.bayescrowd")


@dataclass
class _RoundPlan:
    """One crowdsourcing round, planned but not yet executed.

    Fresh rounds come out of :meth:`BayesCrowd._plan_round`; recovered
    rounds are rebuilt from the journal's ``round_begin`` record, carry
    the answers/re-asks that were already journaled before the crash
    (``journaled``/``reasks``) and skip re-journaling ``round_begin``.
    """

    round_index: int
    tasks: List[ComparisonTask]
    leftover_pending: List[ComparisonTask]
    objects: List[Optional[int]]
    #: open conditions before the round's answers; None = compute live
    #: (recovered rounds must use the journaled value, because replay has
    #: already folded some of the round's answers into the c-table)
    open_before: Optional[int] = None
    #: task id -> journaled ``answer`` payload (replayed, idempotent)
    journaled: Dict[int, dict] = field(default_factory=dict)
    #: quarantined task id -> journaled ``reask`` payload
    reasks: Dict[int, dict] = field(default_factory=dict)
    recovered: bool = False
    #: perf-counter timestamp planning started (round wall time)
    started_at: float = 0.0


@dataclass
class _CrowdRunState:
    """Mutable state of the crowdsourcing loop, explicit and passable.

    Everything the old monolithic loop kept in local variables; making
    it a value lets the round planner/executor be separate re-entrant
    methods and lets crash recovery seed the loop mid-flight.
    """

    budget: int
    reask_budget_total: int
    history: List[RoundRecord] = field(default_factory=list)
    answer_log: List[Tuple[Expression, Relation]] = field(default_factory=list)
    pending: List[ComparisonTask] = field(default_factory=list)
    fault_totals: Dict[str, int] = field(default_factory=dict)
    degraded: bool = False
    resumed: bool = False
    fatal: bool = False
    reasks_issued: int = 0
    issued_this_run: int = 0
    answered_this_run: int = 0
    crowd_wait: float = 0.0
    selection_seconds: float = 0.0
    utility_evaluations: int = 0
    utility_skipped: int = 0
    probability_requests: int = 0
    probability_computed: int = 0


def learn_distributions(
    dataset: IncompleteDataset,
    config: BayesCrowdConfig,
    network: Optional[BayesianNetwork] = None,
    stats: Optional[Dict[str, int]] = None,
) -> Dict[Variable, np.ndarray]:
    """Preprocessing: one pmf per missing cell.

    With ``distribution_source="bayesnet"`` a network is trained on the
    dataset's complete rows (hill climbing + BIC, then smoothed MLE CPTs)
    unless one is supplied, and each variable gets the posterior of its
    attribute given its object's observed attributes.  When too few
    complete rows exist to support structure learning, the empirical
    column marginals are used instead.

    Posteriors are precomputed in bulk -- one inference pass per unique
    observed-evidence signature instead of one per missing cell; pass a
    ``stats`` dict to receive the grouping counters
    (``signature_groups``, ``cells``, ``inference_calls``).
    """
    source = config.distribution_source
    if source == "uniform":
        return uniform_distributions(dataset)
    if source == "empirical":
        return empirical_distributions(dataset, smoothing=config.bn_smoothing)

    if network is None:
        if dataset.n_objects < 10:
            return empirical_distributions(dataset, smoothing=config.bn_smoothing)
        rng = np.random.default_rng(config.seed)
        data = dataset.values
        mask = dataset.mask
        if dataset.n_objects > _STRUCTURE_SAMPLE_CAP:
            pick = rng.choice(
                dataset.n_objects, size=_STRUCTURE_SAMPLE_CAP, replace=False
            )
            structure_data, structure_mask = data[pick], mask[pick]
        else:
            structure_data, structure_mask = data, mask
        from ..bayesnet.structure import hill_climb

        # Available-case analysis: both steps skip rows missing in the
        # columns of the family under consideration, so no imputation and
        # no fully-complete rows are required.
        neutral = structure_data.copy()
        neutral[structure_mask] = 0
        dag = hill_climb(
            neutral,
            dataset.domain_sizes,
            max_parents=config.bn_max_parents,
            rng=rng,
            mask=structure_mask,
        ).dag
        network = BayesianNetwork.fit(
            data,
            dataset.domain_sizes,
            smoothing=config.bn_smoothing,
            node_names=list(dataset.attribute_names),
            dag=dag,
            mask=mask,
        )
    service = MissingValuePosteriors(network, dataset)
    distributions = service.all_distributions()
    if stats is not None:
        stats.update(service.stats)
    return distributions


def build_default_platform(
    dataset: IncompleteDataset, config: BayesCrowdConfig
) -> Optional[SimulatedCrowdPlatform]:
    """The platform :class:`BayesCrowd` builds when none is supplied.

    A deterministic simulated crowd over the dataset's hidden ground
    truth (majority or calibrated-weighted aggregation per the config),
    wrapped in the configured fault injector when one is set.  Extracted
    so session hosts (the HTTP service) can construct the *same*
    platform and layer a
    :class:`~repro.session.QueuedAnswerPlatform` in front of it without
    duplicating the seeding rules -- the seeds here are part of the
    bit-identical-recovery contract.  Returns ``None`` when the dataset
    has no ground truth to simulate against.
    """
    if not dataset.has_ground_truth():
        return None
    platform_rng = np.random.default_rng(config.seed + 1)
    aggregator = None
    pool = None
    if config.aggregation == "weighted":
        from ..crowd.quality import (
            estimate_worker_accuracies,
            make_weighted_aggregator,
        )
        from ..crowd.worker import WorkerPool

        pool = WorkerPool(config.worker_accuracy, rng=platform_rng)
        estimates = estimate_worker_accuracies(
            pool,
            n_gold_questions=config.calibration_questions,
            rng=platform_rng,
        )
        aggregator = make_weighted_aggregator(estimates, rng=platform_rng)
    platform = SimulatedCrowdPlatform(
        dataset,
        worker_pool=pool,
        worker_accuracy=config.worker_accuracy,
        assignments_per_task=config.assignments_per_task,
        rng=platform_rng,
        aggregator=aggregator,
    )
    if config.faults is not None and config.faults.any_faults():
        platform = UnreliableCrowdPlatform(
            platform,
            config.faults,
            rng=np.random.default_rng(config.seed + 2),
        )
    return platform


class BayesCrowd:
    """One configured BayesCrowd query over one incomplete dataset."""

    def __init__(
        self,
        dataset: IncompleteDataset,
        config: Optional[BayesCrowdConfig] = None,
        platform: Optional[SimulatedCrowdPlatform] = None,
        distributions: Optional[Dict[Variable, np.ndarray]] = None,
        network: Optional[BayesianNetwork] = None,
        session: Optional[SessionContext] = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or BayesCrowdConfig()
        #: per-session execution context (RNG streams, task ids, cancel
        #: token); every run executes inside ``session.activate()`` so
        #: ambient library fallbacks are session-isolated and N engines
        #: can run concurrently in one process without shared state
        self.session = session or SessionContext(seed=self.config.seed)
        self._rng = np.random.default_rng(self.config.seed)
        if platform is None:
            platform = build_default_platform(dataset, self.config)
        self.platform = platform
        preprocess_start = time.perf_counter()
        #: posterior-precompute grouping counters (empty unless the BN
        #: posterior path ran); absorbed into the run metrics
        self.preprocess_stats: Dict[str, int] = {}
        if distributions is None:
            distributions = learn_distributions(
                dataset, self.config, network=network, stats=self.preprocess_stats
            )
            #: wall time of the preprocessing phase (distribution learning);
            #: 0 when precomputed distributions were supplied
            self.preprocess_seconds = time.perf_counter() - preprocess_start
        else:
            self.preprocess_seconds = 0.0
        self.distributions = distributions
        self._strategy = make_strategy(self.config.strategy, m=self.config.m)
        #: populated by :meth:`run`
        self.ctable: Optional[CTable] = None
        self.engine: Optional[ProbabilityEngine] = None
        self.utility_engine: Optional[UtilityEngine] = None
        self.metrics: Optional[MetricsRegistry] = None
        self.tracer: Optional[Tracer] = None
        self.events: Optional[EventLog] = None
        self.ledger: Optional[AnswerLedger] = None
        self.reliability: Optional[WorkerReliability] = None
        #: run-scoped collaborators of the round planner/executor
        self._journal: Optional[AnswerJournal] = None
        self._ranker: Optional[IncrementalRanker] = None
        self._checkpoint_path: Optional[Path] = None

    # ------------------------------------------------------------------
    def run(
        self,
        checkpoint_path: Optional[Union[str, Path]] = None,
        resume: bool = False,
        journal_path: Optional[Union[str, Path]] = None,
        journal_crash_after: Optional[int] = None,
    ) -> QueryResult:
        """Execute the query and return the answer set with run statistics.

        With ``checkpoint_path`` the answer state, remaining budget and
        round history are snapshotted after every crowdsourcing round;
        ``resume=True`` continues from such a snapshot (if the file
        exists) instead of re-spending crowd budget.

        With ``journal_path`` (or ``config.journal_path``) every accepted
        answer, quarantine verdict and budget charge is durably appended
        to a write-ahead journal *before* engine state mutates, so a run
        killed at any instant resumes bit-identically: recovery folds the
        last checkpoint (if any) plus the journal suffix back into a
        fresh c-table and finishes the interrupted round deterministically.
        ``journal_crash_after`` is the crash-injection test hook (SIGKILL
        after the N-th journal append); production code never sets it.

        The whole run executes inside the engine's
        :class:`~repro.session.SessionContext`: ambient RNG fallbacks and
        task-id allocation are session-local, and the session's
        cancellation token (plus ``config.session_deadline_s``) is
        honoured at phase boundaries with a typed
        ``SessionCancelledError`` -- journaled state survives for resume.

        Every run is traced: spans for each pipeline phase land in
        ``phase_seconds_*`` histograms, per-round decisions in the event
        log (written to ``config.trace_path`` as JSONL when set), and the
        unified perf counters in a :class:`repro.obs.MetricsRegistry`
        whose snapshot is returned on :attr:`QueryResult.metrics` (and
        exported to ``config.metrics_path`` when set).
        """
        config = self.config
        registry = MetricsRegistry()
        events = EventLog(path=config.trace_path)
        tracer = Tracer(registry=registry, event_log=events)
        # Exposed for live inspection; pre-registering the pipeline-phase
        # histograms keeps the exported schema complete even for runs that
        # never reach the crowdsourcing loop (e.g. budget 0).
        self.metrics = registry
        self.tracer = tracer
        self.events = events
        for phase in PIPELINE_PHASES:
            registry.histogram("phase_seconds_%s" % phase)
        events.emit(
            "run_start",
            dataset=self.dataset.name,
            n_objects=self.dataset.n_objects,
            budget=config.budget,
            latency=config.latency,
            strategy=config.strategy,
            seed=config.seed,
            resume=bool(resume),
            session=self.session.session_id,
        )
        if config.session_deadline_s:
            self.session.cancellation.set_deadline(config.session_deadline_s)
        try:
            with self.session.activate():
                with tracer.span("run"):
                    result = self._run_phases(
                        config,
                        registry,
                        events,
                        tracer,
                        checkpoint_path,
                        resume,
                        journal_path,
                        journal_crash_after,
                    )
            result.metrics = registry.snapshot()
            result.trace = tracer.to_dicts()
            if config.metrics_path is not None:
                self._write_metrics(config.metrics_path, registry)
            return result
        finally:
            if self._journal is not None:
                self._journal.close()
                self._journal = None
            events.close()

    @staticmethod
    def _write_metrics(path, registry: MetricsRegistry) -> None:
        """Export the metrics snapshot (Prometheus text for .prom/.txt)."""
        from ..persistence import atomic_write

        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix in (".prom", ".txt"):
            text = registry.to_prometheus()
        else:
            text = registry.to_json()
        atomic_write(path, lambda handle: handle.write(text))

    def _run_phases(
        self,
        config: BayesCrowdConfig,
        registry: MetricsRegistry,
        events: EventLog,
        tracer: Tracer,
        checkpoint_path: Optional[Union[str, Path]],
        resume: bool,
        journal_path: Optional[Union[str, Path]] = None,
        journal_crash_after: Optional[int] = None,
    ) -> QueryResult:
        """The pipeline proper; every phase runs inside a tracing span."""
        start = time.perf_counter()
        cancel = self.session.cancellation
        # Preprocessing happened in __init__ (distributions may be shared
        # across runs); record it as a back-dated span so the phase still
        # shows up in this run's histograms and trace.
        tracer.record("preprocess", self.preprocess_seconds)
        cancel.check("preprocess")

        # --- modeling phase -------------------------------------------
        with tracer.span("ctable"):
            ctable = build_ctable(
                self.dataset,
                alpha=config.alpha,
                dominator_method=config.dominator_method,
                inference_mode=config.inference_mode,
                backend=config.backend,
                prune=config.ctable_prune,
                n_jobs=config.n_jobs,
                cancel_check=lambda: cancel.check("ctable"),
            )
            # Per-worker spans of the pruning scan (back-dated: the work
            # was timed inside the scan itself, possibly in a pool).
            for worker, seconds in enumerate(
                ctable.build_stats.get("scan_worker_seconds", ())
            ):
                tracer.record(
                    "ctable_scan_worker_%d" % worker,
                    seconds,
                    phase="ctable",
                    worker=worker,
                )
        modeling_seconds = time.perf_counter() - start
        store = DistributionStore(self.distributions, ctable.constraints)
        engine = ProbabilityEngine(
            store,
            method=config.probability_method,
            rng=self._rng,
            cache_size=config.cache_size,
            n_jobs=config.n_jobs,
            node_budget=config.adpll_node_budget,
            deadline_s=config.adpll_deadline_s,
            backend=config.probability_backend,
            compile_node_budget=config.compile_node_budget,
            circuit_cache_size=config.circuit_cache_size,
        )
        engine.attach_cancellation(cancel)
        self.ctable = ctable
        self.engine = engine
        # Answer integrity: the ledger shares the c-table's constraint
        # store, so its contradiction checks see exactly the accepted
        # answers (including everything a checkpoint replays below).
        ledger = AnswerLedger(constraints=ctable.constraints)
        reliability = WorkerReliability(prior=config.reliability_prior)
        self.ledger = ledger
        self.reliability = reliability
        # Batched utility scorer: one deduplicated probability batch per
        # round plus a cross-round gain cache, instead of per-candidate
        # serial ADPLL calls.  FBS never scores utilities, so it skips the
        # engine entirely; config.selection_batch=False keeps the scalar
        # path for ablation (both select identical expressions).
        utility_engine: Optional[UtilityEngine] = None
        if config.selection_batch and config.strategy.lower() != "fbs":
            utility_engine = UtilityEngine(
                engine,
                mode=config.utility_mode,
                cache_size=config.utility_cache_size,
            )
        self.utility_engine = utility_engine
        # Warm the engine's cache in one batch so the initial result set
        # and the first round's ranking reuse every probability.
        with tracer.span("probability", stage="initial"):
            undecided = ctable.undecided()
            engine.probability_many(
                [ctable.condition(o) for o in undecided], objects=undecided
            )
            for worker, seconds in enumerate(engine.parallel_worker_seconds):
                tracer.record(
                    "probability_pool_worker_%d" % worker,
                    seconds,
                    phase="probability",
                    worker=worker,
                )
            initial_answers = ctable.result_set(
                engine.probability, config.answer_threshold
            )

        # --- crowdsourcing phase --------------------------------------
        # Durable write-ahead journal: every accepted answer, quarantine
        # verdict and budget charge is appended (and fsync-ed) *before*
        # the corresponding engine state mutates, so a crash at any
        # instant loses nothing that was paid for.
        journal_records = None
        journal_target = (
            journal_path if journal_path is not None else config.journal_path
        )
        if journal_target is not None:
            journal_target = Path(journal_target)
            if journal_target.exists():
                if resume:
                    journal_records = read_journal(journal_target)
                else:
                    journal_target.unlink()
            self._journal = AnswerJournal(
                journal_target,
                fsync=config.journal_fsync,
                crash_after=journal_crash_after,
            )
            if self._journal.last_seq == 0:
                self._journal.append(
                    "open",
                    {
                        "version": JOURNAL_VERSION,
                        "fingerprint": self._fingerprint(),
                        "session": self.session.session_id,
                    },
                )
        checkpoint = None
        if resume and checkpoint_path is not None and Path(checkpoint_path).exists():
            from ..persistence import load_checkpoint

            checkpoint = load_checkpoint(checkpoint_path)
        recovered = recover_run_state(
            ctable,
            ledger,
            reliability,
            self._fingerprint(),
            config.budget,
            checkpoint=checkpoint,
            journal_records=journal_records,
        )
        if recovered.rng_state is not None:
            self._rng.bit_generator.state = recovered.rng_state
        if recovered.platform_state is not None and hasattr(
            self.platform, "load_state_dict"
        ):
            self.platform.load_state_dict(recovered.platform_state)
        if recovered.task_ids_state is not None:
            self.session.task_ids.load_state_dict(recovered.task_ids_state)
        run = _CrowdRunState(
            budget=recovered.budget_left,
            reask_budget_total=int(config.reask_budget_frac * config.budget),
            history=recovered.history,
            answer_log=recovered.answer_log,
            pending=recovered.pending,
            fault_totals=recovered.fault_totals,
            degraded=recovered.degraded,
            resumed=recovered.resumed,
            reasks_issued=ledger.answers_reasked,
        )
        registry.counter("journal_replayed_answers").inc(recovered.replayed_answers)
        registry.counter("journal_deduped_answers").inc(recovered.deduped_answers)
        registry.counter("recovered_rounds")
        if run.resumed:
            events.emit(
                "resumed",
                rounds_done=len(run.history),
                answers_replayed=len(run.answer_log),
                budget_left=run.budget,
            )
        if recovered.replayed_answers or recovered.deduped_answers:
            events.emit(
                "journal_replayed",
                replayed=recovered.replayed_answers,
                deduped=recovered.deduped_answers,
            )
        # Built after any checkpoint/journal replay: the ranker re-scores
        # only objects whose conditions a round's answers actually touched.
        ranker = IncrementalRanker(ctable, engine)
        self._ranker = ranker
        self._checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        with tracer.span("crowd"):
            if recovered.interrupted is not None:
                registry.counter("recovered_rounds").inc(1)
                events.emit(
                    "round_recovered",
                    round=recovered.interrupted.round_index,
                    journaled_answers=len(recovered.interrupted.journaled),
                    journaled_reasks=len(recovered.interrupted.reasks),
                )
                self._finish_interrupted_round(recovered.interrupted, run)
            while (
                run.budget > 0
                and len(run.history) < config.latency
                and not run.fatal
            ):
                cancel.check("selection")
                plan = self._plan_round(run)
                if plan is None:
                    break
                self._execute_round(plan, run)

        # One last batch pass so the final result set reads from cache.
        with tracer.span("probability", stage="final"):
            undecided = ctable.undecided()
            engine.probability_many(
                [ctable.condition(o) for o in undecided], objects=undecided
            )
            answers = ctable.result_set(engine.probability, config.answer_threshold)
            probabilities: Dict[int, float] = {}
            probability_exact: Dict[int, bool] = {}
            probability_error_bounds: Dict[int, float] = {}
            for obj in answers:
                condition = ctable.condition(obj)
                if condition.is_true:
                    probabilities[obj] = 1.0
                    probability_exact[obj] = True
                    probability_error_bounds[obj] = 0.0
                else:
                    detail = engine.probability_detailed(condition)
                    probabilities[obj] = detail.value
                    probability_exact[obj] = detail.exact
                    probability_error_bounds[obj] = detail.error_bound
        total_seconds = time.perf_counter() - start - run.crowd_wait
        engine_stats = engine.stats()
        engine_stats["objects_rescored"] = ranker.n_rescored
        engine_stats["rankings"] = ranker.n_rankings
        for key, value in ctable.build_stats.items():
            engine_stats["ctable_%s" % key] = value
        # Selection-phase counters: the batched scorer's own, or the
        # context-accumulated equivalents for the scalar/FBS paths -- same
        # schema either way, so the obs verifier's invariant
        # (evals == candidates - cache hits - skipped) always checks out.
        if utility_engine is not None:
            selection_stats = utility_engine.stats()
        else:
            selection_stats = {
                "utility_candidates_total": (
                    run.utility_evaluations + run.utility_skipped
                ),
                "utility_evals_total": run.utility_evaluations,
                "residual_cache_hits": 0,
                "utility_skipped_total": run.utility_skipped,
                "utility_batches": 0,
                "utility_probability_requests": run.probability_requests,
                "utility_probability_submitted": run.probability_requests,
                "utility_probability_computed": run.probability_computed,
                "utility_precompiled_total": 0,
                "utility_batch_dedup_ratio": 0.0,
                "utility_gain_cache_size": 0,
                "utility_residual_cache_size": 0,
                "utility_batch_seconds": 0.0,
            }
        selection_stats["selection_seconds"] = float(run.selection_seconds)
        engine_stats.update(selection_stats)
        for key, value in self.preprocess_stats.items():
            engine_stats["posterior_%s" % key] = value

        # --- unified metrics ------------------------------------------
        # The scattered PR-2 perf counters, readable from one registry.
        registry.absorb(engine.stats(), prefix="engine_")
        registry.absorb(ctable.build_stats, prefix="ctable_")
        registry.absorb(selection_stats)
        registry.counter("posterior_signature_groups")
        registry.counter("posterior_cells")
        registry.counter("posterior_inference_calls")
        registry.absorb(self.preprocess_stats, prefix="posterior_")
        registry.counter("ranker_objects_rescored").inc(ranker.n_rescored)
        registry.counter("ranker_rankings").inc(ranker.n_rankings)
        tasks_posted_total = sum(r.tasks_posted for r in run.history)
        tasks_answered_total = sum(r.tasks_answered for r in run.history)
        registry.counter("crowd_rounds").inc(len(run.history))
        registry.counter("crowd_tasks_posted").inc(tasks_posted_total)
        registry.counter("crowd_tasks_answered").inc(tasks_answered_total)
        registry.counter("crowd_retries").inc(sum(r.retries for r in run.history))
        for key, value in run.fault_totals.items():
            registry.counter("crowd_fault_%s" % key).inc(value)
        # Integrity accounting: always exported (strict or not), so the
        # obs verifier's invariant answers_quarantined + answers_applied
        # == answers_aggregated is checkable on every run.
        registry.absorb(ledger.summary())
        if self._journal is not None:
            registry.absorb(self._journal.stats())
        registry.gauge("reliability_workers_tracked").set(reliability.n_workers())
        registry.counter("reasks_issued").inc(run.reasks_issued)
        registry.gauge("probability_approx_objects").set(
            sum(1 for exact in probability_exact.values() if not exact)
        )
        registry.gauge("crowd_budget_left").set(run.budget)
        registry.gauge("run_degraded").set(1.0 if run.degraded else 0.0)
        registry.gauge("run_resumed").set(1.0 if run.resumed else 0.0)
        registry.gauge("answers_total").set(len(answers))
        registry.gauge("answers_certain").set(len(ctable.certain_answers()))
        registry.gauge("modeling_seconds").set(modeling_seconds)
        registry.gauge("preprocess_seconds").set(self.preprocess_seconds)
        registry.gauge("total_seconds").set(total_seconds)

        events.emit(
            "run_end",
            rounds=len(run.history),
            # trace-scoped totals: a resumed run's replayed rounds are in
            # the history counts but never in this trace's tasks_issued
            tasks_posted=run.issued_this_run,
            tasks_answered=run.answered_this_run,
            answers=len(answers),
            degraded=run.degraded,
            seconds=total_seconds,
        )
        return QueryResult(
            answers=answers,
            certain_answers=ctable.certain_answers(),
            tasks_posted=tasks_posted_total,
            rounds=len(run.history),
            seconds=total_seconds,
            tasks_answered=tasks_answered_total,
            modeling_seconds=modeling_seconds,
            history=run.history,
            initial_answers=initial_answers,
            answer_probabilities=probabilities,
            engine_stats=engine_stats,
            degraded=run.degraded,
            fault_counts=run.fault_totals,
            resumed=run.resumed,
            integrity=ledger.summary(),
            worker_reliability=reliability.accuracies(),
            probability_exact=probability_exact,
            probability_error_bounds=probability_error_bounds,
        )

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    def _post_with_retries(self, tasks: List[ComparisonTask]):
        """Post a batch, absorbing the platform's typed failures.

        Returns ``(answers, faults, fatal, abandoned)``: the (possibly
        partial) answers, per-round fault counters, whether the platform
        failed fatally, and the ids of tasks abandoned as expired.
        """
        config = self.config
        faults: Dict[str, int] = {}
        abandoned: set = set()
        remaining = list(tasks)
        retries = 0
        while True:
            if not remaining:
                return {}, faults, False, abandoned
            try:
                return self.platform.post_batch(remaining), faults, False, abandoned
            except TaskExpiredError as err:
                expired_ids = {t.task_id for t in err.tasks}
                expired = [t for t in remaining if t.task_id in expired_ids]
                if not expired:
                    # A platform expiring tasks we did not post cannot make
                    # progress; give the round up instead of looping.
                    faults["failed_round"] = 1
                    return {}, faults, False, abandoned
                faults["expired"] = faults.get("expired", 0) + len(expired)
                abandoned.update(t.task_id for t in expired)
                remaining = [t for t in remaining if t.task_id not in expired_ids]
                logger.warning(
                    "%d task(s) expired and were refunded; reposting %d",
                    len(expired),
                    len(remaining),
                )
            except PlatformTransientError as err:
                if retries >= config.max_retries:
                    logger.warning(
                        "round abandoned after %d retries: %s", retries, err
                    )
                    faults["failed_round"] = 1
                    return {}, faults, False, abandoned
                retries += 1
                faults["transient_retries"] = retries
                delay = min(
                    config.backoff_cap, config.backoff_base * (2 ** (retries - 1))
                )
                delay *= 0.5 + self._rng.random()  # jitter in [0.5x, 1.5x)
                logger.debug(
                    "transient platform error (%s); retry %d/%d in %.2fs",
                    err,
                    retries,
                    config.max_retries,
                    delay,
                )
                if delay > 0:
                    time.sleep(delay)
            except PlatformFatalError as err:
                logger.error("fatal platform error, degrading: %s", err)
                faults["fatal"] = 1
                return {}, faults, True, abandoned

    @staticmethod
    def _task_still_open(ctable: CTable, task: ComparisonTask) -> bool:
        """Is answering this (requeued) task still worth crowd money?"""
        if ctable.constraints.resolve(task.expression) is not None:
            return False
        # The incrementally maintained frequency index answers "does any
        # condition still mention this expression" in O(1), replacing the
        # historical scan over every object sharing a variable.
        return ctable.expression_frequency(task.expression) > 0

    # ------------------------------------------------------------------
    # round planning / execution
    # ------------------------------------------------------------------
    def _plan_round(self, run: _CrowdRunState) -> Optional[_RoundPlan]:
        """Select the next round's conflict-free batch (Section 6).

        Returns ``None`` when the loop should stop: every expression is
        decided, the entropy early-stop fired, or selection found no
        postable task.
        """
        config = self.config
        ctable = self.ctable
        events = self.events
        started_at = time.perf_counter()
        round_index = len(run.history) + 1
        # Requeued tasks that other answers already decided are moot:
        # drop them instead of paying the crowd for known relations.
        run.pending = [
            t for t in run.pending if self._task_still_open(ctable, t)
        ]
        if not run.pending and not ctable.has_open_expressions():
            return None
        k = min(run.budget, config.tasks_per_round())
        tasks: List[ComparisonTask] = list(run.pending[:k])
        leftover_pending = run.pending[k:]
        banned = set()
        objects: List[Optional[int]] = []
        for task in tasks:
            banned.update(task.variables())
            objects.append(task.for_object)
        ranked = self._ranker.rank()
        if (
            not tasks
            and ranked
            and config.entropy_epsilon > 0.0
            and ranked[0].entropy < config.entropy_epsilon
        ):
            # Every undecided object is already near-certain; further
            # tasks would buy negligible information.
            logger.debug(
                "early stop: max entropy %.4f below epsilon %.4f",
                ranked[0].entropy,
                config.entropy_epsilon,
            )
            events.emit(
                "early_stop",
                round=round_index,
                max_entropy=ranked[0].entropy,
                epsilon=config.entropy_epsilon,
            )
            return None
        if ranked and len(tasks) < k:
            selection_start = time.perf_counter()
            # Expression frequencies are counted over the chosen top-k
            # objects' conditions (Section 6.2, step two).
            chosen = [ctable.condition(r.obj) for r in ranked[:k]]
            context = SelectionContext(
                engine=self.engine,
                frequencies=expression_frequencies(chosen),
                utility_mode=config.utility_mode,
                utility_engine=self.utility_engine,
            )
            # One deduplicated gain batch for the whole round; the
            # per-object walk below is then served from its cache.
            self._strategy.prefetch_round(chosen, context, banned)
            # Walk the full ranking so a conflict-skipped slot is
            # refilled by the next most uncertain object, keeping
            # rounds at size k.
            for r in ranked:
                if len(tasks) >= k:
                    break
                expression = self._strategy.select_expression(
                    ctable.condition(r.obj), context, banned
                )
                if expression is None:
                    continue
                banned.update(expression.variables())
                tasks.append(ComparisonTask(expression, for_object=r.obj))
                objects.append(r.obj)
            run.utility_evaluations += context.utility_evaluations
            run.utility_skipped += context.utility_skipped
            run.probability_requests += context.probability_requests
            run.probability_computed += context.probability_computed
            run.selection_seconds += time.perf_counter() - selection_start
        if not tasks:
            return None
        if self.platform is None:
            raise RuntimeError(
                "crowdsourcing needs a platform; supply one or use a "
                "dataset with ground truth for the simulated crowd"
            )
        return _RoundPlan(
            round_index=round_index,
            tasks=tasks,
            leftover_pending=leftover_pending,
            objects=objects,
            started_at=started_at,
        )

    def _finish_interrupted_round(
        self, interrupted: InterruptedRound, run: _CrowdRunState
    ) -> None:
        """Deterministically finish the round a crash cut short.

        Restores the ``round_begin`` snapshots (framework RNG, platform
        state, task-id allocator) and re-posts the *same* task batch the
        crashed process posted: the platform reproduces the same
        answers, the ones already journaled are recognised by task id
        and skipped, and the fresh tail continues exactly where the
        crash interrupted.  Journaled re-ask ids are reserved first so
        fresh allocations never collide with them.
        """
        if interrupted.rng_state is not None:
            self._rng.bit_generator.state = interrupted.rng_state
        if interrupted.platform_state is not None and hasattr(
            self.platform, "load_state_dict"
        ):
            self.platform.load_state_dict(interrupted.platform_state)
        if interrupted.task_ids_state is not None:
            self.session.task_ids.load_state_dict(interrupted.task_ids_state)
        for payload in interrupted.reasks.values():
            self.session.task_ids.reserve(int(payload["task_id"]))
        plan = _RoundPlan(
            round_index=interrupted.round_index,
            tasks=interrupted.tasks,
            leftover_pending=interrupted.leftover_pending,
            objects=[task.for_object for task in interrupted.tasks],
            open_before=interrupted.open_before,
            journaled=interrupted.journaled,
            reasks=interrupted.reasks,
            recovered=True,
            started_at=time.perf_counter(),
        )
        self._execute_round(plan, run)

    def _execute_round(self, plan: _RoundPlan, run: _CrowdRunState) -> None:
        """Post one planned batch and durably fold its answers back.

        Write-ahead ordering: ``round_begin`` (tasks + pre-post RNG /
        platform / allocator snapshots) is journaled before posting,
        every answer before the ledger and c-table mutate, and
        ``round_commit`` before the round checkpoint.  For a recovered
        plan the ``round_begin`` is already durable, and answers the
        crashed process journaled are recognised by task id: their
        verdict, budget charge and post-arbitration RNG snapshot come
        from the journal instead of being recomputed.
        """
        from ..persistence import _round_to_dict, expression_to_json

        config = self.config
        ctable = self.ctable
        ledger = self.ledger
        reliability = self.reliability
        events = self.events
        journal = self._journal
        round_index = plan.round_index
        tasks = plan.tasks
        events.emit(
            "tasks_issued",
            round=round_index,
            count=len(tasks),
            objects=list(plan.objects),
            tasks=[
                {
                    "task_id": task.task_id,
                    "object": task.for_object,
                    "expression": str(task.expression),
                }
                for task in tasks
            ],
        )
        run.issued_this_run += len(tasks)
        open_before = (
            plan.open_before
            if plan.open_before is not None
            else len(ctable.undecided())
        )
        if journal is not None and not plan.recovered:
            journal.append(
                "round_begin",
                {
                    "round": round_index,
                    "open_before": open_before,
                    "tasks": [task_to_payload(t) for t in tasks],
                    "leftover_pending": [
                        task_to_payload(t) for t in plan.leftover_pending
                    ],
                    "rng_state": self._rng.bit_generator.state,
                    "platform_state": self._platform_state(),
                    "task_ids": self.session.task_ids.state_dict(),
                },
            )
        post_start = time.perf_counter()
        answers, round_faults, fatal, abandoned = self._post_with_retries(tasks)
        run.crowd_wait += time.perf_counter() - post_start
        run.fatal = fatal

        platform_votes = dict(getattr(self.platform, "last_votes", None) or {})
        pending_reasks: List[ComparisonTask] = []
        applied_count = 0
        for task, relation in answers.items():
            journaled = plan.journaled.get(task.task_id)
            if journaled is not None:
                # Idempotent re-application: this answer survived the
                # crash in the journal and recovery already charged and
                # folded it.  Restore its post-arbitration RNG snapshot
                # so every *fresh* answer after it draws exactly what
                # the crashed process would have drawn.
                if journaled.get("rng_state") is not None:
                    self._rng.bit_generator.state = journaled["rng_state"]
                if journaled["status"] == "applied":
                    applied_count += 1
                    continue
                events.emit(
                    "answer_quarantined",
                    round=round_index,
                    task_id=task.task_id,
                    expression=str(task.expression),
                    relation=journaled.get("relation", relation.value),
                    reason=journaled.get("reason"),
                    replayed=True,
                )
                self._maybe_reask(task, plan, run, pending_reasks)
                continue
            votes = tuple(platform_votes.get(task.task_id, ()))
            if task.is_reask() and votes and reliability.n_workers() > 0:
                # Re-ask arbitration: replace the platform's aggregate
                # with a vote weighted by the online reliability
                # posteriors, so workers who have disagreed with
                # accepted majorities count less.
                relation = weighted_vote(
                    list(votes),
                    reliability.accuracies(),
                    rng=self._rng,
                    default_accuracy=reliability.prior_mean,
                )
            reason = ledger.check(task.expression, relation)
            status = (
                "quarantined"
                if (reason is not None and config.strict_integrity)
                else "applied"
            )
            if journal is not None:
                journal.append(
                    "answer",
                    {
                        "round": round_index,
                        "task_id": task.task_id,
                        "expression": expression_to_json(task.expression),
                        "relation": relation.value,
                        "votes": [[wid, rel.value] for wid, rel in votes],
                        "status": status,
                        "reason": reason,
                        "charge": 1,
                        "reask_of": task.reask_of,
                        "rng_state": self._rng.bit_generator.state,
                    },
                )
            ledger.record(
                task.expression,
                relation,
                status=status,
                reason=reason,
                round_index=round_index,
                task_id=task.task_id,
                votes=votes,
                reask_of=task.reask_of,
            )
            # The paper's cost model charges per answered task; the
            # charge is durable (journaled) before any state mutates.
            run.budget -= 1
            if status == "applied":
                self._ranker.mark_dirty(
                    ctable.apply_answer(task.expression, relation)
                )
                run.answer_log.append((task.expression, relation))
                reliability.observe_votes(votes, relation)
                applied_count += 1
                continue
            # Quarantined: charged-but-flagged, never applied.
            events.emit(
                "answer_quarantined",
                round=round_index,
                task_id=task.task_id,
                expression=str(task.expression),
                relation=relation.value,
                reason=reason,
            )
            self._maybe_reask(task, plan, run, pending_reasks)
        open_after = len(ctable.undecided())
        events.emit(
            "answers_applied",
            round=round_index,
            count=applied_count,
            quarantined=len(answers) - applied_count,
            task_ids=sorted(task.task_id for task in answers),
        )
        events.emit(
            "objects_decided",
            round=round_index,
            newly_decided=open_before - open_after,
            open_conditions=open_after,
        )
        run.answered_this_run += len(answers)
        unanswered = [
            t for t in tasks if t not in answers and t.task_id not in abandoned
        ]
        if unanswered:
            round_faults["unanswered"] = len(unanswered)
        quarantined_count = len(answers) - applied_count
        if quarantined_count:
            round_faults["quarantined"] = quarantined_count
        # Re-asks go to the head of the queue: the next round's batch
        # consumes pending tasks before the entropy ranking runs, so a
        # quarantined variable is re-verified before ranking ever sees
        # a (potentially poisoned) answer.
        if config.requeue_policy == "requeue":
            run.pending = pending_reasks + plan.leftover_pending + unanswered
        else:
            run.pending = pending_reasks + plan.leftover_pending
        for key, value in round_faults.items():
            run.fault_totals[key] = run.fault_totals.get(key, 0) + value
        if unanswered or abandoned or round_faults.get("failed_round") or fatal:
            run.degraded = True
        logger.debug(
            "round %d: %d tasks posted, %d answered, %d conditions still "
            "open, budget %d left",
            round_index,
            len(tasks),
            len(answers),
            open_after,
            run.budget,
        )
        round_seconds = time.perf_counter() - plan.started_at
        record = RoundRecord(
            round_index=round_index,
            tasks_posted=len(tasks),
            objects=list(plan.objects),
            newly_decided=open_before - open_after,
            open_conditions=open_after,
            seconds=round_seconds,
            tasks_answered=len(answers),
            retries=round_faults.get("transient_retries", 0),
            faults=dict(round_faults),
        )
        run.history.append(record)
        self.tracer.record(
            "round[%d]" % round_index,
            round_seconds,
            phase="round",
            tasks_posted=len(tasks),
            tasks_answered=len(answers),
        )
        events.emit(
            "round_end",
            round=round_index,
            seconds=round_seconds,
            budget_left=run.budget,
            tasks_answered=len(answers),
            newly_decided=open_before - open_after,
            faults=dict(round_faults),
        )
        if journal is not None:
            # The commit is a mini-checkpoint: with it, a journal alone
            # (no checkpoint file) can recover the whole run.
            journal.append(
                "round_commit",
                {
                    "round": round_index,
                    "record": _round_to_dict(record),
                    "budget_left": run.budget,
                    "pending": [task_to_payload(t) for t in run.pending],
                    "fault_totals": dict(run.fault_totals),
                    "degraded": run.degraded,
                    "rng_state": self._rng.bit_generator.state,
                    "platform_state": self._platform_state(),
                    "task_ids": self.session.task_ids.state_dict(),
                },
            )
        if self._checkpoint_path is not None:
            self._write_checkpoint(self._checkpoint_path, run)

    def _maybe_reask(
        self,
        task: ComparisonTask,
        plan: _RoundPlan,
        run: _CrowdRunState,
        pending_reasks: List[ComparisonTask],
    ) -> None:
        """Issue (or re-create) the bounded re-ask for a quarantined task.

        A journaled re-ask is re-created under its original task id: the
        crashed process already decided and durably recorded it, and
        replay already counted it against the re-ask budget.  Otherwise
        the gate is evaluated live; for a replayed answer whose re-ask
        was *not* journaled that evaluation is exact, because the ledger
        attempts, issued counter and c-table openness at this point are
        precisely the crashed process's decision state.
        """
        events = self.events
        journaled = plan.reasks.get(task.task_id)
        if journaled is not None:
            reask = ComparisonTask(
                task.expression,
                for_object=task.for_object,
                task_id=int(journaled["task_id"]),
                reask_of=task.task_id,
            )
            pending_reasks.append(reask)
            events.emit(
                "reask_issued",
                round=plan.round_index,
                of_task=task.task_id,
                task_id=reask.task_id,
                expression=str(task.expression),
                replayed=True,
            )
            return
        # Re-ask only while the expression is still genuinely open: a
        # "direct" conflict means accepted answers already pin the
        # expression's truth, and the ledger is append-only -- no answer
        # can overturn them.
        if (
            run.reasks_issued < run.reask_budget_total
            and self.ledger.reask_attempts(task.expression) < _MAX_REASK_ATTEMPTS
            and self._task_still_open(self.ctable, task)
        ):
            reask = ComparisonTask(
                task.expression,
                for_object=task.for_object,
                reask_of=task.task_id,
            )
            if self._journal is not None:
                from ..persistence import expression_to_json

                self._journal.append(
                    "reask",
                    {
                        "round": plan.round_index,
                        "of_task": task.task_id,
                        "task_id": reask.task_id,
                        "expression": expression_to_json(task.expression),
                    },
                )
            self.ledger.note_reask(task.expression)
            run.reasks_issued += 1
            pending_reasks.append(reask)
            events.emit(
                "reask_issued",
                round=plan.round_index,
                of_task=task.task_id,
                task_id=reask.task_id,
                expression=str(task.expression),
            )

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def _platform_state(self) -> Optional[dict]:
        """The platform's JSON snapshot, when it supports one."""
        state_fn = getattr(self.platform, "state_dict", None)
        return state_fn() if callable(state_fn) else None

    def _fingerprint(self) -> Dict[str, object]:
        """Identity of the query a checkpoint belongs to.

        Latency is deliberately excluded so an interrupted run may resume
        with a larger round allowance.
        """
        config = self.config
        return {
            "dataset": self.dataset.name,
            "n_objects": self.dataset.n_objects,
            "seed": config.seed,
            "budget": config.budget,
            "strategy": config.strategy,
            "alpha": config.alpha,
            "answer_threshold": config.answer_threshold,
        }

    def _write_checkpoint(self, path, run: _CrowdRunState) -> None:
        from ..persistence import QueryCheckpoint, save_checkpoint

        save_checkpoint(
            path,
            QueryCheckpoint(
                fingerprint=self._fingerprint(),
                budget_left=run.budget,
                answer_log=list(run.answer_log),
                pending=[
                    (t.expression, t.for_object, t.task_id, t.reask_of)
                    for t in run.pending
                ],
                history=list(run.history),
                fault_totals=dict(run.fault_totals),
                degraded=run.degraded,
                rng_state=self._rng.bit_generator.state,
                platform_state=self._platform_state(),
                ledger_state=(
                    self.ledger.state_dict() if self.ledger is not None else None
                ),
                reliability_state=(
                    self.reliability.state_dict()
                    if self.reliability is not None
                    else None
                ),
                # v3: the journal sequence this checkpoint covers -- only
                # records *after* it are replayed on resume -- and the
                # allocator snapshot so resumed tasks keep stable ids.
                journal_seq=(
                    self._journal.last_seq if self._journal is not None else None
                ),
                task_ids_state=self.session.task_ids.state_dict(),
            ),
        )


def run_bayescrowd(
    dataset: IncompleteDataset,
    config: Optional[BayesCrowdConfig] = None,
    **kwargs,
) -> QueryResult:
    """Convenience one-call API: configure, run, return the result."""
    return BayesCrowd(dataset, config=config, **kwargs).run()
