"""Batched marginal-utility scoring for the selection phase.

UBS/HHS need ``G(o, e)`` (Eq. 4) for many candidate ``(condition,
expression)`` pairs per round.  The scalar path pays two full ADPLL
probability computations per candidate, serially, and forgets everything
between rounds.  The :class:`UtilityEngine` turns the same work into a
small number of deduplicated batches:

* a round's candidate pairs arrive together through :meth:`gains`;
* the residual conditions ``phi[e:=true]`` / ``phi[e:=false]`` (or the
  conjunction ``phi ^ e`` in ``"conditional"`` mode) are materialized
  once per distinct pair and LRU-cached -- residuals are purely
  syntactic rewrites, so these cache entries never invalidate;
* all base and residual conditions of the batch are deduplicated and
  evaluated through :meth:`ProbabilityEngine.probability_many`, which
  bulk-warms leaf expression probabilities and can fan out to a process
  pool;
* every finished gain is cached keyed ``(condition, expression)``
  together with the :class:`DistributionStore` version it was computed
  at; a later round revalidates entries via
  ``variables_unchanged_since``, so pairs untouched by newer crowd
  answers are free.

Gains are bit-identical to :func:`repro.core.utility.marginal_utility`:
both paths read the same probability backend and share
:func:`repro.core.utility.gain_from_probabilities`.

Counter semantics (surfaced via :meth:`stats` and the ``repro.obs``
verifier): every pair passed to :meth:`gains` increments
``utility_candidates_total`` and exactly one of ``utility_evals_total``
(a fresh gain computation), ``residual_cache_hits`` (served from the
cross-round gain cache or a duplicate within the batch) or
``utility_skipped_total`` (short-circuited at ``H(o) == 0``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..ctable.condition import Condition
from ..ctable.expression import Expression
from ..lru import LRUCache
from ..probability.engine import ProbabilityEngine
from .utility import UTILITY_MODES, conjoin, entropy, gain_from_probabilities

#: Default bound on the gain and residual-condition caches.
DEFAULT_UTILITY_CACHE_SIZE = 65_536

#: A candidate pair: one object's condition and one of its expressions.
CandidatePair = Tuple[Condition, Expression]


class UtilityEngine:
    """Batched, cached ``G(o, e)`` evaluation against one probability engine."""

    def __init__(
        self,
        engine: ProbabilityEngine,
        mode: str = "syntactic",
        cache_size: int = DEFAULT_UTILITY_CACHE_SIZE,
        n_jobs: Optional[int] = None,
    ) -> None:
        if mode not in UTILITY_MODES:
            raise ValueError("unknown utility mode %r" % mode)
        self.engine = engine
        self.mode = mode
        self._n_jobs = n_jobs
        #: (condition, expression) -> (gain, store version when computed)
        self._gains: "LRUCache[CandidatePair, Tuple[float, int]]" = LRUCache(cache_size)
        #: (condition, expression, truth) -> residual condition; truth is
        #: None for the "conditional" mode's conjunction
        self._residuals: "LRUCache[Tuple[Condition, Expression, Optional[bool]], Condition]" = (
            LRUCache(cache_size)
        )
        self.candidates_total = 0
        self.evals_total = 0
        self.cache_hits = 0
        self.skipped_total = 0
        self.batches = 0
        #: conditions handed to :meth:`gains`' probability stages, before
        #: within-batch dedup
        self.probability_requests = 0
        #: distinct conditions actually submitted to ``probability_many``
        self.probability_submitted = 0
        #: fresh ADPLL solves those submissions actually triggered (the
        #: rest were served by the engine's version-validated LRU, e.g.
        #: base conditions already warmed by the entropy ranking)
        self.probability_computed = 0
        #: conditions handed to the forest backend's round-level
        #: :meth:`ProbabilityEngine.precompile_many` batch (0 otherwise)
        self.precompiled_total = 0
        self.seconds = 0.0

    # ------------------------------------------------------------------
    def gains(self, pairs: Sequence[CandidatePair]) -> List[float]:
        """``G(o, e)`` for every pair, served from cache where possible.

        One call per round (or per HHS chunk) replaces the scalar path's
        per-candidate serial ADPLL calls: base and residual conditions of
        all cache-missing pairs are deduplicated globally and evaluated
        in two ``probability_many`` batches.
        """
        if not pairs:
            return []
        start = time.perf_counter()
        store = self.engine.store
        version = store.version
        out: List[Optional[float]] = [None] * len(pairs)
        #: first-seen order of cache-missing pairs -> their output indices
        fresh: Dict[CandidatePair, List[int]] = {}
        for i, pair in enumerate(pairs):
            self.candidates_total += 1
            indices = fresh.get(pair)
            if indices is not None:
                # Duplicate within the batch: computed once, served twice.
                self.cache_hits += 1
                indices.append(i)
                continue
            cached = self._gains.get(pair)
            if cached is not None:
                value, cached_version = cached
                if cached_version == version or store.variables_unchanged_since(
                    self._pair_variables(pair), cached_version
                ):
                    self.cache_hits += 1
                    out[i] = value
                    continue
            fresh[pair] = [i]

        if fresh:
            ordered = list(fresh)
            self.probability_requests += len(ordered)
            self._precompile_round(ordered)
            base_probs = self._probability_many([c for c, __ in ordered])
            pending: List[Tuple[CandidatePair, float]] = []
            for pair, p_phi in zip(ordered, base_probs):
                if entropy(p_phi) == 0.0:
                    # Decided (or numerically certain) objects carry no
                    # information to gain; no residual work needed.
                    self.skipped_total += 1
                    self._finish(pair, 0.0, version, fresh, out)
                else:
                    pending.append((pair, p_phi))
            if pending:
                store.prob_expressions_bulk({e for (__, e), __ in pending})
                branches = self._branch_conditions(pending)
                self.probability_requests += len(branches)
                branch_probs = self._probability_many(branches)
                per_pair = len(branches) // len(pending)
                for index, (pair, p_phi) in enumerate(pending):
                    p_e = store.prob_expression(pair[1])
                    gain = gain_from_probabilities(
                        p_phi,
                        p_e,
                        branch_probs[per_pair * index],
                        branch_probs[per_pair * index + 1] if per_pair == 2 else 0.0,
                        mode=self.mode,
                    )
                    self.evals_total += 1
                    self._finish(pair, gain, version, fresh, out)
            self.batches += 1

        self.seconds += time.perf_counter() - start
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _precompile_round(self, ordered: Sequence[CandidatePair]) -> None:
        """Register the whole round's circuits in one forest batch.

        Under the ``forest`` backend both ``gains`` probability stages
        read the same shared circuit forest, so submitting the base
        conditions *and* every pair's residual branches up front means
        the first sweep of the round already covers the second stage's
        nodes: one compile batch plus one array sweep per round instead
        of two.  Residuals are syntactic rewrites served by the
        ``_residuals`` LRU, so the eager construction here is reused
        verbatim by :meth:`_branch_conditions`.  Other backends have no
        batch compile step; the hook is a no-op for them.
        """
        if getattr(self.engine, "backend", None) != "forest":
            return
        conditions = [c for c, __ in ordered]
        conditions.extend(
            self._branch_conditions([(pair, 0.0) for pair in ordered])
        )
        self.precompiled_total += self.engine.precompile_many(conditions)

    @staticmethod
    def _pair_variables(pair: CandidatePair):
        condition, expression = pair
        return condition.variables().union(expression.variables())

    def _branch_conditions(
        self, pending: Sequence[Tuple[CandidatePair, float]]
    ) -> List[Condition]:
        """Residual conditions of every pending pair, in pair order."""
        branches: List[Condition] = []
        if self.mode == "syntactic":
            for (condition, expression), __ in pending:
                branches.append(self._residual(condition, expression, True))
                branches.append(self._residual(condition, expression, False))
        else:
            for (condition, expression), __ in pending:
                branches.append(self._residual(condition, expression, None))
        return branches

    def _residual(
        self, condition: Condition, expression: Expression, truth: Optional[bool]
    ) -> Condition:
        """``phi[e:=truth]`` (or ``phi ^ e`` for ``truth=None``), cached.

        Residuals are syntactic rewrites of immutable conditions: the
        cache needs no version validation, only LRU bounding.
        """
        key = (condition, expression, truth)
        residual = self._residuals.get(key)
        if residual is None:
            if truth is None:
                residual = conjoin(condition, expression)
            else:
                residual = condition.assign_expression(expression, truth)
            self._residuals[key] = residual
        return residual

    def _probability_many(self, conditions: Sequence[Condition]) -> List[float]:
        """Engine batch with explicit within-batch dedup accounting."""
        unique: List[Condition] = []
        seen = set()
        for condition in conditions:
            if condition not in seen:
                seen.add(condition)
                unique.append(condition)
        self.probability_submitted += len(unique)
        computed_before = self.engine.n_computations
        values = self.engine.probability_many(unique, n_jobs=self._n_jobs)
        self.probability_computed += self.engine.n_computations - computed_before
        lookup = dict(zip(unique, values))
        return [lookup[condition] for condition in conditions]

    def _finish(
        self,
        pair: CandidatePair,
        value: float,
        version: int,
        fresh: Dict[CandidatePair, List[int]],
        out: List[Optional[float]],
    ) -> None:
        self._gains[pair] = (value, version)
        indices = fresh[pair]
        for i in indices:
            out[i] = value

    # ------------------------------------------------------------------
    @property
    def dedup_ratio(self) -> float:
        """Fraction of probability requests removed by within-batch dedup."""
        if self.probability_requests == 0:
            return 0.0
        return 1.0 - self.probability_submitted / self.probability_requests

    def stats(self) -> Dict[str, float]:
        """Counter snapshot under the names the obs layer exports."""
        return {
            "utility_candidates_total": self.candidates_total,
            "utility_evals_total": self.evals_total,
            "residual_cache_hits": self.cache_hits,
            "utility_skipped_total": self.skipped_total,
            "utility_batches": self.batches,
            "utility_probability_requests": self.probability_requests,
            "utility_probability_submitted": self.probability_submitted,
            "utility_probability_computed": self.probability_computed,
            "utility_precompiled_total": self.precompiled_total,
            "utility_batch_dedup_ratio": float(self.dedup_ratio),
            "utility_gain_cache_size": len(self._gains),
            "utility_residual_cache_size": len(self._residuals),
            "utility_batch_seconds": float(self.seconds),
        }
