"""Configuration of a BayesCrowd query run."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

from ..crowd.quality import DEFAULT_RELIABILITY_PRIOR
from ..crowd.unreliable import FaultModel
from ..ctable.constraints import INFERENCE_MODES
from ..ctable.construction import BACKENDS
from ..ctable.pruning import PRUNE_MODES
from ..ctable.dominators import DOMINATOR_METHODS
from ..probability.compile import (
    DEFAULT_CIRCUIT_CACHE_SIZE,
    DEFAULT_COMPILE_NODE_BUDGET,
)
from ..probability.engine import DEFAULT_CACHE_SIZE, METHODS, PROBABILITY_BACKENDS
from .utility import UTILITY_MODES
from .utility_engine import DEFAULT_UTILITY_CACHE_SIZE

#: How the per-variable distributions are obtained in preprocessing.
DISTRIBUTION_SOURCES = ("bayesnet", "empirical", "uniform")

#: What happens to tasks the platform never answered: repost them in the
#: next round ("requeue") or just not charge their budget ("refund").
REQUEUE_POLICIES = ("requeue", "refund")


@dataclass
class BayesCrowdConfig:
    """All knobs of Algorithm 1 / Algorithm 4 in one place.

    Defaults follow the paper's NBA settings (Section 7): ``alpha=0.003``
    scaled up to 0.01 for the smaller default datasets, budget 50, latency
    5 rounds, ``m=15``, three workers per task with majority voting,
    answer threshold 0.5.
    """

    #: pruning threshold of Get-CTable (fraction of |O|); >= 1 disables
    alpha: float = 0.01
    #: total number of affordable tasks (B)
    budget: int = 50
    #: latency constraint: max number of task-selection rounds (L)
    latency: int = 5
    #: task selection strategy: "fbs", "ubs" or "hhs"
    strategy: str = "hhs"
    #: HHS early-stop parameter
    m: int = 15
    #: probability computation method: "adpll", "naive" or "approx"
    probability_method: str = "adpll"
    #: exact-probability backend (method "adpll" only): "adpll" re-solves
    #: each condition every round, "compiled" compiles each condition once
    #: into a d-DNNF circuit and re-propagates weights as answers arrive,
    #: "forest" shares subcircuits across all objects in one store-scoped
    #: DAG and re-weights every registered circuit in a single array sweep
    probability_backend: str = "adpll"
    #: node cap for compiling one condition's circuit before the engine
    #: degrades to ADPLL-then-sampling (0 = unlimited)
    compile_node_budget: int = DEFAULT_COMPILE_NODE_BUDGET
    #: bound on compiled circuits kept live per store -- the compiled
    #: backend's per-store LRU and the forest backend's root-pin LRU
    #: (0 = unbounded)
    circuit_cache_size: int = DEFAULT_CIRCUIT_CACHE_SIZE
    #: objects with Pr(phi) above this are reported as answers
    answer_threshold: float = 0.5
    #: stop crowdsourcing early once every undecided object's entropy falls
    #: below this (0 disables; saves budget when answers are near-certain)
    entropy_epsilon: float = 0.0
    #: H(o|e) evaluation in the utility function (paper: "syntactic")
    utility_mode: str = "syntactic"
    #: preprocessing distribution source
    distribution_source: str = "bayesnet"
    #: dominator-set derivation in Get-CTable: "numpy", "fast" or "baseline"
    dominator_method: str = "fast"
    #: c-table construction backend: "auto" (numpy unless the baseline
    #: dominator method is requested), "numpy" or "python"
    backend: str = "auto"
    #: sub-quadratic dominance pruning pre-pass before clause emission:
    #: "auto" (on for the numpy backend), "on" or "off"; the pruned build
    #: is clause-for-clause identical, only pairs_tested shrinks
    ctable_prune: str = "auto"
    #: worker processes for batched probability computation and the
    #: c-table pruning scan (1 = sequential, 0 = one per CPU core);
    #: single-core hosts always fall back to sequential automatically
    n_jobs: int = 1
    #: bound on the engine's condition-probability cache (0 = unbounded)
    cache_size: int = DEFAULT_CACHE_SIZE
    #: score marginal utilities through the batched, cross-round-cached
    #: UtilityEngine (False = the scalar per-candidate path, kept for
    #: ablation and parity testing; both select identical expressions)
    selection_batch: bool = True
    #: bound on the utility gain/residual caches (0 = unbounded)
    utility_cache_size: int = DEFAULT_UTILITY_CACHE_SIZE
    #: answer-propagation level: "direct", "intervals" or "full"
    inference_mode: str = "full"
    #: structure-learning parent cap for the Bayesian network
    bn_max_parents: int = 3
    #: Laplace smoothing for CPT estimation
    bn_smoothing: float = 1.0
    #: workers answering each task (majority voted)
    assignments_per_task: int = 3
    #: answer aggregation: "majority" or "weighted" (gold-task calibrated
    #: log-odds voting; see repro.crowd.quality)
    aggregation: str = "majority"
    #: gold questions per worker for "weighted" calibration
    calibration_questions: int = 20
    #: accuracy of simulated workers (used when no platform is supplied)
    worker_accuracy: float = 1.0
    #: max re-posts of a batch after transient platform errors
    max_retries: int = 3
    #: first backoff delay in seconds (doubled per retry, jittered, capped)
    backoff_base: float = 0.05
    #: upper bound on one backoff delay in seconds
    backoff_cap: float = 2.0
    #: unanswered tasks: "requeue" (repost next round) or "refund" (drop,
    #: budget is only ever charged for answered tasks either way)
    requeue_policy: str = "requeue"
    #: fault injection applied to the auto-constructed simulated platform
    #: (None = reliable oracle platform; see repro.crowd.FaultModel)
    faults: Optional[FaultModel] = None
    #: quarantine answers that contradict the accepted partial order and
    #: re-ask them (reliability-weighted) instead of applying them; off,
    #: the ledger still records every contradiction but applies the answer
    strict_integrity: bool = False
    #: cap on re-ask spend under strict integrity, as a fraction of the
    #: total budget (re-asks are charged like any other answered task)
    reask_budget_frac: float = 0.25
    #: ADPLL branch-node budget per condition before the engine degrades
    #: to adaptive sampling (0 = unlimited)
    adpll_node_budget: int = 0
    #: per-condition wall-clock deadline for exact ADPLL in seconds
    #: (0 = no deadline)
    adpll_deadline_s: float = 0.0
    #: Beta(alpha, beta) prior of the online worker-reliability model
    reliability_prior: Tuple[float, float] = DEFAULT_RELIABILITY_PRIOR
    #: write the run's JSONL trace event log here (CLI: --trace-out);
    #: None keeps the events in memory only (QueryResult.trace)
    trace_path: Optional[Union[str, Path]] = None
    #: write the run's metrics snapshot here (CLI: --metrics-out); a
    #: ``.prom``/``.txt`` suffix selects Prometheus text, anything else
    #: the JSON schema; None keeps it in memory only (QueryResult.metrics)
    metrics_path: Optional[Union[str, Path]] = None
    #: write-ahead answer journal (CLI: --journal): every accepted
    #: answer / quarantine / budget charge is durably appended *before*
    #: engine state mutates, so a crashed run resumes bit-identically
    #: from checkpoint + journal replay; None disables journaling
    journal_path: Optional[Union[str, Path]] = None
    #: fsync every journal append (the durability guarantee); False
    #: trades the last few records for speed in tests/benchmarks
    journal_fsync: bool = True
    #: wall-clock deadline for the whole run in seconds (0 = none); on
    #: expiry the session raises SessionCancelledError at the next phase
    #: boundary -- journaled/checkpointed state survives for resumption
    session_deadline_s: float = 0.0
    #: RNG seed for every stochastic component of the run
    seed: int = 0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.budget < 0:
            raise ValueError("budget must be non-negative")
        if self.latency < 1:
            raise ValueError("latency must be at least one round")
        if self.m < 1:
            raise ValueError("m must be at least 1")
        if self.strategy.lower() not in ("fbs", "ubs", "hhs"):
            raise ValueError("unknown strategy %r" % self.strategy)
        if self.probability_method not in METHODS:
            raise ValueError("unknown probability method %r" % self.probability_method)
        if self.probability_backend not in PROBABILITY_BACKENDS:
            raise ValueError(
                "unknown probability backend %r; expected one of %r"
                % (self.probability_backend, PROBABILITY_BACKENDS)
            )
        if (
            self.probability_backend in ("compiled", "forest")
            and self.probability_method != "adpll"
        ):
            raise ValueError(
                "probability_backend=%r replaces the exact ADPLL "
                "path and requires probability_method='adpll', got %r"
                % (self.probability_backend, self.probability_method)
            )
        if self.probability_backend == "forest":
            # REPRO_FOREST_JIT=1 without numba must fail here, at config
            # time, with a clear message -- not as a worker crash (nor a
            # silent numpy fallback the operator believes is jitted).
            from ..probability.kernel import validate_jit_gate

            validate_jit_gate()
        if not 0.0 <= self.answer_threshold <= 1.0:
            raise ValueError("answer_threshold must lie in [0, 1]")
        if not 0.0 <= self.entropy_epsilon <= 1.0:
            raise ValueError("entropy_epsilon must lie in [0, 1]")
        if self.utility_mode not in UTILITY_MODES:
            raise ValueError("unknown utility mode %r" % self.utility_mode)
        if self.distribution_source not in DISTRIBUTION_SOURCES:
            raise ValueError("unknown distribution source %r" % self.distribution_source)
        if self.dominator_method not in DOMINATOR_METHODS:
            raise ValueError("unknown dominator method %r" % self.dominator_method)
        if self.backend not in BACKENDS:
            raise ValueError(
                "unknown backend %r; expected one of %r" % (self.backend, BACKENDS)
            )
        if self.ctable_prune not in PRUNE_MODES:
            raise ValueError(
                "unknown ctable_prune mode %r; expected one of %r"
                % (self.ctable_prune, PRUNE_MODES)
            )
        if self.n_jobs < 0:
            raise ValueError("n_jobs must be non-negative (0 = all cores)")
        if self.cache_size < 0:
            raise ValueError("cache_size must be non-negative (0 = unbounded)")
        if self.utility_cache_size < 0:
            raise ValueError("utility_cache_size must be non-negative (0 = unbounded)")
        if self.inference_mode not in INFERENCE_MODES:
            raise ValueError("unknown inference mode %r" % self.inference_mode)
        if not 0.0 <= self.worker_accuracy <= 1.0:
            raise ValueError("worker_accuracy must lie in [0, 1]")
        if self.aggregation not in ("majority", "weighted"):
            raise ValueError("unknown aggregation %r" % self.aggregation)
        if self.calibration_questions < 1:
            raise ValueError("calibration_questions must be positive")
        if self.assignments_per_task < 1:
            raise ValueError("assignments_per_task must be at least 1")
        if self.bn_smoothing < 0.0:
            raise ValueError("bn_smoothing must be non-negative")
        if self.bn_max_parents < 0:
            raise ValueError("bn_max_parents must be non-negative")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0.0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be at least backoff_base")
        if self.requeue_policy not in REQUEUE_POLICIES:
            raise ValueError(
                "unknown requeue policy %r; expected one of %r"
                % (self.requeue_policy, REQUEUE_POLICIES)
            )
        if self.faults is not None and not isinstance(self.faults, FaultModel):
            raise ValueError("faults must be a FaultModel or None")
        # Integrity / resource-guard knobs raise the typed ConfigError
        # (a ValueError subclass, so blanket handlers keep working).
        from ..errors import ConfigError

        if not isinstance(self.strict_integrity, bool):
            raise ConfigError("strict_integrity must be a bool")
        if not 0.0 <= self.reask_budget_frac <= 1.0:
            raise ConfigError(
                "reask_budget_frac must lie in [0, 1], got %r"
                % (self.reask_budget_frac,)
            )
        if not isinstance(self.adpll_node_budget, int) or isinstance(
            self.adpll_node_budget, bool
        ):
            raise ConfigError("adpll_node_budget must be an int (0 = unlimited)")
        if self.adpll_node_budget < 0:
            raise ConfigError("adpll_node_budget must be non-negative")
        if self.adpll_deadline_s < 0:
            raise ConfigError("adpll_deadline_s must be non-negative (0 = none)")
        if not isinstance(self.compile_node_budget, int) or isinstance(
            self.compile_node_budget, bool
        ):
            raise ConfigError("compile_node_budget must be an int (0 = unlimited)")
        if self.compile_node_budget < 0:
            raise ConfigError("compile_node_budget must be non-negative")
        if not isinstance(self.circuit_cache_size, int) or isinstance(
            self.circuit_cache_size, bool
        ):
            raise ConfigError("circuit_cache_size must be an int (0 = unbounded)")
        if self.circuit_cache_size < 0:
            raise ConfigError("circuit_cache_size must be non-negative")
        try:
            prior = tuple(float(x) for x in self.reliability_prior)
        except (TypeError, ValueError):
            raise ConfigError(
                "reliability_prior must be a (alpha, beta) pair of "
                "positive pseudo-counts, got %r" % (self.reliability_prior,)
            )
        if len(prior) != 2 or not all(p > 0 for p in prior):
            raise ConfigError(
                "reliability_prior must be a (alpha, beta) pair of "
                "positive pseudo-counts, got %r" % (self.reliability_prior,)
            )
        self.reliability_prior = prior
        for knob in ("trace_path", "metrics_path", "journal_path"):
            value = getattr(self, knob)
            if value is not None and not isinstance(value, (str, Path)):
                raise ValueError("%s must be a path-like string or None" % knob)
        if not isinstance(self.journal_fsync, bool):
            raise ConfigError("journal_fsync must be a bool")
        if self.session_deadline_s < 0:
            raise ConfigError("session_deadline_s must be non-negative (0 = none)")

    def tasks_per_round(self) -> int:
        """``mu = ceil(B / L)`` (Algorithm 4, line 1)."""
        if self.budget == 0:
            return 0
        return -(-self.budget // self.latency)
