"""Step two of each iteration: expression (task) selection strategies.

Given the entropy-ranked top-k objects, each strategy picks one expression
from each chosen object's condition (Section 6.2):

* **FBS** (frequency-based): the expression appearing most often across
  the chosen objects' conditions -- answering it simplifies many
  conditions at once.  Cheapest, least accurate.
* **UBS** (utility-based): the expression with the highest marginal
  utility ``G(o, e)`` (Eq. 4).  Most accurate, needs many probability
  computations.
* **HHS** (hybrid heuristic, Algorithm 4): scans expressions in
  non-ascending frequency order, computing utilities, and stops early once
  ``m`` consecutive expressions fail to improve on the best seen.

All strategies honour the round's conflict rule by never picking an
expression that touches an already-banned variable.

When :attr:`SelectionContext.utility_engine` is set, UBS and HHS become
thin policies over batched gain tables: :meth:`prefetch_round` warms the
:class:`repro.core.utility_engine.UtilityEngine` with one deduplicated
batch per round (HHS only with each condition's first frequency-ordered
chunk of size ``m``, preserving its early-stop cost profile), and the
per-object walk is then served from the gain cache.  Gains are
bit-identical to the scalar path, so both paths select the same
expressions; prefetching is sound because gains do not depend on the
round's growing banned-variable set -- only candidate *eligibility* does,
and that is still filtered per object at selection time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from ..ctable.condition import Condition
from ..ctable.expression import Expression
from ..datasets.dataset import Variable
from ..probability.engine import ProbabilityEngine
from .utility import entropy, marginal_utility
from .utility_engine import UtilityEngine


@dataclass
class SelectionContext:
    """Shared state for one round of expression selection."""

    engine: ProbabilityEngine
    #: occurrences of each expression across the chosen objects' conditions
    frequencies: Counter = field(default_factory=Counter)
    utility_mode: str = "syntactic"
    #: fresh utility evaluations performed this round (actual ADPLL work;
    #: candidates served from the batched gain cache do not count)
    utility_evaluations: int = 0
    #: candidates short-circuited at ``H(o) == 0`` without ADPLL work
    utility_skipped: int = 0
    #: probability lookups the scalar path issued while scoring (one per
    #: ``H(o)`` probe plus base + residual lookups per candidate); the
    #: batched path tracks the equivalent inside the engine instead
    probability_requests: int = 0
    #: fresh ADPLL solves those scalar lookups actually triggered
    probability_computed: int = 0
    #: batched gain scorer; ``None`` selects the scalar per-candidate path
    utility_engine: Optional[UtilityEngine] = None


def expression_frequencies(conditions: Sequence[Condition]) -> Counter:
    """Occurrence counts of expressions across a set of conditions.

    Repeated occurrences inside one condition all count, matching "the
    expression appearance times in conditions of the chosen top-k objects".
    Sums each condition's memoized :meth:`Condition.expression_counts`, so
    per-round recounts share work across rounds.
    """
    counts: Counter = Counter()
    for condition in conditions:
        counts.update(condition.expression_counts())
    return counts


def _eligible(
    condition: Condition, banned: Set[Variable]
) -> List[Expression]:
    """Distinct expressions of a condition not touching banned variables."""
    out = []
    for expression in sorted(condition.distinct_expressions(), key=Expression.sort_key):
        if not banned.intersection(expression.variables()):
            out.append(expression)
    return out


def _frequency_order(
    expressions: List[Expression], frequencies: Counter
) -> List[Expression]:
    """Non-ascending frequency; ties break on the canonical sort key.

    The explicit secondary key makes the order independent of the input
    list's order (and therefore of ``Counter`` iteration order), which
    previously leaked into HHS's scan order.
    """
    return sorted(expressions, key=lambda e: (-frequencies[e], e.sort_key()))


def _scored(
    condition: Condition,
    candidates: Sequence[Expression],
    context: SelectionContext,
) -> List[float]:
    """``G(condition, e)`` for each candidate, batched when possible.

    The scalar fallback reproduces the historical per-candidate loop
    (including its ``H(o) == 0`` short-circuit, now counted separately as
    ``utility_skipped``); with a :class:`UtilityEngine` the whole chunk is
    served from one deduplicated, cross-round-cached batch.
    """
    scorer = context.utility_engine
    if scorer is not None:
        evals_before = scorer.evals_total
        skipped_before = scorer.skipped_total
        gains = scorer.gains([(condition, e) for e in candidates])
        context.utility_evaluations += scorer.evals_total - evals_before
        context.utility_skipped += scorer.skipped_total - skipped_before
        return gains
    engine = context.engine
    computed_before = engine.n_computations
    context.probability_requests += 1  # the H(o) probe below
    h_now = entropy(engine.probability(condition))
    # Each marginal_utility call looks up Pr(phi) again plus the residual
    # branch(es): two in syntactic mode, one conjunction in conditional.
    per_eval = 3 if context.utility_mode == "syntactic" else 2
    gains = []
    for expression in candidates:
        if h_now == 0.0:
            context.utility_skipped += 1
            gains.append(0.0)
            continue
        gains.append(
            marginal_utility(condition, expression, engine, mode=context.utility_mode)
        )
        context.utility_evaluations += 1
        context.probability_requests += per_eval
    context.probability_computed += engine.n_computations - computed_before
    return gains


class TaskSelectionStrategy(ABC):
    """Picks one expression per chosen object, avoiding banned variables."""

    name: str = "base"

    def prefetch_round(
        self,
        conditions: Sequence[Condition],
        context: SelectionContext,
        banned: Set[Variable],
    ) -> None:
        """Warm the batched scorer with a round's candidates (no-op default).

        Called once per round with the chosen top-k conditions before the
        per-object selection walk; strategies that score utilities override
        it to move all fresh ADPLL work into one global deduplicated batch.
        """

    @abstractmethod
    def select_expression(
        self,
        condition: Condition,
        context: SelectionContext,
        banned: Set[Variable],
    ) -> Optional[Expression]:
        """The chosen expression, or ``None`` if every candidate conflicts."""


class FrequencyStrategy(TaskSelectionStrategy):
    """FBS: most frequent expression first."""

    name = "fbs"

    def select_expression(
        self,
        condition: Condition,
        context: SelectionContext,
        banned: Set[Variable],
    ) -> Optional[Expression]:
        candidates = _eligible(condition, banned)
        if not candidates:
            return None
        return _frequency_order(candidates, context.frequencies)[0]


class UtilityStrategy(TaskSelectionStrategy):
    """UBS: highest marginal utility, evaluating every candidate."""

    name = "ubs"

    def prefetch_round(
        self,
        conditions: Sequence[Condition],
        context: SelectionContext,
        banned: Set[Variable],
    ) -> None:
        if context.utility_engine is None:
            return
        pairs = []
        for condition in conditions:
            for expression in _eligible(condition, banned):
                pairs.append((condition, expression))
        _prefetch(pairs, context)

    def select_expression(
        self,
        condition: Condition,
        context: SelectionContext,
        banned: Set[Variable],
    ) -> Optional[Expression]:
        candidates = _eligible(condition, banned)
        if not candidates:
            return None
        gains = _scored(condition, candidates, context)
        best = None
        best_gain = -1.0
        for expression, gain in zip(candidates, gains):
            if gain > best_gain:
                best_gain = gain
                best = expression
        return best


class HybridStrategy(TaskSelectionStrategy):
    """HHS: frequency-ordered utility scan with early stop after ``m`` misses."""

    name = "hhs"

    def __init__(self, m: int = 15) -> None:
        if m < 1:
            raise ValueError("m must be at least 1")
        self.m = m

    def prefetch_round(
        self,
        conditions: Sequence[Condition],
        context: SelectionContext,
        banned: Set[Variable],
    ) -> None:
        if context.utility_engine is None:
            return
        # Only each condition's first frequency-ordered chunk: the scan
        # usually stops within the first ``m`` candidates, so prefetching
        # further would evaluate gains the early stop was meant to skip.
        pairs = []
        for condition in conditions:
            candidates = _eligible(condition, banned)
            ordered = _frequency_order(candidates, context.frequencies)
            for expression in ordered[: self.m]:
                pairs.append((condition, expression))
        _prefetch(pairs, context)

    def select_expression(
        self,
        condition: Condition,
        context: SelectionContext,
        banned: Set[Variable],
    ) -> Optional[Expression]:
        candidates = _eligible(condition, banned)
        if not candidates:
            return None
        ordered = _frequency_order(candidates, context.frequencies)
        # With a batched scorer, request gains in frequency-ordered chunks
        # of size m (the most the early stop can consume before deciding);
        # the scalar path keeps chunk size 1, i.e. the historical loop.
        chunk = self.m if context.utility_engine is not None else 1
        best = None
        best_gain = -1.0
        misses = 0
        position = 0
        while position < len(ordered):
            batch = ordered[position : position + chunk]
            gains = _scored(condition, batch, context)
            position += len(batch)
            for expression, gain in zip(batch, gains):
                if gain > best_gain:
                    best_gain = gain
                    best = expression
                    misses = 0
                else:
                    misses += 1
                    if misses == self.m:
                        return best
        return best


def _prefetch(pairs, context: SelectionContext) -> None:
    """Push a pair batch through the scorer, keeping context counters true."""
    scorer = context.utility_engine
    if scorer is None or not pairs:
        return
    evals_before = scorer.evals_total
    skipped_before = scorer.skipped_total
    scorer.gains(pairs)
    context.utility_evaluations += scorer.evals_total - evals_before
    context.utility_skipped += scorer.skipped_total - skipped_before


#: Registry used by the configuration layer.
def make_strategy(name: str, m: int = 15) -> TaskSelectionStrategy:
    """Instantiate a strategy by its paper name (``fbs`` / ``ubs`` / ``hhs``)."""
    name = name.lower()
    if name == "fbs":
        return FrequencyStrategy()
    if name == "ubs":
        return UtilityStrategy()
    if name == "hhs":
        return HybridStrategy(m=m)
    raise ValueError("unknown strategy %r (expected fbs, ubs or hhs)" % name)
