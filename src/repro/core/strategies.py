"""Step two of each iteration: expression (task) selection strategies.

Given the entropy-ranked top-k objects, each strategy picks one expression
from each chosen object's condition (Section 6.2):

* **FBS** (frequency-based): the expression appearing most often across
  the chosen objects' conditions -- answering it simplifies many
  conditions at once.  Cheapest, least accurate.
* **UBS** (utility-based): the expression with the highest marginal
  utility ``G(o, e)`` (Eq. 4).  Most accurate, needs many probability
  computations.
* **HHS** (hybrid heuristic, Algorithm 4): scans expressions in
  non-ascending frequency order, computing utilities, and stops early once
  ``m`` consecutive expressions fail to improve on the best seen.

All strategies honour the round's conflict rule by never picking an
expression that touches an already-banned variable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from ..ctable.condition import Condition
from ..ctable.expression import Expression
from ..datasets.dataset import Variable
from ..probability.engine import ProbabilityEngine
from .utility import marginal_utility


@dataclass
class SelectionContext:
    """Shared state for one round of expression selection."""

    engine: ProbabilityEngine
    #: occurrences of each expression across the chosen objects' conditions
    frequencies: Counter = field(default_factory=Counter)
    utility_mode: str = "syntactic"
    #: utility evaluations performed this round (for cost accounting)
    utility_evaluations: int = 0


def expression_frequencies(conditions: Sequence[Condition]) -> Counter:
    """Occurrence counts of expressions across a set of conditions.

    Repeated occurrences inside one condition all count, matching "the
    expression appearance times in conditions of the chosen top-k objects".
    """
    counts: Counter = Counter()
    for condition in conditions:
        for expression in condition.expressions():
            counts[expression] += 1
    return counts


def _eligible(
    condition: Condition, banned: Set[Variable]
) -> List[Expression]:
    """Distinct expressions of a condition not touching banned variables."""
    out = []
    for expression in sorted(condition.distinct_expressions(), key=Expression.sort_key):
        if not banned.intersection(expression.variables()):
            out.append(expression)
    return out


def _frequency_order(
    expressions: List[Expression], frequencies: Counter
) -> List[Expression]:
    """Non-ascending frequency; ties keep the canonical expression order."""
    return sorted(expressions, key=lambda e: -frequencies[e])


class TaskSelectionStrategy(ABC):
    """Picks one expression per chosen object, avoiding banned variables."""

    name: str = "base"

    @abstractmethod
    def select_expression(
        self,
        condition: Condition,
        context: SelectionContext,
        banned: Set[Variable],
    ) -> Optional[Expression]:
        """The chosen expression, or ``None`` if every candidate conflicts."""


class FrequencyStrategy(TaskSelectionStrategy):
    """FBS: most frequent expression first."""

    name = "fbs"

    def select_expression(
        self,
        condition: Condition,
        context: SelectionContext,
        banned: Set[Variable],
    ) -> Optional[Expression]:
        candidates = _eligible(condition, banned)
        if not candidates:
            return None
        return _frequency_order(candidates, context.frequencies)[0]


class UtilityStrategy(TaskSelectionStrategy):
    """UBS: highest marginal utility, evaluating every candidate."""

    name = "ubs"

    def select_expression(
        self,
        condition: Condition,
        context: SelectionContext,
        banned: Set[Variable],
    ) -> Optional[Expression]:
        candidates = _eligible(condition, banned)
        if not candidates:
            return None
        best = None
        best_gain = -1.0
        for expression in candidates:
            gain = marginal_utility(
                condition, expression, context.engine, mode=context.utility_mode
            )
            context.utility_evaluations += 1
            if gain > best_gain:
                best_gain = gain
                best = expression
        return best


class HybridStrategy(TaskSelectionStrategy):
    """HHS: frequency-ordered utility scan with early stop after ``m`` misses."""

    name = "hhs"

    def __init__(self, m: int = 15) -> None:
        if m < 1:
            raise ValueError("m must be at least 1")
        self.m = m

    def select_expression(
        self,
        condition: Condition,
        context: SelectionContext,
        banned: Set[Variable],
    ) -> Optional[Expression]:
        candidates = _eligible(condition, banned)
        if not candidates:
            return None
        ordered = _frequency_order(candidates, context.frequencies)
        best = None
        best_gain = -1.0
        misses = 0
        for expression in ordered:
            gain = marginal_utility(
                condition, expression, context.engine, mode=context.utility_mode
            )
            context.utility_evaluations += 1
            if gain > best_gain:
                best_gain = gain
                best = expression
                misses = 0
            else:
                misses += 1
                if misses == self.m:
                    break
        return best


#: Registry used by the configuration layer.
def make_strategy(name: str, m: int = 15) -> TaskSelectionStrategy:
    """Instantiate a strategy by its paper name (``fbs`` / ``ubs`` / ``hhs``)."""
    name = name.lower()
    if name == "fbs":
        return FrequencyStrategy()
    if name == "ubs":
        return UtilityStrategy()
    if name == "hhs":
        return HybridStrategy(m=m)
    raise ValueError("unknown strategy %r (expected fbs, ubs or hhs)" % name)
