"""Entropy and the marginal utility function (Eqs. 3-5).

The uncertainty of an object is the Shannon entropy of its answer
probability ``p = Pr(phi(o))``:

    H(o) = -(p log2 p + (1 - p) log2 (1 - p))                        (Eq. 3)

The benefit of crowdsourcing an expression ``e`` of ``phi(o)`` is the
expected entropy reduction (information gain):

    G(o, e)       = H(o) - E[H(o | e)]                               (Eq. 4)
    E[H(o | e)]   = Pr(e) H(o | e=true) + (1 - Pr(e)) H(o | e=false) (Eq. 5)

Two evaluations of ``H(o | e)`` are provided:

* ``"syntactic"`` (the paper's): substitute the truth value of ``e`` into
  ``phi(o)`` and take the entropy of the simplified condition's
  probability.  Other expressions sharing ``e``'s variables keep their
  unconditioned distributions.
* ``"conditional"`` (ablation): proper conditioning via
  ``Pr(phi | e) = Pr(phi ^ e) / Pr(e)`` and
  ``Pr(phi | !e) = (Pr(phi) - Pr(phi ^ e)) / (1 - Pr(e))``.
"""

from __future__ import annotations

import math

from ..ctable.condition import Condition
from ..ctable.expression import Expression
from ..probability.engine import ProbabilityEngine

#: Recognized H(o|e) evaluation modes.
UTILITY_MODES = ("syntactic", "conditional")


def entropy(p: float) -> float:
    """Binary Shannon entropy of a probability, safe at the endpoints."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


def object_entropy(condition: Condition, engine: ProbabilityEngine) -> float:
    """``H(o)`` for one object's condition (Eq. 3)."""
    return entropy(engine.probability(condition))


def gain_from_probabilities(
    p_phi: float,
    p_e: float,
    p_branch_true: float,
    p_branch_false: float = 0.0,
    mode: str = "syntactic",
) -> float:
    """``G(o, e)`` from already-computed probabilities (Eqs. 4-5).

    The single arithmetic shared by the scalar path
    (:func:`marginal_utility`) and the batched
    :class:`repro.core.utility_engine.UtilityEngine`, so both produce
    bit-identical gains.  For ``"syntactic"`` the branch probabilities are
    ``Pr(phi[e:=true])`` / ``Pr(phi[e:=false])``; for ``"conditional"``
    ``p_branch_true`` is the joint ``Pr(phi ^ e)`` and ``p_branch_false``
    is unused (the false branch follows from ``p_phi - p_joint``).
    """
    h_now = entropy(p_phi)
    if h_now == 0.0:
        return 0.0
    if mode == "syntactic":
        h_true = entropy(p_branch_true)
        h_false = entropy(p_branch_false)
    else:
        p_joint = p_branch_true
        h_true = entropy(p_joint / p_e) if p_e > 0.0 else 0.0
        p_not_e = 1.0 - p_e
        h_false = entropy((p_phi - p_joint) / p_not_e) if p_not_e > 0.0 else 0.0

    expected = p_e * h_true + (1.0 - p_e) * h_false
    return h_now - expected


def marginal_utility(
    condition: Condition,
    expression: Expression,
    engine: ProbabilityEngine,
    mode: str = "syntactic",
) -> float:
    """``G(o, e)``: expected entropy reduction of crowdsourcing ``e`` (Eq. 4)."""
    if mode not in UTILITY_MODES:
        raise ValueError("unknown utility mode %r" % mode)
    p_phi = engine.probability(condition)
    if entropy(p_phi) == 0.0:
        return 0.0
    p_e = engine.store.prob_expression(expression)

    if mode == "syntactic":
        p_true = engine.probability(condition.assign_expression(expression, True))
        p_false = engine.probability(condition.assign_expression(expression, False))
        return gain_from_probabilities(p_phi, p_e, p_true, p_false, mode=mode)
    p_joint = engine.probability(conjoin(condition, expression))
    return gain_from_probabilities(p_phi, p_e, p_joint, mode=mode)


def conjoin(condition: Condition, expression: Expression) -> Condition:
    """``condition AND expression`` as a CNF condition."""
    if condition.is_constant:
        if condition.is_false:
            return Condition.false()
        return Condition.of([[expression]])
    return Condition.of(list(condition.clauses) + [[expression]])


#: Backwards-compatible alias (pre-batching internal name).
_conjoin = conjoin
