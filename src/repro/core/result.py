"""Query results and per-round run history."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..metrics.accuracy import AccuracyReport, accuracy_report


@dataclass
class RoundRecord:
    """What happened in one crowdsourcing iteration."""

    round_index: int
    tasks_posted: int
    #: objects the tasks were selected for
    objects: List[int]
    #: conditions resolved to a constant by this round's answers
    newly_decided: int
    #: remaining symbolic conditions after the round
    open_conditions: int
    seconds: float
    #: tasks that actually came back answered (== tasks_posted on a
    #: reliable platform; only these are charged against the budget)
    tasks_answered: Optional[int] = None
    #: batch re-posts forced by transient platform errors this round
    retries: int = 0
    #: per-round fault accounting, e.g. {"unanswered": 2, "expired": 1,
    #: "transient_retries": 1, "failed_round": 1, "fatal": 1}
    faults: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.tasks_answered is None:
            self.tasks_answered = self.tasks_posted


@dataclass
class QueryResult:
    """Outcome of one BayesCrowd (or baseline) skyline query."""

    #: final answer set: certainly-true objects plus Pr(phi) > threshold ones
    answers: List[int]
    #: objects whose condition ended as the constant true
    certain_answers: List[int]
    #: total tasks posted (the paper's monetary cost)
    tasks_posted: int
    #: number of batches posted (the paper's latency)
    rounds: int
    #: algorithm execution time, excluding (simulated) worker answering
    seconds: float
    #: total tasks answered by the crowd (== budget actually spent;
    #: equals tasks_posted on a fully reliable platform)
    tasks_answered: Optional[int] = None
    #: wall time of the modeling phase (c-table construction)
    modeling_seconds: float = 0.0
    history: List[RoundRecord] = field(default_factory=list)
    #: answer set before any crowdsourcing (machine-only inference)
    initial_answers: Optional[List[int]] = None
    #: final Pr(phi(o)) per undecided-at-the-end object (certain ones are 0/1)
    answer_probabilities: Dict[int, float] = field(default_factory=dict)
    #: perf counters: probability-engine cache/batch/pool activity,
    #: incremental-ranking rescores, and c-table build throughput
    #: (``ctable_*`` keys, e.g. ``ctable_pairs_per_sec``)
    engine_stats: Dict[str, float] = field(default_factory=dict)
    #: unified observability snapshot (repro.obs.MetricsRegistry.snapshot():
    #: counters/gauges/histograms incl. phase_seconds_* wall-time
    #: histograms for preprocess/ctable/probability/round)
    metrics: Dict[str, object] = field(default_factory=dict)
    #: completed tracing spans (repro.obs.Tracer.to_dicts()): name, phase,
    #: parent, depth, start/end offsets, seconds
    trace: List[Dict] = field(default_factory=list)
    #: True when platform faults cost the run information it had budget
    #: for (unanswered/expired tasks, exhausted retries, fatal failure)
    degraded: bool = False
    #: run-level fault totals (sums of the per-round RoundRecord.faults)
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: True when this run was resumed from a round-level checkpoint
    resumed: bool = False
    #: answer-integrity accounting (AnswerLedger.summary()):
    #: answers_aggregated/applied/quarantined/reasked, contradiction
    #: counts by reason
    integrity: Dict[str, int] = field(default_factory=dict)
    #: online per-worker reliability estimates at the end of the run
    #: (posterior-mean accuracy; empty without vote provenance)
    worker_reliability: Dict[int, float] = field(default_factory=dict)
    #: per-object: True when the reported probability came from exact
    #: ADPLL, False when the resource guard degraded it to sampling
    probability_exact: Dict[int, bool] = field(default_factory=dict)
    #: per-object half-width of the estimate's confidence interval
    #: (0.0 for exact probabilities, finite for approximate ones)
    probability_error_bounds: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.tasks_answered is None:
            self.tasks_answered = self.tasks_posted

    def approximate_objects(self) -> List[int]:
        """Objects whose probability was degraded to an approximation."""
        return sorted(o for o, exact in self.probability_exact.items() if not exact)

    def evaluate(self, ground_truth: List[int]) -> AccuracyReport:
        """F1 of the answer set against the complete-data skyline."""
        return accuracy_report(self.answers, ground_truth)

    def f1(self, ground_truth: List[int]) -> float:
        return self.evaluate(ground_truth).f1

    def ranked_answers(self) -> List["tuple[int, float]"]:
        """Answers sorted by membership probability (descending)."""
        return sorted(
            ((obj, self.answer_probabilities.get(obj, 1.0)) for obj in self.answers),
            key=lambda pair: (-pair[1], pair[0]),
        )
