"""Query results and per-round run history."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..metrics.accuracy import AccuracyReport, accuracy_report


@dataclass
class RoundRecord:
    """What happened in one crowdsourcing iteration."""

    round_index: int
    tasks_posted: int
    #: objects the tasks were selected for
    objects: List[int]
    #: conditions resolved to a constant by this round's answers
    newly_decided: int
    #: remaining symbolic conditions after the round
    open_conditions: int
    seconds: float


@dataclass
class QueryResult:
    """Outcome of one BayesCrowd (or baseline) skyline query."""

    #: final answer set: certainly-true objects plus Pr(phi) > threshold ones
    answers: List[int]
    #: objects whose condition ended as the constant true
    certain_answers: List[int]
    #: total tasks posted (the paper's monetary cost)
    tasks_posted: int
    #: number of batches posted (the paper's latency)
    rounds: int
    #: algorithm execution time, excluding (simulated) worker answering
    seconds: float
    #: wall time of the modeling phase (c-table construction)
    modeling_seconds: float = 0.0
    history: List[RoundRecord] = field(default_factory=list)
    #: answer set before any crowdsourcing (machine-only inference)
    initial_answers: Optional[List[int]] = None
    #: final Pr(phi(o)) per undecided-at-the-end object (certain ones are 0/1)
    answer_probabilities: Dict[int, float] = field(default_factory=dict)
    #: probability-engine counters (computations, cache hits)
    engine_stats: Dict[str, int] = field(default_factory=dict)

    def evaluate(self, ground_truth: List[int]) -> AccuracyReport:
        """F1 of the answer set against the complete-data skyline."""
        return accuracy_report(self.answers, ground_truth)

    def f1(self, ground_truth: List[int]) -> float:
        return self.evaluate(ground_truth).f1

    def ranked_answers(self) -> List["tuple[int, float]"]:
        """Answers sorted by membership probability (descending)."""
        return sorted(
            ((obj, self.answer_probabilities.get(obj, 1.0)) for obj in self.answers),
            key=lambda pair: (-pair[1], pair[0]),
        )
