"""Shared-memory, fork-friendly multiprocessing substrate.

The PR-2 process pool shipped a pickled :meth:`DistributionStore.snapshot`
inside *every* chunk payload -- on a box where the pool cannot win
(``cpu_count == 1``) the fan-out still paid the full serialization bill
and lost 2.3x to the sequential path (``BENCH_fig03_probability.json``).
This module replaces that pattern with three pieces:

* :class:`SharedArrayBundle` -- publish named numpy arrays into POSIX
  shared memory *once*; workers attach lazily by segment name and cache
  the mapping per process, so payloads carry only a tiny picklable
  :class:`SharedArrayHandle` regardless of array sizes (and under the
  preferred ``fork`` start method the attach is effectively free).
* :func:`decide_workers` -- the pool auto-selection policy: sequential
  when the host has one usable core, when ``n_jobs`` does not ask for
  parallelism, or when the work cannot amortize pool startup; worker
  counts above the usable cores are clamped.  Every decision carries a
  human-readable reason so engines can record it in their stats.
* :func:`run_sharded` -- order-preserving fan-out of payloads over a
  ``fork``-preferred process pool, with per-shard worker timings.

Start-method caveats: ``fork`` (POSIX default here) inherits module
globals, so worker functions must treat globals as *per-process caches*,
never as channels back to the parent; ``spawn`` re-imports the module,
which is why attachment is lazy -- the first payload touching a handle
maps the segments by name.  Either way the parent owns the segments and
must :meth:`SharedArrayBundle.unlink` them exactly once, in a
``finally`` block.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "PoolDecision",
    "SharedArrayBundle",
    "SharedArrayHandle",
    "attach_arrays",
    "decide_workers",
    "run_sharded",
    "usable_cpu_count",
]


def usable_cpu_count() -> int:
    """Cores this process may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# pool auto-selection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PoolDecision:
    """Outcome of :func:`decide_workers` -- workers plus the why."""

    n_workers: int
    reason: str

    @property
    def parallel(self) -> bool:
        return self.n_workers > 1


def decide_workers(
    n_jobs: int,
    n_items: int,
    min_items_per_worker: int = 1,
    cpu_count: Optional[int] = None,
) -> PoolDecision:
    """How many pool workers (if any) a batch of ``n_items`` deserves.

    ``n_jobs`` follows the engine convention (1 = sequential, 0 = one
    per core).  The policy fixes the fig03 auto-selection bug: a pool is
    never spawned on a single-core host, never larger than the usable
    cores, and never for batches too small to amortize fork + dispatch.
    """
    cores = usable_cpu_count() if cpu_count is None else max(1, int(cpu_count))
    if n_jobs == 0:
        n_jobs = cores
    elif n_jobs <= 1:
        return PoolDecision(1, "sequential: n_jobs=%d requests no pool" % n_jobs)
    if cores == 1:
        # reached with n_jobs=0 on a single-core host too: the honest
        # reason is the core count, not the (resolved) worker request
        return PoolDecision(
            1, "sequential: single usable core, pool overhead cannot win"
        )
    clamped = min(n_jobs, cores)
    by_work = max(1, n_items // max(1, min_items_per_worker))
    workers = min(clamped, by_work)
    if workers <= 1:
        return PoolDecision(
            1,
            "sequential: %d item(s) below the %d-per-worker floor"
            % (n_items, min_items_per_worker),
        )
    if clamped < n_jobs:
        return PoolDecision(
            workers, "parallel: n_jobs=%d clamped to %d usable cores" % (n_jobs, cores)
        )
    return PoolDecision(workers, "parallel: %d workers" % workers)


# ----------------------------------------------------------------------
# shared arrays
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable description of a published bundle (names, dtypes, shapes)."""

    segments: Tuple[Tuple[str, str, str, Tuple[int, ...]], ...]

    @property
    def key(self) -> Tuple[str, ...]:
        return tuple(seg[1] for seg in self.segments)

    @property
    def nbytes(self) -> int:
        """Total payload bytes described by the handle (perf accounting)."""
        total = 0
        for __, __name, dtype, shape in self.segments:
            count = 1
            for dim in shape:
                count *= int(dim)
            total += count * np.dtype(dtype).itemsize
        return total


#: Per-process cache of attached bundles: handle key -> (shms, arrays).
_ATTACHED: Dict[Tuple[str, ...], Tuple[list, Dict[str, np.ndarray]]] = {}


def _attach_untracked(segment_name: str):
    """Attach a segment without registering it with the resource tracker.

    Python < 3.13 registers every *attached* segment with the (shared,
    under ``fork``) resource tracker, which then unlinks it when any
    process exits -- yanking the memory out from under the owner and
    unbalancing the tracker's books.  3.13+ exposes ``track=False``; on
    older interpreters the standard workaround is suppressing
    ``resource_tracker.register`` for the duration of the attach.  The
    owning process keeps its registration and remains responsible for
    the unlink.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=segment_name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=segment_name)
    finally:
        resource_tracker.register = original


class SharedArrayBundle:
    """Named numpy arrays in shared memory, attachable from any process."""

    def __init__(self, shms: list, arrays: Dict[str, np.ndarray], handle: SharedArrayHandle):
        self._shms = shms
        self.arrays = arrays
        self.handle = handle
        self._owner = True

    @property
    def nbytes(self) -> int:
        """Total payload bytes published in this bundle."""
        return self.handle.nbytes

    @classmethod
    def publish(cls, arrays: Mapping[str, np.ndarray]) -> "SharedArrayBundle":
        """Copy each array into its own shared-memory segment."""
        from multiprocessing import shared_memory

        shms = []
        views: Dict[str, np.ndarray] = {}
        segments = []
        try:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                shms.append(shm)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
                view[...] = array
                views[name] = view
                segments.append((name, shm.name, array.dtype.str, tuple(array.shape)))
        except Exception:
            for shm in shms:
                shm.close()
                shm.unlink()
            raise
        return cls(shms, views, SharedArrayHandle(tuple(segments)))

    def unlink(self) -> None:
        """Release the segments (owner-side, exactly once, in a finally)."""
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass
        self._shms = []
        self.arrays = {}


def attach_arrays(handle: SharedArrayHandle) -> Dict[str, np.ndarray]:
    """Worker-side view of a published bundle (cached per process)."""
    cached = _ATTACHED.get(handle.key)
    if cached is not None:
        return cached[1]
    shms = []
    arrays: Dict[str, np.ndarray] = {}
    for name, segment, dtype, shape in handle.segments:
        shm = _attach_untracked(segment)
        shms.append(shm)
        arrays[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    _ATTACHED[handle.key] = (shms, arrays)
    return arrays


def detach_all() -> None:
    """Drop every cached attachment (test hygiene; workers never need it)."""
    for shms, __ in _ATTACHED.values():
        for shm in shms:
            try:
                shm.close()
            except Exception:  # pragma: no cover
                pass
    _ATTACHED.clear()


# ----------------------------------------------------------------------
# sharded execution
# ----------------------------------------------------------------------
@dataclass
class ShardedRun:
    """Results of :func:`run_sharded` plus per-shard wall times."""

    results: List[object]
    worker_seconds: List[float] = field(default_factory=list)
    pool_seconds: float = 0.0


def _timed_call(payload):
    fn, shard = payload
    start = time.perf_counter()
    result = fn(shard)
    return result, time.perf_counter() - start


def run_sharded(
    fn: Callable,
    shards: Sequence[object],
    n_workers: int,
) -> ShardedRun:
    """Run ``fn(shard)`` for every shard on a fork-preferred process pool.

    Results come back in shard order.  Raises whatever the workers raise;
    pool *infrastructure* failures (``OSError``/``RuntimeError`` while
    forking) fall back to in-process execution, matching the engine's
    historical contract.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    start = time.perf_counter()
    if n_workers <= 1 or len(shards) <= 1:
        results, seconds = [], []
        for shard in shards:
            result, elapsed = _timed_call((fn, shard))
            results.append(result)
            seconds.append(elapsed)
        return ShardedRun(results, seconds, time.perf_counter() - start)
    try:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(shards)), mp_context=context
        ) as pool:
            timed = list(pool.map(_timed_call, [(fn, shard) for shard in shards]))
    except (OSError, RuntimeError):  # pragma: no cover - pool unavailable
        results, seconds = [], []
        for shard in shards:
            result, elapsed = _timed_call((fn, shard))
            results.append(result)
            seconds.append(elapsed)
        return ShardedRun(results, seconds, time.perf_counter() - start)
    return ShardedRun(
        [result for result, __ in timed],
        [seconds for __, seconds in timed],
        time.perf_counter() - start,
    )
