"""Shared-memory multi-core execution substrate.

One home for the process-level parallelism used by the hot paths: the
c-table pruning scan shards its pair blocks and
:meth:`ProbabilityEngine.probability_many` shards its condition chunks
over the same primitives.  See :mod:`repro.parallel.substrate` for the
fork/spawn caveats and ownership rules.
"""

from .substrate import (
    PoolDecision,
    SharedArrayBundle,
    SharedArrayHandle,
    ShardedRun,
    attach_arrays,
    decide_workers,
    detach_all,
    run_sharded,
    usable_cpu_count,
)

__all__ = [
    "PoolDecision",
    "SharedArrayBundle",
    "SharedArrayHandle",
    "ShardedRun",
    "attach_arrays",
    "decide_workers",
    "detach_all",
    "run_sharded",
    "usable_cpu_count",
]
