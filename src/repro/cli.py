"""Top-level demo CLI: run one crowd-assisted skyline query.

Usage::

    python -m repro --dataset nba --n 500 --budget 50 --strategy hhs
    python -m repro --dataset movies            # the paper's Table 1 example

Generates (or loads) a dataset with hidden ground truth, runs BayesCrowd
against the simulated crowd, and prints cost, latency and F1 against the
complete-data skyline.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
from typing import List, Optional

from .core import BayesCrowd, BayesCrowdConfig
from .crowd.unreliable import FaultModel
from .errors import CheckpointError, JournalError, SessionCancelledError
from .datasets import (
    example_distributions,
    generate_nba,
    generate_synthetic,
    sample_dataset,
)
from .metrics.accuracy import accuracy_report
from .session.context import SessionContext
from .skyline.algorithms import skyline


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Crowd-assisted skyline query over incomplete data (BayesCrowd).",
    )
    parser.add_argument(
        "--dataset", choices=["nba", "synthetic", "movies"], default="nba"
    )
    parser.add_argument("--n", type=int, default=500, help="dataset cardinality")
    parser.add_argument(
        "--missing-rate", type=float, default=0.1, help="fraction of hidden cells"
    )
    parser.add_argument("--budget", type=int, default=50, help="crowd task budget B")
    parser.add_argument("--latency", type=int, default=5, help="max rounds L")
    parser.add_argument(
        "--strategy", choices=["fbs", "ubs", "hhs"], default="hhs"
    )
    parser.add_argument("--m", type=int, default=15, help="HHS early-stop parameter")
    parser.add_argument("--alpha", type=float, default=0.05, help="pruning threshold")
    parser.add_argument(
        "--worker-accuracy", type=float, default=1.0, help="simulated worker accuracy"
    )
    parser.add_argument("--seed", type=int, default=0)
    perf = parser.add_argument_group("performance")
    perf.add_argument(
        "--backend", choices=["auto", "numpy", "python"], default="auto",
        help="c-table construction backend (auto = numpy unless the "
        "baseline dominator method is selected)",
    )
    perf.add_argument(
        "--ctable-prune", choices=["auto", "on", "off"], default="auto",
        help="sub-quadratic dominance pruning pre-pass before clause "
        "emission (auto = on for the numpy backend); the pruned c-table "
        "is identical, only the tested pair count shrinks",
    )
    perf.add_argument(
        "--n-jobs", type=int, default=1,
        help="worker processes for batched probability computation and "
        "the c-table pruning scan (1 = sequential, 0 = one per CPU "
        "core; single-core hosts auto-fall back to sequential)",
    )
    perf.add_argument(
        "--selection", choices=["batched", "scalar"], default="batched",
        help="utility scoring path: 'batched' dedups each round's "
        "candidates into one probability batch with a cross-round gain "
        "cache; 'scalar' is the per-candidate loop (identical selections)",
    )
    perf.add_argument(
        "--utility-cache-size", type=int, default=None, metavar="N",
        help="bound on the utility gain/residual caches "
        "(0 = unbounded; default %d)" % BayesCrowdConfig.utility_cache_size,
    )
    perf.add_argument(
        "--probability-backend", choices=["adpll", "compiled", "forest"],
        default="adpll",
        help="exact-probability backend: 'adpll' re-solves each condition "
        "per round; 'compiled' compiles each condition once into a "
        "d-DNNF circuit and re-propagates weights as answers arrive; "
        "'forest' additionally shares subcircuits across objects and "
        "re-weights all circuits in one array sweep per round "
        "(compilation blowups degrade to ADPLL, then sampling)",
    )
    perf.add_argument(
        "--compile-node-budget", type=int, default=None, metavar="N",
        help="node cap for compiling one condition's circuit before "
        "degrading to ADPLL (0 = unlimited; default %d)"
        % BayesCrowdConfig.compile_node_budget,
    )
    perf.add_argument(
        "--circuit-cache-size", type=int, default=None, metavar="N",
        help="bound on compiled circuits kept live per store "
        "(0 = unbounded; default %d)" % BayesCrowdConfig.circuit_cache_size,
    )
    perf.add_argument(
        "--perf", action="store_true",
        help="print engine/c-table perf counters after the run",
    )
    fault = parser.add_argument_group("fault injection (unreliable crowd)")
    fault.add_argument(
        "--drop-rate", type=float, default=0.0,
        help="per-task probability that no worker answers it",
    )
    fault.add_argument(
        "--spam-fraction", type=float, default=0.0,
        help="per-task probability the answer comes from a random spammer",
    )
    fault.add_argument(
        "--transient-every", type=int, default=0,
        help="every Nth batch post fails transiently (0 disables)",
    )
    integrity = parser.add_argument_group("answer integrity & resource guards")
    integrity.add_argument(
        "--strict-integrity", action="store_true",
        help="quarantine answers that contradict the accepted partial "
        "order and re-ask them (reliability-weighted) instead of "
        "applying them",
    )
    integrity.add_argument(
        "--reask-budget-frac", type=float, default=None, metavar="F",
        help="cap on re-ask spend as a fraction of the budget "
        "(default %.2f)" % BayesCrowdConfig.reask_budget_frac,
    )
    integrity.add_argument(
        "--adpll-node-budget", type=int, default=None, metavar="N",
        help="ADPLL branch-node budget per condition before degrading "
        "to sampling (0 = unlimited)",
    )
    integrity.add_argument(
        "--adpll-deadline-s", type=float, default=None, metavar="S",
        help="per-condition wall-clock deadline for exact ADPLL in "
        "seconds (0 = none)",
    )
    integrity.add_argument(
        "--reliability-prior", type=float, nargs=2, default=None,
        metavar=("ALPHA", "BETA"),
        help="Beta prior pseudo-counts of the online worker-reliability "
        "model (default %.1f %.1f)" % BayesCrowdConfig.reliability_prior,
    )
    resilience = parser.add_argument_group("resilience")
    resilience.add_argument(
        "--max-retries", type=int, default=3,
        help="batch re-posts after transient platform errors",
    )
    resilience.add_argument(
        "--requeue-policy", choices=["requeue", "refund"], default="requeue",
        help="what happens to unanswered tasks",
    )
    resilience.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="write a round-level checkpoint to PATH after every round",
    )
    resilience.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint and/or --journal PATH if present",
    )
    resilience.add_argument(
        "--journal", metavar="PATH", default=None,
        help="write-ahead answer journal (append-only JSONL, fsync + "
        "CRC): every accepted answer and budget charge is durable before "
        "engine state mutates, so a killed run resumes bit-identically "
        "with --resume",
    )
    resilience.add_argument(
        "--no-journal-fsync", action="store_true",
        help="skip the per-record fsync (faster, but a power loss may "
        "drop the last few journal records)",
    )
    resilience.add_argument(
        "--session-deadline-s", type=float, default=None, metavar="S",
        help="cooperative wall-clock deadline for the whole run; on "
        "expiry the run stops at the next phase boundary with a "
        "SessionCancelledError (journaled state stays resumable)",
    )
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a JSONL event log of per-round decisions (tasks "
        "issued, answers applied, objects decided) and phase spans",
    )
    obs.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the unified metrics snapshot (JSON schema; a "
        ".prom/.txt suffix selects Prometheus text format)",
    )
    return parser


def _fault_model(args) -> "FaultModel | None":
    if args.drop_rate == 0.0 and args.spam_fraction == 0.0 and args.transient_every == 0:
        return None
    return FaultModel(
        drop_rate=args.drop_rate,
        spam_fraction=args.spam_fraction,
        transient_every=args.transient_every,
    )


@contextlib.contextmanager
def _cancel_on_signals(session: SessionContext):
    """Route SIGTERM/SIGINT to the session's cooperative cancellation.

    Batch runs park at the next phase boundary with journal + checkpoint
    intact (exit 3, resumable with ``--resume``) instead of dying
    mid-mutation.  No-op outside the main thread (signal module rules)
    and handlers are always restored.
    """

    def _handler(signum, frame):  # noqa: ARG001 - signal signature
        session.cancellation.cancel(
            "received %s" % signal.Signals(signum).name
        )

    previous = {}
    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _handler)
    except ValueError:  # not the main thread; run uncancellable
        pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def main(argv: Optional[List[str]] = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "serve":
        from .service.server import main as serve_main

        return serve_main(raw[1:])
    args = build_parser().parse_args(raw)
    if args.resume and not (args.checkpoint or args.journal):
        print("--resume needs --checkpoint or --journal PATH", file=sys.stderr)
        return 2
    try:
        faults = _fault_model(args)
    except ValueError as err:
        print("invalid fault rate: %s" % err, file=sys.stderr)
        return 2

    if args.dataset == "movies":
        dataset = sample_dataset()
        distributions = example_distributions()
        overrides = dict(alpha=1.0, distribution_source="uniform")
    else:
        distributions = None
        overrides = dict(alpha=args.alpha)
        if args.dataset == "nba":
            dataset = generate_nba(
                n_objects=args.n, missing_rate=args.missing_rate, seed=args.seed + 7
            )
        else:
            dataset = generate_synthetic(
                n_objects=args.n, missing_rate=args.missing_rate, seed=args.seed + 13
            )
    try:
        config = BayesCrowdConfig(
            budget=args.budget,
            latency=args.latency,
            strategy=args.strategy,
            m=args.m,
            worker_accuracy=args.worker_accuracy,
            backend=args.backend,
            ctable_prune=args.ctable_prune,
            n_jobs=args.n_jobs,
            probability_backend=args.probability_backend,
            **(
                {"compile_node_budget": args.compile_node_budget}
                if args.compile_node_budget is not None
                else {}
            ),
            **(
                {"circuit_cache_size": args.circuit_cache_size}
                if args.circuit_cache_size is not None
                else {}
            ),
            selection_batch=(args.selection == "batched"),
            **(
                {"utility_cache_size": args.utility_cache_size}
                if args.utility_cache_size is not None
                else {}
            ),
            max_retries=args.max_retries,
            requeue_policy=args.requeue_policy,
            strict_integrity=args.strict_integrity,
            **(
                {"reask_budget_frac": args.reask_budget_frac}
                if args.reask_budget_frac is not None
                else {}
            ),
            **(
                {"adpll_node_budget": args.adpll_node_budget}
                if args.adpll_node_budget is not None
                else {}
            ),
            **(
                {"adpll_deadline_s": args.adpll_deadline_s}
                if args.adpll_deadline_s is not None
                else {}
            ),
            **(
                {"reliability_prior": tuple(args.reliability_prior)}
                if args.reliability_prior is not None
                else {}
            ),
            faults=faults,
            trace_path=args.trace_out,
            metrics_path=args.metrics_out,
            journal_path=args.journal,
            journal_fsync=not args.no_journal_fsync,
            **(
                {"session_deadline_s": args.session_deadline_s}
                if args.session_deadline_s is not None
                else {}
            ),
            seed=args.seed,
            **overrides,
        )
    except ValueError as err:
        print("invalid configuration: %s" % err, file=sys.stderr)
        return 2
    session = SessionContext(seed=args.seed, session_id="cli")
    query = BayesCrowd(
        dataset, config, distributions=distributions, session=session
    )

    try:
        with _cancel_on_signals(session):
            # The banner prints only once signal handlers are armed, so
            # anyone synchronizing on it (tests, wrappers) can deliver
            # SIGTERM immediately and still get the cooperative path.
            print(
                "dataset %s: %d objects x %d attributes, missing rate %.2f"
                % (dataset.name, dataset.n_objects, dataset.n_attributes,
                   dataset.missing_rate),
                flush=True,
            )
            result = query.run(checkpoint_path=args.checkpoint, resume=args.resume)
    except (CheckpointError, JournalError) as err:
        print("cannot resume: %s" % err, file=sys.stderr)
        return 2
    except SessionCancelledError as err:
        print(
            "run cancelled: %s (journal/checkpoint state remains; "
            "re-run with --resume to continue)" % err,
            file=sys.stderr,
        )
        return 3
    truth = skyline(dataset.complete)
    report = accuracy_report(result.answers, truth)
    initial = accuracy_report(result.initial_answers, truth)

    print("strategy %s | budget %d | latency %d" % (args.strategy, args.budget, args.latency))
    print(
        "posted %d tasks (%d answered) in %d rounds; algorithm time %.2fs "
        "(modeling %.2fs)"
        % (
            result.tasks_posted,
            result.tasks_answered,
            result.rounds,
            result.seconds,
            result.modeling_seconds,
        )
    )
    if result.resumed:
        sources = [
            "checkpoint %s" % args.checkpoint if args.checkpoint else None,
            "journal %s" % args.journal if args.journal else None,
        ]
        print("resumed from %s" % " + ".join(s for s in sources if s))
    if result.degraded:
        faults_text = ", ".join(
            "%s=%d" % (key, value) for key, value in sorted(result.fault_counts.items())
        )
        print("DEGRADED run: platform faults cost information (%s)" % faults_text)
    if result.integrity.get("contradictions_detected"):
        print(
            "integrity: %d/%d answers contradictory (%d quarantined, "
            "%d re-asks issued)"
            % (
                result.integrity.get("contradictions_detected", 0),
                result.integrity.get("answers_aggregated", 0),
                result.integrity.get("answers_quarantined", 0),
                result.integrity.get("answers_reasked", 0),
            )
        )
    approx_objects = result.approximate_objects()
    if approx_objects:
        print(
            "resource guard: %d answer probabilit%s approximate "
            "(max error bound %.3f)"
            % (
                len(approx_objects),
                "y" if len(approx_objects) == 1 else "ies",
                max(
                    result.probability_error_bounds.get(obj, 0.0)
                    for obj in approx_objects
                ),
            )
        )
    print("machine-only F1 %.3f -> crowd-assisted F1 %.3f (%s)" % (
        initial.f1, report.f1, report))
    print("answers: %d objects (%d certain)" % (
        len(result.answers), len(result.certain_answers)))
    if args.trace_out:
        print("trace: wrote JSONL event log to %s" % args.trace_out)
    if args.metrics_out:
        print("metrics: wrote snapshot to %s" % args.metrics_out)
    if args.journal:
        print("journal: write-ahead answer journal at %s" % args.journal)
    if args.perf:
        stats = result.engine_stats
        print(
            "perf: ctable %s backend, %.0f pairs/s | engine %.0f probs/s, "
            "cache hit rate %.1f%%, %d rescored across %d rankings"
            % (
                stats.get("ctable_backend", "?"),
                stats.get("ctable_pairs_per_sec", 0.0),
                stats.get("probabilities_per_sec", 0.0),
                100.0 * stats.get("cache_hit_rate", 0.0),
                stats.get("objects_rescored", 0),
                stats.get("rankings", 0),
            )
        )
        if stats.get("probability_backend") in ("compiled", "forest"):
            print(
                "%s: %d circuits (%d nodes), %d propagations, "
                "%d recompiles, %d reuses, %d fallbacks"
                % (
                    stats.get("probability_backend"),
                    stats.get("circuits_compiled", 0),
                    stats.get("circuit_nodes", 0),
                    stats.get("propagations", 0),
                    stats.get("recompiles", 0),
                    stats.get("circuit_reuses", 0),
                    stats.get("compile_fallbacks", 0),
                )
            )
        if stats.get("probability_backend") == "forest":
            print(
                "forest: %d live nodes, %d shared (%.1f%% of reachable), "
                "%d full + %d suffix sweeps, kernel %s"
                % (
                    stats.get("forest_nodes", 0),
                    stats.get("nodes_shared", 0),
                    100.0 * stats.get("shared_fraction", 0.0),
                    stats.get("forest_full_sweeps", 0),
                    stats.get("forest_suffix_sweeps", 0),
                    stats.get("forest_kernel", "off"),
                )
            )
        candidates = stats.get("utility_candidates_total", 0)
        evals = stats.get("utility_evals_total", 0)
        print(
            "selection (%s): %d gain requests -> %d fresh evaluations "
            "(%.1fx via dedup + cache), %.3fs"
            % (
                args.selection,
                candidates,
                evals,
                candidates / evals if evals else 0.0,
                stats.get("selection_seconds", 0.0),
            )
        )
        for key in sorted(stats):
            print("  %s = %s" % (key, stats[key]))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
