"""Post-hoc analysis of query runs.

Answers the questions a requester asks after a crowd query finishes:
where did the budget go, what kinds of questions were asked, how did
uncertainty fall round by round, and (with ground truth) how accuracy
evolved.  Works for any :class:`QueryResult` produced by this library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .core.result import QueryResult
from .crowd.task import ComparisonTask
from .ctable.expression import Const, Expression
from .metrics.accuracy import f1_score


@dataclass(frozen=True)
class TaskBreakdown:
    """How posted tasks split by question type."""

    var_vs_const: int
    var_vs_var: int

    @property
    def total(self) -> int:
        return self.var_vs_const + self.var_vs_var


def classify_expressions(expressions: Sequence[Expression]) -> TaskBreakdown:
    """Split expressions into variable-vs-constant and variable-vs-variable."""
    var_const = 0
    var_var = 0
    for expression in expressions:
        if isinstance(expression.left, Const) or isinstance(expression.right, Const):
            var_const += 1
        else:
            var_var += 1
    return TaskBreakdown(var_vs_const=var_const, var_vs_var=var_var)


@dataclass
class RunAnalysis:
    """Aggregated view of one query run."""

    tasks_posted: int
    rounds: int
    tasks_per_round: List[int]
    decided_per_round: List[int]
    open_after_round: List[int]
    #: objects a task was selected for, with repetition counts
    attention: Dict[int, int]
    seconds: float
    modeling_share: float

    def summary_lines(self) -> List[str]:
        """Human-readable summary (used by examples and the demo CLI)."""
        lines = [
            "tasks: %d over %d rounds" % (self.tasks_posted, self.rounds),
            "modeling phase: %.0f%% of algorithm time" % (100 * self.modeling_share),
        ]
        if self.open_after_round:
            lines.append(
                "open conditions per round: %s"
                % " -> ".join(str(v) for v in self.open_after_round)
            )
        if self.attention:
            hot = sorted(self.attention.items(), key=lambda kv: -kv[1])[:3]
            lines.append(
                "most-queried objects: %s"
                % ", ".join("#%d (%d tasks)" % (obj, cnt) for obj, cnt in hot)
            )
        return lines


def analyze_run(result: QueryResult) -> RunAnalysis:
    """Fold a result's round history into a :class:`RunAnalysis`."""
    attention: Dict[int, int] = {}
    for record in result.history:
        for obj in record.objects:
            attention[obj] = attention.get(obj, 0) + 1
    modeling_share = (
        result.modeling_seconds / result.seconds if result.seconds > 0 else 0.0
    )
    return RunAnalysis(
        tasks_posted=result.tasks_posted,
        rounds=result.rounds,
        tasks_per_round=[r.tasks_posted for r in result.history],
        decided_per_round=[r.newly_decided for r in result.history],
        open_after_round=[r.open_conditions for r in result.history],
        attention=attention,
        seconds=result.seconds,
        modeling_share=min(max(modeling_share, 0.0), 1.0),
    )


def accuracy_trajectory(
    dataset,
    config,
    ground_truth: Sequence[int],
    checkpoints: Optional[Sequence[int]] = None,
) -> List[Dict[str, float]]:
    """F1 after each budget checkpoint (re-runs the query per point).

    Deterministic components are seeded identically, so the trajectory is
    the fair "accuracy vs spend" curve of one requester strategy.
    """
    import dataclasses

    from .core.framework import BayesCrowd

    if checkpoints is None:
        step = max(1, config.budget // 5)
        checkpoints = list(range(0, config.budget + 1, step))
    trajectory = []
    for budget in checkpoints:
        point_config = dataclasses.replace(config, budget=budget)
        result = BayesCrowd(dataset, point_config).run()
        trajectory.append(
            {
                "budget": float(budget),
                "tasks": float(result.tasks_posted),
                "f1": f1_score(result.answers, ground_truth),
            }
        )
    return trajectory


def task_type_breakdown(result: QueryResult, tasks: Sequence[ComparisonTask]) -> TaskBreakdown:
    """Breakdown of actually-posted tasks (pass the platform's task log)."""
    return classify_expressions([task.expression for task in tasks])
