"""Phase-scoped tracing spans with wall-time histograms.

A :class:`Tracer` measures named spans (``preprocess``, ``ctable``,
``probability``, ``round[i]``) the way streaming engines instrument
per-window latency: each span records its wall time, its parent (spans
nest via a stack) and arbitrary attributes.  Every completed span

* lands in :attr:`Tracer.spans` (and :meth:`Tracer.to_dicts` for
  serialization),
* observes its duration into the registry histogram
  ``phase_seconds_<phase>`` (``phase`` defaults to the span name, so
  per-round spans named ``round[3]`` aggregate under ``round``),
* emits a ``span`` event into the event log, when one is attached.

Overhead is a few dict operations per span -- far below the <5% budget
for whole-phase instrumentation.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .events import EventLog
from .metrics import MetricsRegistry

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One completed (or active) traced phase."""

    name: str
    #: histogram key; ``round[i]`` spans share phase ``round``
    phase: str
    #: start offset in seconds since the tracer's epoch
    start: float
    end: Optional[float] = None
    parent: Optional[str] = None
    depth: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        record = {
            "name": self.name,
            "phase": self.phase,
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
            "parent": self.parent,
            "depth": self.depth,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class Tracer:
    """Nested span measurement feeding a registry and an event log."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        event_log: Optional[EventLog] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.event_log = event_log
        self._epoch = time.perf_counter()
        self._stack: List[Span] = []
        #: completed spans, in completion order
        self.spans: List[Span] = []

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    @contextmanager
    def span(self, name: str, phase: Optional[str] = None, **attrs) -> Iterator[Span]:
        """Measure the block as one span nested under the active span."""
        record = Span(
            name=name,
            phase=phase or name,
            start=self._now(),
            parent=self._stack[-1].name if self._stack else None,
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self._stack.append(record)
        try:
            yield record
        finally:
            self._stack.pop()
            record.end = self._now()
            self._finish(record)

    def record(
        self, name: str, seconds: float, phase: Optional[str] = None, **attrs
    ) -> Span:
        """Register an externally timed span (work measured elsewhere).

        The span nests under the currently active span; its end is "now"
        and its start back-dated by ``seconds``, so ordering stays sane.
        """
        end = self._now()
        # The start may predate the tracer's epoch (negative offset) when
        # the measured work happened before tracing began.
        record = Span(
            name=name,
            phase=phase or name,
            start=end - max(0.0, seconds),
            end=end,
            parent=self._stack[-1].name if self._stack else None,
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self._finish(record)
        return record

    def _finish(self, record: Span) -> None:
        self.spans.append(record)
        self.registry.histogram("phase_seconds_%s" % record.phase).observe(
            record.seconds
        )
        if self.event_log is not None:
            self.event_log.emit(
                "span",
                name=record.name,
                phase=record.phase,
                seconds=record.seconds,
                parent=record.parent,
                depth=record.depth,
                **record.attrs,
            )

    def find(self, name: str) -> List[Span]:
        """All completed spans with the given name."""
        return [span for span in self.spans if span.name == name]

    def to_dicts(self) -> List[Dict[str, object]]:
        return [span.to_dict() for span in self.spans]
