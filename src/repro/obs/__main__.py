"""Verify exported observability artifacts (the CI bench-smoke gate).

Usage::

    python -m repro.obs metrics.json [--trace trace.jsonl] \
        [--phases preprocess ctable probability round]

Exit status 0 means the metrics snapshot registers a ``phase_seconds_*``
histogram for every required pipeline phase and (when ``--trace`` is
given) the JSONL event log parses line by line with every applied answer
accounted for by an issued task.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .events import read_events
from .metrics import PIPELINE_PHASES, check_phases

#: Selection-phase counters every BayesCrowd run exports (batched or not).
SELECTION_COUNTERS = (
    "utility_candidates_total",
    "utility_evals_total",
    "residual_cache_hits",
    "utility_skipped_total",
)

#: Answer-integrity counters the ledger exports on every run.
INTEGRITY_COUNTERS = (
    "answers_aggregated",
    "answers_applied",
    "answers_quarantined",
)

#: Pair-accounting counters of c-table construction.
CTABLE_COUNTERS = (
    "ctable_pairs_tested",
    "ctable_pairs_pruned",
    "ctable_pair_universe",
)

#: Circuit-accounting counters of the compiled/forest probability backends.
PROBABILITY_COUNTERS = (
    "engine_circuits_compiled",
    "engine_circuit_nodes",
    "engine_propagations",
    "engine_recompiles",
    "engine_compile_fallbacks",
    "engine_forest_nodes",
    "engine_nodes_shared",
)


def verify_probability(snapshot: dict, require: bool = False) -> List[str]:
    """Problems with the compiled-backend circuit accounting (empty = ok).

    The engine exports the counters on every run (zeros when the backend
    is "adpll"); invariants: all non-negative, every recompile is a
    compile (``recompiles <= circuits_compiled``), and any compiled
    circuit has at least one node (``circuit_nodes >= circuits_compiled``
    whenever anything compiled).  With ``require=False`` snapshots that
    predate the counters pass vacuously; ``require=True`` makes their
    absence an error.
    """
    counters = snapshot.get("counters", {})
    missing = [name for name in PROBABILITY_COUNTERS if name not in counters]
    if missing:
        if require:
            return ["probability counter(s) missing: %s" % ", ".join(missing)]
        return []
    problems: List[str] = []
    if any(counters[name] < 0 for name in PROBABILITY_COUNTERS):
        problems.append("probability circuit counters must be non-negative")
    compiled = counters["engine_circuits_compiled"]
    nodes = counters["engine_circuit_nodes"]
    recompiles = counters["engine_recompiles"]
    if recompiles > compiled:
        problems.append(
            "engine_recompiles %r exceeds engine_circuits_compiled %r"
            % (recompiles, compiled)
        )
    if compiled > 0 and nodes < compiled:
        problems.append(
            "engine_circuit_nodes %r < engine_circuits_compiled %r "
            "(every circuit has at least one node)" % (nodes, compiled)
        )
    shared = snapshot.get("gauges", {}).get("engine_shared_fraction")
    if shared is not None and not 0.0 <= shared <= 1.0:
        problems.append(
            "gauge engine_shared_fraction %r outside [0, 1]" % (shared,)
        )
    if counters["engine_nodes_shared"] > 0 and counters["engine_forest_nodes"] == 0:
        problems.append(
            "engine_nodes_shared %r with an empty forest"
            % (counters["engine_nodes_shared"],)
        )
    return problems


def verify_ctable(snapshot: dict, require: bool = False) -> List[str]:
    """Problems with the c-table pair accounting (empty = consistent).

    Checks the pruning pre-pass invariant: every ordered object pair is
    either dominance-tested or pruned in bulk, i.e. ``pairs_tested +
    pairs_pruned == pair_universe == n * (n - 1)``.  With
    ``require=False`` snapshots that predate the counters pass vacuously;
    ``require=True`` makes their absence an error.
    """
    counters = snapshot.get("counters", {})
    missing = [name for name in CTABLE_COUNTERS if name not in counters]
    if missing:
        if require:
            return ["ctable counter(s) missing: %s" % ", ".join(missing)]
        return []
    problems: List[str] = []
    tested = counters["ctable_pairs_tested"]
    pruned = counters["ctable_pairs_pruned"]
    universe = counters["ctable_pair_universe"]
    if tested + pruned != universe:
        problems.append(
            "ctable_pairs_tested %r + ctable_pairs_pruned %r != "
            "ctable_pair_universe %r" % (tested, pruned, universe)
        )
    if tested < 0 or pruned < 0 or universe < 0:
        problems.append("ctable pair counters must be non-negative")
    # The n*(n-1) cross-check is only well-defined for a registry holding
    # exactly one build; multi-build registries (benches) sum counters,
    # for which only the additive invariant above holds.
    n_objects = counters.get("ctable_n_objects")
    if (
        counters.get("ctable_builds") == 1
        and n_objects is not None
        and universe != n_objects * (n_objects - 1)
    ):
        problems.append(
            "ctable_pair_universe %r != n * (n - 1) for n_objects %r"
            % (universe, n_objects)
        )
    return problems


def verify_integrity(snapshot: dict, require: bool = False) -> List[str]:
    """Problems with the answer-integrity counters (empty = consistent).

    Checks the ledger's accounting invariant: every aggregated answer is
    either applied to the c-table or quarantined, i.e.
    ``answers_quarantined + answers_applied == answers_aggregated``.
    With ``require=False`` snapshots that predate the ledger pass
    vacuously; ``require=True`` makes their absence an error.
    """
    counters = snapshot.get("counters", {})
    missing = [name for name in INTEGRITY_COUNTERS if name not in counters]
    if missing:
        if require:
            return ["integrity counter(s) missing: %s" % ", ".join(missing)]
        return []
    problems: List[str] = []
    aggregated = counters["answers_aggregated"]
    applied = counters["answers_applied"]
    quarantined = counters["answers_quarantined"]
    if quarantined + applied != aggregated:
        problems.append(
            "answers_quarantined %r + answers_applied %r != "
            "answers_aggregated %r" % (quarantined, applied, aggregated)
        )
    reasked = counters.get("answers_reasked", 0)
    if reasked > aggregated and aggregated > 0:
        problems.append(
            "answers_reasked %r exceeds answers_aggregated %r"
            % (reasked, aggregated)
        )
    if quarantined < 0 or applied < 0 or aggregated < 0:
        problems.append("integrity counters must be non-negative")
    return problems


def verify_selection(snapshot: dict, require: bool = False) -> List[str]:
    """Problems with the selection-phase counters (empty = consistent).

    Checks the accounting invariant of the batched utility scorer: every
    candidate gain request is either freshly evaluated, served by the
    dedup/cross-round cache, or skipped at zero entropy, so
    ``utility_evals_total == utility_candidates_total -
    residual_cache_hits - utility_skipped_total``.  With ``require=False``
    snapshots that predate the counters (or come from non-query runs) pass
    vacuously; ``require=True`` makes their absence an error.
    """
    counters = snapshot.get("counters", {})
    missing = [name for name in SELECTION_COUNTERS if name not in counters]
    if missing:
        if require:
            return ["selection counter(s) missing: %s" % ", ".join(missing)]
        return []
    problems: List[str] = []
    expected = (
        counters["utility_candidates_total"]
        - counters["residual_cache_hits"]
        - counters["utility_skipped_total"]
    )
    if counters["utility_evals_total"] != expected:
        problems.append(
            "utility_evals_total %r != candidates %r - cache hits %r - skipped %r"
            % (
                counters["utility_evals_total"],
                counters["utility_candidates_total"],
                counters["residual_cache_hits"],
                counters["utility_skipped_total"],
            )
        )
    ratio = snapshot.get("gauges", {}).get("utility_batch_dedup_ratio")
    if ratio is None:
        if require:
            problems.append("gauge utility_batch_dedup_ratio missing")
    elif not 0.0 <= ratio <= 1.0:
        problems.append("utility_batch_dedup_ratio %r outside [0, 1]" % ratio)
    return problems


def verify_trace(path: str) -> List[str]:
    """Problems found in a JSONL trace (empty = consistent)."""
    problems: List[str] = []
    try:
        events = read_events(path)
    except (OSError, json.JSONDecodeError) as err:
        return ["trace unreadable: %s" % err]
    if not events:
        return ["trace is empty"]
    kinds = {event.get("event") for event in events}
    for required in ("run_start", "run_end"):
        if required not in kinds:
            problems.append("trace has no %r event" % required)
    issued_ids = set()
    issued_count = 0
    for event in events:
        if event.get("event") == "tasks_issued":
            tasks = event.get("tasks", [])
            issued_count += len(tasks)
            issued_ids.update(task["task_id"] for task in tasks)
            if event.get("count") != len(tasks):
                problems.append(
                    "tasks_issued event %s count %r != %d listed tasks"
                    % (event.get("seq"), event.get("count"), len(tasks))
                )
    answered_ids = set()
    for event in events:
        if event.get("event") == "answers_applied":
            answered_ids.update(event.get("task_ids", []))
    unaccounted = answered_ids - issued_ids
    if unaccounted:
        problems.append(
            "%d answered task(s) were never issued: %s"
            % (len(unaccounted), sorted(unaccounted)[:5])
        )
    for event in events:
        if event.get("event") == "run_end":
            posted = event.get("tasks_posted")
            if posted is not None and posted != issued_count:
                problems.append(
                    "run_end reports %r tasks posted but %d were issued"
                    % (posted, issued_count)
                )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Verify a metrics snapshot (and optional JSONL trace).",
    )
    parser.add_argument("metrics", help="metrics snapshot JSON path")
    parser.add_argument(
        "--trace", default=None, help="JSONL event log to cross-check"
    )
    parser.add_argument(
        "--phases", nargs="+", default=list(PIPELINE_PHASES),
        help="pipeline phases the snapshot must register",
    )
    parser.add_argument(
        "--selection", action="store_true",
        help="require the selection-phase utility counters and check "
        "their accounting invariant (evals = candidates - cache hits - "
        "skipped); without this flag the invariant is still checked "
        "whenever the counters are present",
    )
    parser.add_argument(
        "--integrity", action="store_true",
        help="require the answer-integrity ledger counters and check "
        "their accounting invariant (quarantined + applied == "
        "aggregated); without this flag the invariant is still checked "
        "whenever the counters are present",
    )
    parser.add_argument(
        "--ctable", action="store_true",
        help="require the c-table pair-accounting counters and check "
        "their invariant (pairs_tested + pairs_pruned == pair_universe "
        "== n*(n-1)); without this flag the invariant is still checked "
        "whenever the counters are present",
    )
    parser.add_argument(
        "--probability", action="store_true",
        help="require the compiled-backend circuit counters and check "
        "their accounting invariants (recompiles <= circuits_compiled, "
        "circuit_nodes >= circuits_compiled); without this flag the "
        "invariants are still checked whenever the counters are present",
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="verify a write-ahead answer journal: per-record checksums "
        "and sequence, plus replay invariants (open header first, "
        "answers inside rounds, rounds commit in order, no task "
        "answered twice)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.metrics, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print("cannot read metrics snapshot: %s" % err, file=sys.stderr)
        return 2
    missing = check_phases(snapshot, args.phases)
    if missing:
        print(
            "metrics schema is missing phase histogram(s): %s"
            % ", ".join("phase_seconds_%s" % phase for phase in missing),
            file=sys.stderr,
        )
        return 2
    selection_problems = verify_selection(snapshot, require=args.selection)
    if selection_problems:
        for problem in selection_problems:
            print("selection problem: %s" % problem, file=sys.stderr)
        return 2
    integrity_problems = verify_integrity(snapshot, require=args.integrity)
    if integrity_problems:
        for problem in integrity_problems:
            print("integrity problem: %s" % problem, file=sys.stderr)
        return 2
    ctable_problems = verify_ctable(snapshot, require=args.ctable)
    if ctable_problems:
        for problem in ctable_problems:
            print("ctable problem: %s" % problem, file=sys.stderr)
        return 2
    probability_problems = verify_probability(snapshot, require=args.probability)
    if probability_problems:
        for problem in probability_problems:
            print("probability problem: %s" % problem, file=sys.stderr)
        return 2
    print(
        "metrics ok: %d counters, %d gauges, %d histograms (phases: %s)"
        % (
            len(snapshot.get("counters", {})),
            len(snapshot.get("gauges", {})),
            len(snapshot.get("histograms", {})),
            ", ".join(args.phases),
        )
    )
    if args.selection:
        print("selection ok: utility counter accounting adds up")
    if args.integrity:
        print("integrity ok: quarantined + applied == aggregated")
    if args.ctable:
        print("ctable ok: pairs_tested + pairs_pruned == pair_universe")
    if args.probability:
        print("probability ok: circuit compile/propagate accounting adds up")
    if args.trace is not None:
        problems = verify_trace(args.trace)
        if problems:
            for problem in problems:
                print("trace problem: %s" % problem, file=sys.stderr)
            return 2
        print("trace ok: %s parses and accounts for every issued task" % args.trace)
    if args.journal is not None:
        from ..session.journal import journal_problems

        problems = journal_problems(args.journal)
        if problems:
            for problem in problems:
                print("journal problem: %s" % problem, file=sys.stderr)
            return 2
        print("journal ok: %s verifies and replays consistently" % args.journal)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
