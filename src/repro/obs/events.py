"""Structured JSONL event log of per-round pipeline decisions.

The crowdsourcing loop makes auditable decisions every round -- which
objects were selected, which tasks were issued, which answers came back,
which objects got decided.  :class:`EventLog` records each as one JSON
object, kept in memory and (when a path is given) appended to a JSONL
file as it happens, so a crashed run still leaves a readable trail.

Events are plain dicts with three standard keys -- ``seq`` (a
monotonically increasing sequence number), ``ts`` (Unix timestamp) and
``event`` (the kind) -- plus whatever fields the emitter passes.  Values
that are not JSON-native (numpy scalars, expressions) are coerced.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

__all__ = ["EventLog", "read_events"]


def _jsonable(value):
    """Best-effort coercion for non-JSON-native payload values."""
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalars
        return item()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


class EventLog:
    """Append-only event sink: in-memory list plus optional JSONL file."""

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.events: List[Dict] = []
        self._seq = 0
        self._file = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "w", encoding="utf-8")

    def emit(self, event: str, **fields) -> Dict:
        """Record one event; returns the event dict."""
        self._seq += 1
        record = {"seq": self._seq, "ts": time.time(), "event": event}
        record.update(fields)
        self.events.append(record)
        if self._file is not None:
            self._file.write(json.dumps(record, default=_jsonable) + "\n")
            self._file.flush()
        return record

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Dict]:
        return iter(self.events)

    def of_kind(self, event: str) -> List[Dict]:
        """All recorded events of one kind, in emission order."""
        return [e for e in self.events if e["event"] == event]


def read_events(path: Union[str, Path]) -> List[Dict]:
    """Parse a JSONL event log back into event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
