"""Structured metrics: one registry of counters, gauges and histograms.

The paper's evaluation reports per-phase cost -- c-table construction
time, probability-computation time, rounds to convergence, crowd
accuracy (Sections 7-8).  Before this module those numbers lived in
ad-hoc dicts scattered over :meth:`ProbabilityEngine.stats`,
:attr:`CTable.build_stats`, :class:`IncrementalRanker` attributes and
the fault totals of :meth:`BayesCrowd.run`.  The
:class:`MetricsRegistry` unifies them behind three familiar instrument
types and two exporters:

* :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.to_json` --
  a plain-dict schema that round-trips through
  :meth:`MetricsRegistry.from_snapshot`;
* :meth:`MetricsRegistry.to_prometheus` -- Prometheus text exposition
  format, for scraping a long-running service.

Everything is dependency-free and cheap: instruments are plain Python
objects, histograms use fixed cumulative buckets tuned for wall-clock
seconds, and the registry is per-run (so absorbed cumulative counters
never need deltas).
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "check_phases",
    "PIPELINE_PHASES",
]

#: Cumulative histogram bucket upper bounds, tuned for span wall times in
#: seconds (sub-millisecond c-table builds through minute-long runs).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: The pipeline phases every full :meth:`BayesCrowd.run` must cover; the
#: schema verifier (``python -m repro.obs``) checks their histograms.
PIPELINE_PHASES: Tuple[str, ...] = ("preprocess", "ctable", "probability", "round")

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A Prometheus-legal metric name (invalid characters become ``_``)."""
    return _NAME_RE.sub("_", name)


class Counter:
    """A monotonically increasing count (tasks posted, cache hits, ...)."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; got %r" % amount)
        self.value += amount


class Gauge:
    """A value that can go anywhere (budget left, cache hit rate, ...)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A distribution of observations over fixed cumulative buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.description = description
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out


class MetricsRegistry:
    """Get-or-create registry of named instruments with two exporters."""

    def __init__(self) -> None:
        self._metrics: "Dict[str, object]" = {}
        #: string-valued metadata (backend names, method labels, ...)
        self._info: Dict[str, str] = {}

    # -- instrument accessors ------------------------------------------
    def _get(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                "metric %r already registered as a %s" % (name, metric.kind)
            )
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get(name, Counter, description=description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get(name, Gauge, description=description)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get(name, Histogram, description=description, buckets=buckets)

    def info(self, name: str, value: str) -> None:
        self._info[name] = str(value)

    def get(self, name: str):
        """The registered instrument, or ``None``."""
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (histograms: their mean)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.mean()
        return metric.value

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- absorbing legacy flat counter dicts ---------------------------
    def absorb(self, stats: Mapping[str, object], prefix: str = "") -> None:
        """Fold a flat perf-counter dict into the registry.

        Integers (monotone run totals like ``computations``) become
        counters, floats (rates, seconds) become gauges, strings
        (``backend`` names) become info entries; anything else is
        ignored.  Used to unify the PR-2 counters from
        ``ProbabilityEngine.stats()``, ``CTable.build_stats`` and the
        crowd fault accounting under one schema.
        """
        for key, value in stats.items():
            name = prefix + str(key)
            if isinstance(value, bool):
                self.gauge(name).set(1.0 if value else 0.0)
            elif isinstance(value, int):
                self.counter(name).inc(value)
            elif isinstance(value, float):
                self.gauge(name).set(value)
            elif isinstance(value, str):
                self.info(name, value)
            elif hasattr(value, "item"):  # numpy scalars
                self.gauge(name).set(float(value.item()))

    # -- exporters ------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The full registry as plain dicts (the JSON schema)."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, object] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "min": metric.min if metric.count else None,
                    "max": metric.max if metric.count else None,
                    "bounds": list(metric.bounds),
                    "bucket_counts": list(metric.bucket_counts),
                }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
            "info": dict(sorted(self._info.items())),
        }

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output (round-trip)."""
        registry = cls()
        for name, value in snapshot.get("counters", {}).items():
            registry.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = registry.histogram(name, buckets=data["bounds"])
            histogram.count = data["count"]
            histogram.sum = data["sum"]
            histogram.min = data["min"] if data["min"] is not None else math.inf
            histogram.max = data["max"] if data["max"] is not None else -math.inf
            histogram.bucket_counts = list(data["bucket_counts"])
        for name, value in snapshot.get("info", {}).items():
            registry.info(name, value)
        return registry

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (counters, gauges, histograms)."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            pname = _prom_name(name)
            if metric.description:
                lines.append("# HELP %s %s" % (pname, metric.description))
            lines.append("# TYPE %s %s" % (pname, metric.kind))
            if isinstance(metric, (Counter, Gauge)):
                lines.append("%s %s" % (pname, _format_value(metric.value)))
                continue
            for bound, cumulative in metric.cumulative_buckets():
                le = "+Inf" if math.isinf(bound) else _format_value(bound)
                lines.append('%s_bucket{le="%s"} %d' % (pname, le, cumulative))
            lines.append("%s_sum %s" % (pname, _format_value(metric.sum)))
            lines.append("%s_count %d" % (pname, metric.count))
        for name, value in sorted(self._info.items()):
            lines.append('# INFO %s "%s"' % (_prom_name(name), value))
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def check_phases(
    snapshot: Mapping[str, object],
    phases: Iterable[str] = PIPELINE_PHASES,
) -> List[str]:
    """Phases whose ``phase_seconds_*`` histogram is missing from a snapshot.

    An empty return value means the metrics schema covers every required
    pipeline phase (the CI bench-smoke gate).
    """
    histograms = snapshot.get("histograms", {})
    return [
        phase for phase in phases if "phase_seconds_%s" % phase not in histograms
    ]
