"""Observability: metrics registry, tracing spans, JSONL event log.

The structured replacement for the ad-hoc perf counters: one
:class:`MetricsRegistry` of counters/gauges/histograms (JSON snapshot +
Prometheus text exporters), a :class:`Tracer` of phase-scoped spans with
wall-time histograms, and an :class:`EventLog` of per-round decisions.
``python -m repro.obs metrics.json [--trace trace.jsonl]`` verifies that
an exported snapshot covers every pipeline phase.
"""

from .events import EventLog, read_events
from .metrics import (
    DEFAULT_BUCKETS,
    PIPELINE_PHASES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    check_phases,
)
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "PIPELINE_PHASES",
    "check_phases",
    "EventLog",
    "read_events",
    "Span",
    "Tracer",
]
