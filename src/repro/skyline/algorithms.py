"""Skyline computation on complete data.

These routines provide (i) the *ground truth* against which crowd query
accuracy (F1) is measured -- "the query result derived based on the
corresponding complete data is regarded as the ground truth" (Section 7)
-- and (ii) the *skyline layers* primitive used by the CrowdSky baseline.

The main algorithm is sort-filter-skyline (SFS): objects are scanned in
non-increasing order of their attribute sum, which guarantees that no
object can be dominated by a later one, so a single pass against the
running window suffices.
"""

from __future__ import annotations

from typing import List

import numpy as np


def skyline(values: np.ndarray) -> List[int]:
    """Indices of the skyline of a complete matrix (larger is better).

    Duplicated rows are all reported (none dominates the other under
    Definition 1, which requires strict improvement somewhere).
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError("values must be a 2-D matrix")
    n = values.shape[0]
    if n == 0:
        return []

    order = np.argsort(-values.sum(axis=1), kind="stable")
    window: List[int] = []
    window_values: List[np.ndarray] = []
    for idx in order.tolist():
        row = values[idx]
        dominated = False
        for candidate in window_values:
            if (candidate >= row).all() and (candidate > row).any():
                dominated = True
                break
        if not dominated:
            window.append(idx)
            window_values.append(row)
    return sorted(window)


def skyline_layers(values: np.ndarray) -> List[List[int]]:
    """Partition all objects into successive skyline layers.

    Layer 1 is the skyline; layer ``k`` is the skyline of what remains
    after removing layers ``1..k-1``.  CrowdSky processes candidates in
    this order because earlier layers can only be dominated by earlier or
    same-layer objects.
    """
    values = np.asarray(values)
    remaining = list(range(values.shape[0]))
    layers: List[List[int]] = []
    while remaining:
        local = skyline(values[remaining])
        layer = [remaining[i] for i in local]
        layers.append(layer)
        chosen = set(layer)
        remaining = [i for i in remaining if i not in chosen]
    return layers


def is_skyline_member(values: np.ndarray, index: int) -> bool:
    """Check one object against the whole matrix (used by property tests)."""
    values = np.asarray(values)
    row = values[index]
    geq = (values >= row).all(axis=1)
    gt = (values > row).any(axis=1)
    dominated = geq & gt
    dominated[index] = False
    return not bool(dominated.any())
