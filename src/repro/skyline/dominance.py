"""Dominance relationship on complete data (Definition 1 of the paper).

Object ``u`` dominates ``v`` (written ``u < v`` in the paper) iff ``u`` is
not worse than ``v`` on every attribute and strictly better on at least
one.  Throughout this library, *larger values are better*; datasets whose
natural direction is "smaller is better" should be negated/reflected
during discretization.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def dominates(u: Sequence[int], v: Sequence[int]) -> bool:
    """True iff ``u`` dominates ``v`` under Definition 1 (larger is better)."""
    u = np.asarray(u)
    v = np.asarray(v)
    if u.shape != v.shape:
        raise ValueError("objects must share the attribute space")
    return bool((u >= v).all() and (u > v).any())


def dominance_matrix(values: np.ndarray) -> np.ndarray:
    """Pairwise dominance matrix: ``M[i, j]`` is True iff ``i`` dominates ``j``.

    Quadratic in memory -- intended for small inputs (tests, examples).
    """
    values = np.asarray(values)
    n = values.shape[0]
    geq = (values[:, None, :] >= values[None, :, :]).all(axis=2)
    gt = (values[:, None, :] > values[None, :, :]).any(axis=2)
    matrix = geq & gt
    np.fill_diagonal(matrix, False)
    return matrix[:n, :n]
