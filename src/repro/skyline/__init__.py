"""Skyline computation on complete data (ground truth + CrowdSky layers)."""

from .algorithms import is_skyline_member, skyline, skyline_layers
from .dominance import dominance_matrix, dominates

__all__ = [
    "dominates",
    "dominance_matrix",
    "skyline",
    "skyline_layers",
    "is_skyline_member",
]
