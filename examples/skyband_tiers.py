#!/usr/bin/env python3
"""Extension example: tiered recommendations with k-skyband queries.

The skyline gives the single best tier; the k-skyband (objects dominated
by fewer than k others) widens the slate for recommendation scenarios
where "almost undominated" items still matter.  This example runs crowd-
assisted 1/2/3-skyband queries over the NBA-like dataset with the same
budget and shows how the tiers nest and what the crowd's questions buy.

Run:
    python examples/skyband_tiers.py
"""

from repro import f1_score, generate_nba
from repro.skyband import CrowdSkyband, SkybandConfig, skyband


def main() -> None:
    dataset = generate_nba(n_objects=300, missing_rate=0.12, seed=21)
    print(
        "Dataset: %d player seasons, %.0f%% cells missing"
        % (dataset.n_objects, 100 * dataset.missing_rate)
    )

    previous = set()
    for k in (1, 2, 3):
        truth = skyband(dataset.complete, k)
        config = SkybandConfig(k=k, alpha=0.08, budget=45, latency=5, seed=3)
        result = CrowdSkyband(dataset, config).run()
        print(
            "\n%d-skyband: %d true members | crowd answer %d members, "
            "F1 %.3f (machine-only %.3f), %d tasks in %d rounds"
            % (
                k,
                len(truth),
                len(result.answers),
                f1_score(result.answers, truth),
                f1_score(result.initial_answers, truth),
                result.tasks_posted,
                result.rounds,
            )
        )
        tier = set(result.answers)
        new = tier - previous
        print("  tier adds %d objects over the previous one" % len(new))
        if previous:
            kept = len(previous & tier) / len(previous)
            print("  (contains %.0f%% of the previous tier)" % (100 * kept))
        previous = tier


if __name__ == "__main__":
    main()
